"""Property-based tests for the extension modules.

Covers compression (mass/error invariants), the deadline planner
(feasibility and optimality), the bound zoo (inversion), and the battery
model (conservation).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.acs import ACSSolver
from repro.core.bounds_zoo import KMRBoundModel, KStepBoundModel, StichBoundModel
from repro.core.convergence import ConvergenceBound
from repro.core.deadline import solve_with_deadline
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.fl.compression import (
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
)
from repro.iot.battery import BatteryConfig, FleetLifetimeModel


@st.composite
def objectives(draw) -> EnergyObjective:
    bound = ConvergenceBound(
        a0=draw(st.floats(0.1, 50.0)),
        a1=draw(st.floats(0.0, 0.4)),
        a2=draw(st.floats(0.0, 5e-4)),
    )
    energy = EnergyParams(
        rho=draw(st.floats(0.0, 0.01)),
        e_upload=draw(st.floats(0.0, 5.0)),
        n_samples=draw(st.integers(10, 5000)),
    )
    n_servers = draw(st.integers(2, 25))
    epsilon = bound.asymptotic_gap(1, n_servers) + draw(st.floats(0.01, 0.8))
    return EnergyObjective(
        bound=bound, energy=energy, epsilon=epsilon, n_servers=n_servers
    )


class TestCompressionProperties:
    @given(
        st.lists(st.floats(-100.0, 100.0), min_size=2, max_size=200),
        st.floats(0.01, 1.0),
    )
    def test_topk_preserves_kept_values_zeroes_rest(self, values, fraction) -> None:
        update = np.array(values)
        result = TopKCompressor(fraction).compress(update)
        # Every output entry is either the input entry or exactly zero.
        same = result.dense == update
        zero = result.dense == 0.0
        assert np.all(same | zero)

    @given(
        st.lists(st.floats(-50.0, 50.0), min_size=2, max_size=100),
        st.floats(0.01, 1.0),
    )
    def test_topk_error_never_exceeds_dropped_mass(self, values, fraction) -> None:
        update = np.array(values)
        result = TopKCompressor(fraction).compress(update)
        # The reconstruction error is exactly the dropped coordinates.
        error = update - result.dense
        assert np.linalg.norm(error) <= np.linalg.norm(update) + 1e-12

    @given(
        st.lists(
            st.floats(-10.0, 10.0).filter(lambda v: abs(v) > 1e-6),
            min_size=2,
            max_size=100,
        ),
        st.integers(2, 12),
    )
    def test_quantizer_error_bound(self, values, bits) -> None:
        update = np.array(values)
        result = UniformQuantizer(bits).compress(update)
        scale = np.abs(update).max()
        levels = 2 ** (bits - 1) - 1
        assert np.abs(result.dense - update).max() <= scale / levels * 0.5 + 1e-9

    @given(
        st.lists(
            st.lists(st.floats(-5.0, 5.0), min_size=10, max_size=10),
            min_size=1,
            max_size=20,
        ),
        st.floats(0.05, 0.9),
    )
    @settings(max_examples=40)
    def test_error_feedback_conserves_mass(self, rounds, fraction) -> None:
        wrapper = ErrorFeedback(TopKCompressor(fraction))
        total_in = np.zeros(10)
        total_out = np.zeros(10)
        for values in rounds:
            update = np.array(values)
            total_in += update
            total_out += wrapper.compress(3, update).dense
        # input mass = transmitted mass + pending residual, exactly.
        residual = total_in - total_out
        assert np.linalg.norm(residual) == pytest.approx(
            wrapper.residual_norm(3), abs=1e-9
        )


class TestDeadlineProperties:
    @given(objectives(), st.integers(1, 500))
    @settings(max_examples=30, deadline=None)
    def test_plan_respects_deadline_and_feasibility(self, objective, deadline) -> None:
        try:
            plan = solve_with_deadline(objective, deadline)
        except ValueError:
            assume(False)
        assert plan.rounds <= max(
            deadline, plan.rounds if not plan.binding else deadline
        )
        if plan.binding:
            assert plan.rounds <= deadline
        assert objective.is_feasible(plan.participants, plan.epochs)
        assert plan.energy == pytest.approx(
            objective.value_integer(plan.participants, plan.epochs)
        )

    @given(objectives())
    @settings(max_examples=30, deadline=None)
    def test_deadline_never_beats_unconstrained(self, objective) -> None:
        try:
            unconstrained = ACSSolver(objective).solve()
            plan = solve_with_deadline(objective, deadline=5)
        except ValueError:
            assume(False)
        assert plan.energy >= unconstrained.energy_int - 1e-9


class TestBoundZooProperties:
    @given(
        st.sampled_from([KMRBoundModel, StichBoundModel, KStepBoundModel]),
        st.floats(0.01, 20.0),
        st.floats(0.0, 0.3),
        st.integers(1, 60),
        st.integers(1, 30),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=60)
    def test_bisection_inversion(self, family, theta0, theta1, e, k, margin) -> None:
        theta = np.array([theta0, theta1, 0.0][: family.n_parameters()])
        model = family(theta)
        floor = model.asymptotic_gap(e, k)
        epsilon = floor + margin
        t_star = model.required_rounds(epsilon, e, k)
        assert model.loss_gap(t_star, e, k) == pytest.approx(epsilon, rel=1e-5)
        # One fewer round misses the target (up to bisection tolerance).
        if t_star > 1e-6:
            assert model.loss_gap(t_star * 0.99, e, k) >= epsilon * (1 - 1e-6)


class TestBatteryProperties:
    @given(
        st.integers(1, 50),
        st.floats(0.1, 1000.0),
        st.floats(100.0, 1e6),
    )
    def test_tasks_until_depletion_consistent(self, n_devices, per_task, capacity) -> None:
        model = FleetLifetimeModel(
            n_devices=n_devices,
            per_task_cluster_energy_j=per_task,
            battery=BatteryConfig(
                capacity_j=capacity, usable_fraction=1.0, self_discharge_per_day=0.0
            ),
        )
        tasks = model.tasks_until_depletion()
        # tasks * per-device-drain fits in the budget; tasks+1 does not.
        drain = model.per_task_device_energy_j
        assert tasks * drain <= capacity + 1e-6
        assert (tasks + 1) * drain > capacity - 1e-6
