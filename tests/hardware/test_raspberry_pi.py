"""Unit tests for the Raspberry Pi device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants
from repro.fl.model import LogisticRegressionConfig
from repro.hardware.power_model import StepPowers
from repro.hardware.raspberry_pi import PiTimingConfig, RaspberryPiEdgeServer
from repro.net.messages import model_download_message, model_upload_message

_MODEL = LogisticRegressionConfig()
_DOWNLOAD = model_download_message(_MODEL)
_UPLOAD = model_upload_message(_MODEL)


@pytest.fixture()
def device() -> RaspberryPiEdgeServer:
    return RaspberryPiEdgeServer(server_id=0)


class TestTrainingDuration:
    def test_matches_paper_law(self, device: RaspberryPiEdgeServer) -> None:
        expected = 10 * (
            constants.TAU0_SECONDS_PER_SAMPLE_EPOCH * 1000
            + constants.TAU1_SECONDS_PER_EPOCH
        )
        assert device.training_duration(10, 1000) == pytest.approx(expected)

    def test_reproduces_table1_within_6_percent(
        self, device: RaspberryPiEdgeServer
    ) -> None:
        for (epochs, n), measured in constants.TABLE_I_DURATIONS.items():
            simulated = device.training_duration(epochs, n)
            assert simulated == pytest.approx(measured, rel=0.06), (epochs, n)

    def test_linear_in_epochs(self, device: RaspberryPiEdgeServer) -> None:
        single = device.training_duration(1, 500)
        assert device.training_duration(7, 500) == pytest.approx(7 * single)

    def test_duration_table_grid(self, device: RaspberryPiEdgeServer) -> None:
        table = device.duration_table([10, 20], [100, 200])
        assert set(table) == {(10, 100), (10, 200), (20, 100), (20, 200)}

    def test_rejects_invalid(self, device: RaspberryPiEdgeServer) -> None:
        with pytest.raises(ValueError):
            device.training_duration(0, 100)
        with pytest.raises(ValueError):
            device.training_duration(1, 0)


class TestRoundTiming:
    def test_phases_present(self, device: RaspberryPiEdgeServer) -> None:
        timing = device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD)
        assert timing.waiting_s == 1.0
        assert timing.downloading_s > 0
        assert timing.training_s == pytest.approx(device.training_duration(10, 1000))
        assert timing.uploading_s > 0
        assert timing.total_s == pytest.approx(
            timing.waiting_s
            + timing.downloading_s
            + timing.training_s
            + timing.uploading_s
        )

    def test_jitter_requires_rng(self) -> None:
        with pytest.raises(ValueError, match="jitter requires"):
            RaspberryPiEdgeServer(0, timing=PiTimingConfig(jitter_fraction=0.1))

    def test_jitter_varies_durations(self) -> None:
        device = RaspberryPiEdgeServer(
            0,
            timing=PiTimingConfig(jitter_fraction=0.1),
            rng=np.random.default_rng(0),
        )
        durations = {
            device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD).training_s
            for _ in range(5)
        }
        assert len(durations) > 1

    def test_no_jitter_is_deterministic(self, device: RaspberryPiEdgeServer) -> None:
        a = device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD)
        b = device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD)
        assert a == b

    def test_timing_config_validation(self) -> None:
        with pytest.raises(ValueError):
            PiTimingConfig(tau0=0.0)
        with pytest.raises(ValueError):
            PiTimingConfig(waiting_s=-1.0)
        with pytest.raises(ValueError):
            PiTimingConfig(jitter_fraction=0.6)


class TestPowerProcess:
    def test_four_plateaus_in_order(self, device: RaspberryPiEdgeServer) -> None:
        timing = device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD)
        process = device.round_power_process(timing)
        labels = [s.label for s in process.segments]
        assert labels == ["waiting", "downloading", "training", "uploading"]
        values = [s.value for s in process.segments]
        assert values == [
            constants.POWER_WAITING_W,
            constants.POWER_DOWNLOADING_W,
            constants.POWER_TRAINING_W,
            constants.POWER_UPLOADING_W,
        ]

    def test_zero_waiting_omits_segment(self) -> None:
        device = RaspberryPiEdgeServer(0, timing=PiTimingConfig(waiting_s=0.0))
        timing = device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD)
        process = device.round_power_process(timing)
        assert [s.label for s in process.segments] == [
            "downloading",
            "training",
            "uploading",
        ]

    def test_process_integral_equals_round_energy_with_waiting(
        self, device: RaspberryPiEdgeServer
    ) -> None:
        timing = device.round_timing(10, 1000, _DOWNLOAD, _UPLOAD)
        process = device.round_power_process(timing)
        assert process.integral() == pytest.approx(
            device.round_energy(10, 1000, _DOWNLOAD, _UPLOAD, include_waiting=True)
        )


class TestEnergy:
    def test_training_energy_matches_eq5(self, device: RaspberryPiEdgeServer) -> None:
        # duration x training power == c0 E n + c1 E by construction.
        energy = device.training_energy(10, 1000)
        expected = 10 * (
            constants.C0_JOULES_PER_SAMPLE_EPOCH * 1000
            + constants.C1_JOULES_PER_EPOCH
        )
        assert energy == pytest.approx(expected)

    def test_round_energy_excludes_waiting_by_default(
        self, device: RaspberryPiEdgeServer
    ) -> None:
        without = device.round_energy(10, 1000, _DOWNLOAD, _UPLOAD)
        with_waiting = device.round_energy(
            10, 1000, _DOWNLOAD, _UPLOAD, include_waiting=True
        )
        assert with_waiting - without == pytest.approx(
            1.0 * constants.POWER_WAITING_W
        )

    def test_upload_energy_constant(self, device: RaspberryPiEdgeServer) -> None:
        e_u = device.upload_energy(_UPLOAD)
        assert e_u > 0
        assert device.upload_energy(_UPLOAD) == pytest.approx(e_u)

    def test_heterogeneous_powers_scale_energy(self) -> None:
        hungry = RaspberryPiEdgeServer(0, powers=StepPowers().scaled(2.0))
        normal = RaspberryPiEdgeServer(1)
        assert hungry.training_energy(5, 500) == pytest.approx(
            2 * normal.training_energy(5, 500)
        )
