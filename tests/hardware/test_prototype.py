"""Integration tests for the full simulated testbed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.fl.sgd import SGDConfig
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.iot.network import IoTNetwork
from repro.net.messages import model_download_message, model_upload_message


@pytest.fixture(scope="module")
def prototype() -> HardwarePrototype:
    train = generate_synthetic_mnist(800, seed=0)
    test = generate_synthetic_mnist(200, seed=1)
    config = PrototypeConfig(
        n_servers=8, sgd=SGDConfig(learning_rate=0.05, decay=0.995), seed=0
    )
    return HardwarePrototype(train, test, config)


class TestRun:
    def test_runs_requested_rounds(self, prototype: HardwarePrototype) -> None:
        result = prototype.run(participants=3, epochs=5, n_rounds=10)
        assert result.rounds == 10
        assert len(result.energy_per_round_j) == 10
        assert result.total_energy_j == pytest.approx(
            float(np.sum(result.energy_per_round_j))
        )
        assert result.participants == 3
        assert result.epochs == 5

    def test_wall_clock_covers_all_rounds(self, prototype: HardwarePrototype) -> None:
        result = prototype.run(participants=2, epochs=3, n_rounds=5)
        # Each round takes at least waiting (1 s) + training time.
        assert result.wall_clock_s >= 5 * 1.0

    def test_energy_scales_with_participants(self, prototype: HardwarePrototype) -> None:
        small = prototype.run(participants=1, epochs=5, n_rounds=5)
        large = prototype.run(participants=6, epochs=5, n_rounds=5)
        assert large.mean_round_energy_j == pytest.approx(
            6 * small.mean_round_energy_j, rel=0.01
        )

    def test_energy_grows_with_epochs(self, prototype: HardwarePrototype) -> None:
        few = prototype.run(participants=2, epochs=1, n_rounds=3)
        many = prototype.run(participants=2, epochs=20, n_rounds=3)
        assert many.mean_round_energy_j > few.mean_round_energy_j

    def test_round_energy_matches_device_model(
        self, prototype: HardwarePrototype
    ) -> None:
        result = prototype.run(participants=2, epochs=4, n_rounds=1)
        download = model_download_message(prototype.config.model)
        upload = model_upload_message(prototype.config.model)
        expected = 0.0
        for server_id in result.history[0].participants:
            n_k = prototype.samples_per_server
            expected += prototype.devices[server_id].round_energy(
                4, n_k, download, upload
            )
        assert result.energy_per_round_j[0] == pytest.approx(expected, rel=1e-6)

    def test_target_accuracy_stops_early(self, prototype: HardwarePrototype) -> None:
        result = prototype.run(
            participants=8, epochs=20, n_rounds=200, target_accuracy=0.5
        )
        assert result.reached_target
        assert result.rounds < 200

    def test_unreached_target_flag(self, prototype: HardwarePrototype) -> None:
        result = prototype.run(
            participants=1, epochs=1, n_rounds=2, target_accuracy=0.999
        )
        assert not result.reached_target

    def test_learning_progresses(self, prototype: HardwarePrototype) -> None:
        result = prototype.run(participants=8, epochs=10, n_rounds=40)
        assert result.history.final_accuracy() > 0.5
        assert result.history.final_loss() < result.history.losses[0]

    def test_deterministic(self, prototype: HardwarePrototype) -> None:
        a = prototype.run(participants=3, epochs=2, n_rounds=4)
        b = prototype.run(participants=3, epochs=2, n_rounds=4)
        np.testing.assert_allclose(a.energy_per_round_j, b.energy_per_round_j)
        np.testing.assert_array_equal(a.history.losses, b.history.losses)


class TestIoTCoupling:
    def test_iot_energy_accounted(self) -> None:
        train = generate_synthetic_mnist(400, seed=2)
        test = generate_synthetic_mnist(100, seed=3)
        iot = IoTNetwork.homogeneous(4, devices_per_cluster=2, sample_bytes=50)
        config = PrototypeConfig(n_servers=4, include_iot=True, seed=0)
        prototype = HardwarePrototype(train, test, config, iot_network=iot)
        result = prototype.run(participants=2, epochs=1, n_rounds=3)
        assert result.iot_energy_j > 0
        n_k = prototype.samples_per_server
        expected_per_selection = iot.cluster(0).collection_energy(n_k)
        assert result.iot_energy_j == pytest.approx(3 * 2 * expected_per_selection)

    def test_include_iot_requires_network(self) -> None:
        train = generate_synthetic_mnist(100, seed=0)
        with pytest.raises(ValueError, match="iot_network"):
            HardwarePrototype(
                train, train, PrototypeConfig(n_servers=2, include_iot=True)
            )


class TestPowerTraceRecording:
    def test_trace_has_round_structure(self, prototype: HardwarePrototype) -> None:
        trace = prototype.record_power_trace(0, epochs=10, n_rounds=3)
        plateaus = trace.detect_plateaus(tolerance_w=0.3)
        # 4 phases x 3 rounds, possibly merged at boundaries; at least
        # the training plateau must appear three times.
        training = [p for p in plateaus if abs(p[2] - 5.553) < 0.3]
        assert len(training) == 3

    def test_trace_energy_close_to_model(self, prototype: HardwarePrototype) -> None:
        trace = prototype.record_power_trace(0, epochs=10, n_rounds=2)
        download = model_download_message(prototype.config.model)
        upload = model_upload_message(prototype.config.model)
        expected = 2 * prototype.devices[0].round_energy(
            10, prototype.samples_per_server, download, upload, include_waiting=True
        )
        assert trace.energy() == pytest.approx(expected, rel=0.02)

    def test_rejects_nonpositive_rounds(self, prototype: HardwarePrototype) -> None:
        with pytest.raises(ValueError, match="n_rounds"):
            prototype.record_power_trace(0, epochs=1, n_rounds=0)
