"""Unit tests for power-trace CSV persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.trace import PowerTrace
from repro.hardware.trace_io import (
    load_trace_csv,
    save_trace_csv,
    trace_from_csv,
    trace_to_csv,
)


def _trace(n: int = 50) -> PowerTrace:
    times = np.arange(n) / 1000.0
    power = 5.0 + 0.1 * np.sin(times * 50)
    voltage = np.full(n, 5.1)
    return PowerTrace(times, power, voltage, power / voltage)


class TestRoundTrip:
    def test_text_roundtrip_preserves_data(self) -> None:
        original = _trace()
        restored = trace_from_csv(trace_to_csv(original))
        np.testing.assert_allclose(restored.times, original.times)
        np.testing.assert_allclose(restored.power_w, original.power_w, rtol=1e-8)
        np.testing.assert_allclose(restored.voltage_v, original.voltage_v, rtol=1e-8)
        np.testing.assert_allclose(restored.current_a, original.current_a, rtol=1e-8)

    def test_energy_preserved(self) -> None:
        original = _trace(500)
        restored = trace_from_csv(trace_to_csv(original))
        assert restored.energy() == pytest.approx(original.energy(), rel=1e-8)

    def test_file_roundtrip(self, tmp_path) -> None:
        original = _trace()
        path = tmp_path / "trace.csv"
        save_trace_csv(original, path)
        restored = load_trace_csv(path)
        np.testing.assert_allclose(restored.power_w, original.power_w, rtol=1e-8)

    def test_csv_has_header(self) -> None:
        text = trace_to_csv(_trace(5))
        assert text.splitlines()[0] == "time_s,voltage_v,current_a,power_w"


class TestParsing:
    def test_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="empty CSV"):
            trace_from_csv("")

    def test_rejects_wrong_header(self) -> None:
        with pytest.raises(ValueError, match="unexpected CSV header"):
            trace_from_csv("a,b,c,d\n1,2,3,4\n")

    def test_rejects_wrong_column_count(self) -> None:
        text = "time_s,voltage_v,current_a,power_w\n0.0,5.1,1.0\n"
        with pytest.raises(ValueError, match="4 columns"):
            trace_from_csv(text)

    def test_rejects_non_numeric(self) -> None:
        text = "time_s,voltage_v,current_a,power_w\n0.0,5.1,x,5.0\n0.001,5.1,1.0,5.0\n"
        with pytest.raises(ValueError, match="line 2"):
            trace_from_csv(text)

    def test_skips_blank_lines(self) -> None:
        text = (
            "time_s,voltage_v,current_a,power_w\n"
            "0.0,5.1,1.0,5.0\n\n0.001,5.1,1.0,5.0\n"
        )
        assert len(trace_from_csv(text)) == 2

    def test_trace_validation_still_applies(self) -> None:
        # Non-increasing times must be rejected by the PowerTrace check.
        text = (
            "time_s,voltage_v,current_a,power_w\n"
            "0.0,5.1,1.0,5.0\n0.0,5.1,1.0,5.0\n"
        )
        with pytest.raises(ValueError, match="strictly increasing"):
            trace_from_csv(text)
