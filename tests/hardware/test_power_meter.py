"""Unit tests for the simulated KM001C power meter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.power_meter import MeterConfig, PowerMeter
from repro.sim.processes import StepProcess


def _process(durations_powers: list[tuple[float, float]]) -> StepProcess:
    process = StepProcess()
    for duration, power in durations_powers:
        process.append(duration, power)
    return process


class TestNoiselessMeter:
    def _meter(self, rate: float = 1000.0) -> PowerMeter:
        return PowerMeter(
            MeterConfig(sample_rate_hz=rate, power_noise_std_w=0.0, voltage_noise_std_v=0.0)
        )

    def test_sample_count_matches_rate(self) -> None:
        trace = self._meter(1000.0).record(_process([(2.0, 5.0)]))
        assert len(trace) == 2001
        assert trace.sample_rate == pytest.approx(1000.0)

    def test_recovers_exact_energy_for_constant_power(self) -> None:
        trace = self._meter().record(_process([(1.5, 4.0)]))
        assert trace.energy() == pytest.approx(1.5 * 4.0, rel=1e-3)

    def test_multistep_energy_close_to_exact(self) -> None:
        process = _process([(1.0, 3.6), (0.5, 5.553), (0.2, 5.015)])
        trace = self._meter().record(process)
        assert trace.energy() == pytest.approx(process.integral(), rel=5e-3)

    def test_current_is_power_over_voltage(self) -> None:
        trace = self._meter().record(_process([(1.0, 5.1)]))
        np.testing.assert_allclose(trace.current_a, trace.power_w / trace.voltage_v)

    def test_short_process_still_two_samples(self) -> None:
        trace = self._meter(10.0).record(_process([(0.01, 5.0)]))
        assert len(trace) >= 2

    def test_empty_process_rejected(self) -> None:
        with pytest.raises(ValueError, match="empty"):
            self._meter().record(StepProcess())


class TestNoisyMeter:
    def test_noise_requires_rng(self) -> None:
        with pytest.raises(ValueError, match="rng"):
            PowerMeter(MeterConfig(power_noise_std_w=0.1))

    def test_noise_perturbs_readings(self) -> None:
        meter = PowerMeter(
            MeterConfig(power_noise_std_w=0.1), rng=np.random.default_rng(0)
        )
        trace = meter.record(_process([(1.0, 5.0)]))
        assert trace.power_w.std() > 0.01
        assert trace.power_w.mean() == pytest.approx(5.0, abs=0.05)

    def test_power_never_negative(self) -> None:
        meter = PowerMeter(
            MeterConfig(power_noise_std_w=5.0), rng=np.random.default_rng(1)
        )
        trace = meter.record(_process([(1.0, 0.5)]))
        assert trace.power_w.min() >= 0.0

    def test_energy_unbiased_under_noise(self) -> None:
        meter = PowerMeter(
            MeterConfig(power_noise_std_w=0.05), rng=np.random.default_rng(2)
        )
        trace = meter.record(_process([(2.0, 5.553)]))
        assert trace.energy() == pytest.approx(2.0 * 5.553, rel=0.01)


class TestMeterConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_rate_hz": 0.0},
            {"nominal_voltage_v": 0.0},
            {"power_noise_std_w": -0.1},
            {"voltage_noise_std_v": -0.1},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            MeterConfig(**kwargs)

    def test_default_rate_is_paper_rate(self) -> None:
        assert MeterConfig().sample_rate_hz == 1000.0
