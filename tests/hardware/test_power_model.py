"""Unit tests for the power-state model and power traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants
from repro.hardware.power_model import RoundPhase, StepPowers
from repro.hardware.trace import PowerTrace


class TestStepPowers:
    def test_defaults_are_paper_values(self) -> None:
        powers = StepPowers()
        assert powers.power_for(RoundPhase.WAITING) == constants.POWER_WAITING_W
        assert powers.power_for(RoundPhase.DOWNLOADING) == constants.POWER_DOWNLOADING_W
        assert powers.power_for(RoundPhase.TRAINING) == constants.POWER_TRAINING_W
        assert powers.power_for(RoundPhase.UPLOADING) == constants.POWER_UPLOADING_W

    def test_scaled_device(self) -> None:
        hungry = StepPowers().scaled(2.0)
        assert hungry.training_w == pytest.approx(2 * constants.POWER_TRAINING_W)
        assert hungry.waiting_w == pytest.approx(2 * constants.POWER_WAITING_W)

    def test_scaled_rejects_nonpositive(self) -> None:
        with pytest.raises(ValueError, match="factor"):
            StepPowers().scaled(0.0)

    def test_rejects_nonpositive_power(self) -> None:
        with pytest.raises(ValueError, match="waiting_w"):
            StepPowers(waiting_w=0.0)


def _trace(n: int = 100, power: float = 5.0, rate: float = 1000.0) -> PowerTrace:
    times = np.arange(n) / rate
    powers = np.full(n, power)
    voltage = np.full(n, 5.1)
    return PowerTrace(times, powers, voltage, powers / voltage)


class TestPowerTrace:
    def test_basic_statistics(self) -> None:
        trace = _trace(n=1001, power=5.0)
        assert len(trace) == 1001
        assert trace.duration == pytest.approx(1.0)
        assert trace.sample_rate == pytest.approx(1000.0)
        assert trace.mean_power() == pytest.approx(5.0)
        assert trace.peak_power() == pytest.approx(5.0)

    def test_energy_is_power_times_time(self) -> None:
        trace = _trace(n=2001, power=3.6)
        assert trace.energy() == pytest.approx(3.6 * 2.0)

    def test_between_slices(self) -> None:
        trace = _trace(n=1001)
        sub = trace.between(0.25, 0.75)
        assert sub.times[0] >= 0.25
        assert sub.times[-1] <= 0.75
        assert sub.duration == pytest.approx(0.5, abs=2e-3)

    def test_between_rejects_thin_slice(self) -> None:
        trace = _trace(n=100)
        with pytest.raises(ValueError, match="fewer than two"):
            trace.between(0.0001, 0.00015)

    def test_between_rejects_inverted(self) -> None:
        with pytest.raises(ValueError, match="end > start"):
            _trace().between(0.5, 0.2)

    def test_concatenation(self) -> None:
        first = _trace(n=100)
        second = PowerTrace(
            first.times + 1.0, first.power_w, first.voltage_v, first.current_a
        )
        joined = first.concatenated_with(second)
        assert len(joined) == 200
        assert joined.duration > first.duration

    def test_concatenation_rejects_overlap(self) -> None:
        trace = _trace(n=100)
        with pytest.raises(ValueError, match="strictly after"):
            trace.concatenated_with(trace)

    def test_validation(self) -> None:
        with pytest.raises(ValueError, match="at least two"):
            PowerTrace(np.array([0.0]), np.array([1.0]), np.array([5.0]), np.array([0.2]))
        with pytest.raises(ValueError, match="strictly increasing"):
            PowerTrace(
                np.array([0.0, 0.0]),
                np.ones(2),
                np.full(2, 5.0),
                np.full(2, 0.2),
            )
        with pytest.raises(ValueError, match="power_w"):
            PowerTrace(np.array([0.0, 1.0]), np.ones(3), np.full(2, 5.0), np.full(2, 0.2))


class TestPlateauDetection:
    def test_detects_two_plateaus(self) -> None:
        times = np.arange(200) / 100.0
        power = np.where(times < 1.0, 3.6, 5.5)
        trace = PowerTrace(times, power, np.full(200, 5.1), power / 5.1)
        plateaus = trace.detect_plateaus(tolerance_w=0.5)
        assert len(plateaus) == 2
        assert plateaus[0][2] == pytest.approx(3.6)
        assert plateaus[1][2] == pytest.approx(5.5)

    def test_tolerance_merges_noise(self) -> None:
        rng = np.random.default_rng(0)
        times = np.arange(500) / 100.0
        power = 4.0 + rng.normal(0, 0.01, 500)
        trace = PowerTrace(times, power, np.full(500, 5.1), power / 5.1)
        plateaus = trace.detect_plateaus(tolerance_w=0.3)
        assert len(plateaus) == 1

    def test_rejects_nonpositive_tolerance(self) -> None:
        with pytest.raises(ValueError, match="tolerance"):
            _trace().detect_plateaus(0.0)
