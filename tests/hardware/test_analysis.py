"""Unit tests for the trace-analysis (inverse) pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.hardware.analysis import analyze_trace
from repro.hardware.power_meter import MeterConfig, PowerMeter
from repro.hardware.power_model import RoundPhase, StepPowers
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.hardware.raspberry_pi import RaspberryPiEdgeServer
from repro.net.messages import model_download_message, model_upload_message
from repro.fl.model import LogisticRegressionConfig
from repro.sim.processes import StepProcess


def _metered_rounds(epochs: int, n_samples: int, n_rounds: int, noise: float = 0.0):
    """Build a clean or noisy metered trace of known ground truth."""
    device = RaspberryPiEdgeServer(server_id=0)
    model = LogisticRegressionConfig()
    download = model_download_message(model)
    upload = model_upload_message(model)
    process = StepProcess()
    for _ in range(n_rounds):
        timing = device.round_timing(epochs, n_samples, download, upload)
        process.extend(device.round_power_process(timing))
    meter = PowerMeter(
        MeterConfig(power_noise_std_w=noise, voltage_noise_std_v=0.0),
        rng=np.random.default_rng(0) if noise else None,
    )
    return device, meter.record(process)


class TestSegmentation:
    def test_recovers_round_count(self) -> None:
        _, trace = _metered_rounds(epochs=10, n_samples=1000, n_rounds=3)
        analysis = analyze_trace(trace)
        assert analysis.n_rounds == 3

    def test_each_round_has_four_phases(self) -> None:
        _, trace = _metered_rounds(epochs=10, n_samples=1000, n_rounds=2)
        analysis = analyze_trace(trace)
        for round_ in analysis.rounds:
            phases = [p.phase for p in round_.phases]
            assert phases == [
                RoundPhase.WAITING,
                RoundPhase.DOWNLOADING,
                RoundPhase.TRAINING,
                RoundPhase.UPLOADING,
            ]

    def test_works_under_meter_noise(self) -> None:
        _, trace = _metered_rounds(epochs=20, n_samples=1000, n_rounds=2, noise=0.02)
        analysis = analyze_trace(trace)
        assert analysis.n_rounds == 2

    def test_rejects_flat_trace(self) -> None:
        from repro.hardware.trace import PowerTrace

        times = np.arange(100) / 1000.0
        power = np.full(100, 5.0)
        trace = PowerTrace(times, power, np.full(100, 5.1), power / 5.1)
        analysis = analyze_trace(trace)
        # A flat trace is one plateau: one "round" with a single phase.
        assert analysis.n_rounds == 1


class TestDurations:
    def test_training_duration_matches_device_law(self) -> None:
        device, trace = _metered_rounds(epochs=20, n_samples=1000, n_rounds=2)
        analysis = analyze_trace(trace)
        expected = device.training_duration(20, 1000)
        assert analysis.mean_phase_duration(RoundPhase.TRAINING) == pytest.approx(
            expected, rel=0.05
        )

    def test_waiting_duration_recovered(self) -> None:
        _, trace = _metered_rounds(epochs=10, n_samples=500, n_rounds=2)
        analysis = analyze_trace(trace)
        assert analysis.mean_phase_duration(RoundPhase.WAITING) == pytest.approx(
            1.0, rel=0.05
        )

    def test_round_energy_close_to_device_model(self) -> None:
        device, trace = _metered_rounds(epochs=10, n_samples=1000, n_rounds=2)
        analysis = analyze_trace(trace)
        model = LogisticRegressionConfig()
        expected = device.round_energy(
            10,
            1000,
            model_download_message(model),
            model_upload_message(model),
        )
        assert analysis.mean_round_energy() == pytest.approx(expected, rel=0.1)

    def test_missing_phase_raises(self) -> None:
        from repro.hardware.trace import PowerTrace

        # Only a training-level plateau: waiting is absent.
        times = np.arange(200) / 1000.0
        power = np.full(200, 5.553)
        trace = PowerTrace(times, power, np.full(200, 5.1), power / 5.1)
        analysis = analyze_trace(trace)
        with pytest.raises(ValueError, match="waiting"):
            analysis.mean_phase_duration(RoundPhase.WAITING)


class TestParameterInversion:
    @pytest.mark.parametrize("epochs,n_samples", [(10, 1000), (40, 500), (20, 2000)])
    def test_estimate_epochs(self, epochs: int, n_samples: int) -> None:
        _, trace = _metered_rounds(epochs=epochs, n_samples=n_samples, n_rounds=2)
        analysis = analyze_trace(trace)
        assert analysis.estimate_epochs(n_samples) == pytest.approx(epochs, rel=0.08)

    @pytest.mark.parametrize("epochs,n_samples", [(10, 1000), (40, 500)])
    def test_estimate_samples(self, epochs: int, n_samples: int) -> None:
        _, trace = _metered_rounds(epochs=epochs, n_samples=n_samples, n_rounds=2)
        analysis = analyze_trace(trace)
        assert analysis.estimate_samples(epochs) == pytest.approx(
            n_samples, rel=0.08
        )

    def test_inversion_rejects_bad_args(self) -> None:
        _, trace = _metered_rounds(epochs=10, n_samples=500, n_rounds=1)
        analysis = analyze_trace(trace)
        with pytest.raises(ValueError, match="n_samples"):
            analysis.estimate_epochs(0)
        with pytest.raises(ValueError, match="epochs"):
            analysis.estimate_samples(0)


class TestEndToEnd:
    def test_prototype_trace_roundtrip(self) -> None:
        """Meter the testbed, analyse the capture, recover E."""
        train = generate_synthetic_mnist(800, seed=0)
        test = generate_synthetic_mnist(200, seed=1)
        prototype = HardwarePrototype(train, test, PrototypeConfig(n_servers=4))
        epochs = 25
        trace = prototype.record_power_trace(0, epochs=epochs, n_rounds=3)
        analysis = analyze_trace(trace)
        assert analysis.n_rounds == 3
        n_k = prototype.samples_per_server
        assert analysis.estimate_epochs(n_k) == pytest.approx(epochs, rel=0.1)
