"""Tests for heterogeneous-hardware testbeds (eq. (12)'s expectations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.iot.network import IoTNetwork


def _prototype(heterogeneity: float, n_servers: int = 6, **kwargs) -> HardwarePrototype:
    train = generate_synthetic_mnist(600, seed=0)
    test = generate_synthetic_mnist(150, seed=1)
    config = PrototypeConfig(
        n_servers=n_servers, heterogeneity=heterogeneity, seed=0, **kwargs
    )
    return HardwarePrototype(train, test, config)


class TestHeterogeneousDevices:
    def test_zero_heterogeneity_is_uniform(self) -> None:
        proto = _prototype(0.0)
        params = proto.heterogeneous_energy_params()
        assert np.allclose(params.c0, params.c0[0])
        assert np.allclose(params.e_upload, params.e_upload[0])

    def test_nonzero_heterogeneity_varies_devices(self) -> None:
        proto = _prototype(0.3)
        params = proto.heterogeneous_energy_params()
        assert params.c0.std() > 0
        assert params.c1.std() > 0

    def test_deterministic_given_seed(self) -> None:
        a = _prototype(0.3).heterogeneous_energy_params()
        b = _prototype(0.3).heterogeneous_energy_params()
        np.testing.assert_allclose(a.c0, b.c0)

    def test_mean_params_near_nominal(self) -> None:
        # The spread is centred on the stock Raspberry Pi, so with a few
        # devices the mean should stay within ~50% of the nominal c0.
        proto = _prototype(0.2, n_servers=20)
        mean = proto.heterogeneous_energy_params().mean()
        assert mean.c0 == pytest.approx(7.79e-5, rel=0.5)

    def test_rejects_excessive_heterogeneity(self) -> None:
        with pytest.raises(ValueError, match="heterogeneity"):
            _prototype(0.95)

    def test_round_energy_differs_across_devices(self) -> None:
        proto = _prototype(0.4)
        result = proto.run(participants=proto.config.n_servers, epochs=5, n_rounds=1)
        # With full participation and heterogeneous devices, the per-round
        # energy is the sum of distinct per-device energies.
        from repro.net.messages import model_download_message, model_upload_message

        download = model_download_message(proto.config.model)
        upload = model_upload_message(proto.config.model)
        energies = [
            d.round_energy(5, len(proto._partitions[d.server_id]), download, upload)
            for d in proto.devices
        ]
        assert max(energies) > 1.2 * min(energies)
        assert result.energy_per_round_j[0] == pytest.approx(sum(energies), rel=1e-6)

    def test_rho_values_from_iot_network(self) -> None:
        train = generate_synthetic_mnist(200, seed=0)
        iot = IoTNetwork.homogeneous(4, devices_per_cluster=2, sample_bytes=100)
        proto = HardwarePrototype(
            train, train, PrototypeConfig(n_servers=4), iot_network=iot
        )
        params = proto.heterogeneous_energy_params()
        assert np.all(params.rho > 0)
        assert params.rho[0] == pytest.approx(iot.cluster(0).rho)

    def test_explicit_rho_override(self) -> None:
        proto = _prototype(0.0, n_servers=4)
        params = proto.heterogeneous_energy_params(rho_values={1: 0.5, 3: 0.2})
        assert params.rho.tolist() == [0.0, 0.5, 0.0, 0.2]
