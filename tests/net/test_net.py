"""Unit tests for the coordination-network substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.model import LogisticRegressionConfig
from repro.net.channel import ChannelConfig, TransferTimeout, WirelessChannel
from repro.net.messages import (
    ModelMessage,
    model_download_message,
    model_upload_message,
)
from repro.net.router import Router


class TestMessages:
    def test_payload_from_model_size(self) -> None:
        config = LogisticRegressionConfig(n_features=784, n_classes=10)
        message = model_download_message(config)
        assert message.payload_bytes == (784 * 10 + 10) * 4
        assert message.total_bytes == message.payload_bytes + message.header_bytes
        assert message.total_bits == 8 * message.total_bytes

    def test_upload_and_download_same_size(self) -> None:
        config = LogisticRegressionConfig()
        assert (
            model_upload_message(config).total_bytes
            == model_download_message(config).total_bytes
        )

    def test_dtype_bytes(self) -> None:
        config = LogisticRegressionConfig(n_features=10, n_classes=2)
        assert model_upload_message(config, dtype_bytes=8).payload_bytes == 22 * 8

    def test_rejects_bad_direction(self) -> None:
        with pytest.raises(ValueError, match="direction"):
            ModelMessage("sideways", 100)

    def test_rejects_negative_sizes(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            ModelMessage("upload", -1)


class TestChannel:
    def test_attempt_duration_is_latency_plus_serialisation(self) -> None:
        channel = WirelessChannel(ChannelConfig(rate_bps=1e6, latency_s=0.01))
        assert channel.attempt_duration(12500) == pytest.approx(0.01 + 0.1)

    def test_lossless_transfer_single_attempt(self) -> None:
        channel = WirelessChannel(ChannelConfig(rate_bps=1e6))
        result = channel.transfer(1000)
        assert result.attempts == 1
        assert result.duration_s == channel.attempt_duration(1000)

    def test_lossy_transfer_retries(self) -> None:
        channel = WirelessChannel(
            ChannelConfig(rate_bps=1e6, loss_probability=0.8),
            rng=np.random.default_rng(0),
        )
        attempts = [channel.transfer(100).attempts for _ in range(300)]
        assert max(attempts) > 1
        # Geometric mean 1/(1-p) = 5.
        assert np.mean(attempts) == pytest.approx(5.0, rel=0.25)

    def test_expected_duration_inflates_by_loss(self) -> None:
        lossless = WirelessChannel(ChannelConfig(rate_bps=1e6))
        lossy = WirelessChannel(
            ChannelConfig(rate_bps=1e6, loss_probability=0.5),
            rng=np.random.default_rng(0),
        )
        assert lossy.expected_duration(1000) == pytest.approx(
            2 * lossless.expected_duration(1000)
        )

    def test_lossy_requires_rng(self) -> None:
        with pytest.raises(ValueError, match="rng"):
            WirelessChannel(ChannelConfig(loss_probability=0.1))

    def test_transfer_message(self) -> None:
        config = LogisticRegressionConfig()
        channel = WirelessChannel(ChannelConfig())
        message = model_upload_message(config)
        assert channel.transfer_message(message).payload_bytes == message.total_bytes

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_bps": 0.0},
            {"latency_s": -0.1},
            {"loss_probability": 1.0},
            {"loss_probability": -0.1},
        ],
    )
    def test_rejects_invalid_config(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            ChannelConfig(**kwargs)

    def test_rejects_negative_bytes(self) -> None:
        with pytest.raises(ValueError, match="n_bytes"):
            WirelessChannel(ChannelConfig()).attempt_duration(-1)


class _AlwaysLost:
    def attempt_lost(self, rng: np.random.Generator) -> bool:
        return True


class _NeverLost:
    def attempt_lost(self, rng: np.random.Generator) -> bool:
        return False


class TestBoundedRetries:
    def test_max_attempts_raises_typed_timeout(self) -> None:
        channel = WirelessChannel(
            ChannelConfig(rate_bps=1e6, latency_s=0.0, max_attempts=3),
            rng=np.random.default_rng(0),
            loss_model=_AlwaysLost(),
        )
        with pytest.raises(TransferTimeout) as excinfo:
            channel.transfer(12_500)
        error = excinfo.value
        assert error.n_bytes == 12_500
        assert error.attempts == 3
        assert error.elapsed_s == pytest.approx(3 * 0.1)

    def test_attempts_never_exceed_cap(self) -> None:
        channel = WirelessChannel(
            ChannelConfig(rate_bps=1e6, loss_probability=0.8, max_attempts=5),
            rng=np.random.default_rng(0),
        )
        for _ in range(200):
            try:
                result = channel.transfer(100)
            except TransferTimeout as error:
                assert error.attempts == 5
            else:
                assert result.attempts <= 5

    def test_loss_model_overrides_bernoulli_loss(self) -> None:
        # Config says 90 % loss, but the attached model never loses.
        channel = WirelessChannel(
            ChannelConfig(rate_bps=1e6, loss_probability=0.9),
            rng=np.random.default_rng(0),
            loss_model=_NeverLost(),
        )
        assert all(channel.transfer(100).attempts == 1 for _ in range(50))

    def test_expected_duration_truncated_geometric(self) -> None:
        p, m = 0.5, 4
        bounded = WirelessChannel(
            ChannelConfig(rate_bps=1e6, loss_probability=p, max_attempts=m),
            rng=np.random.default_rng(0),
        )
        unbounded = WirelessChannel(
            ChannelConfig(rate_bps=1e6, loss_probability=p),
            rng=np.random.default_rng(0),
        )
        single = bounded.attempt_duration(1000)
        # E[attempts] = (1 - p^m) / (1 - p) < 1 / (1 - p).
        assert bounded.expected_duration(1000) == pytest.approx(
            single * (1 - p**m) / (1 - p)
        )
        assert bounded.expected_duration(1000) < unbounded.expected_duration(1000)

    def test_lossless_bounded_channel_is_single_attempt(self) -> None:
        channel = WirelessChannel(ChannelConfig(rate_bps=1e6, max_attempts=2))
        assert channel.expected_duration(1000) == channel.attempt_duration(1000)
        assert channel.transfer(1000).attempts == 1

    def test_rejects_bad_max_attempts(self) -> None:
        with pytest.raises(ValueError, match="max_attempts"):
            ChannelConfig(max_attempts=0)


class TestRouter:
    def test_uniform_links(self) -> None:
        router = Router(5, ChannelConfig(rate_bps=1e6))
        message = ModelMessage("download", 1000)
        durations = [router.transfer_duration(i, message) for i in range(5)]
        assert len(set(durations)) == 1

    def test_heterogeneous_link_override(self) -> None:
        router = Router(3, ChannelConfig(rate_bps=1e6))
        slow = WirelessChannel(ChannelConfig(rate_bps=1e5))
        router.set_link(1, slow)
        message = ModelMessage("download", 10_000)
        assert router.transfer_duration(1, message) > router.transfer_duration(0, message)

    def test_shared_medium_scales_with_concurrency(self) -> None:
        router = Router(4, ChannelConfig(rate_bps=1e6), shared_medium=True)
        message = ModelMessage("download", 1000)
        single = router.transfer_duration(0, message, concurrent=1)
        assert router.transfer_duration(0, message, concurrent=4) == pytest.approx(
            4 * single
        )

    def test_dedicated_medium_ignores_concurrency(self) -> None:
        router = Router(4, ChannelConfig(rate_bps=1e6))
        message = ModelMessage("download", 1000)
        assert router.transfer_duration(0, message, concurrent=4) == pytest.approx(
            router.transfer_duration(0, message, concurrent=1)
        )

    def test_broadcast_durations(self) -> None:
        router = Router(4, ChannelConfig(rate_bps=1e6), shared_medium=True)
        message = ModelMessage("download", 1000)
        durations = router.broadcast_duration([0, 2, 3], message)
        assert set(durations) == {0, 2, 3}
        single = router.transfer_duration(0, message, concurrent=1)
        assert durations[0] == pytest.approx(3 * single)

    def test_rejects_bad_device(self) -> None:
        router = Router(2)
        with pytest.raises(ValueError, match="device_id"):
            router.link(2)

    def test_rejects_bad_concurrency(self) -> None:
        router = Router(2)
        with pytest.raises(ValueError, match="concurrent"):
            router.transfer_duration(0, ModelMessage("upload", 10), concurrent=0)

    def test_rejects_empty_router(self) -> None:
        with pytest.raises(ValueError, match="n_devices"):
            Router(0)
