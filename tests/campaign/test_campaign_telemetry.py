"""End-to-end cross-process campaign telemetry.

The pipeline under test: workers stream telemetry to per-unit spools,
nested pool-engine workers stream to their own spools, the parent
collector tails and merges everything live, and the campaign reducer
folds the stored per-unit snapshots into exact campaign totals.  The
acceptance bar is the determinism satellite: the summed worker-spool
energy of a ``--jobs 4`` run and of a ``pool``-backend run must equal
the sequential run **bit for bit**, because unit training is
deterministic and the reducer folds in sorted-key order with exact
summation — any drift means telemetry is lossy or order-dependent.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    CampaignStatus,
    RunSpec,
    campaign_telemetry,
)
from repro.experiments.runner import main
from repro.obs import Observer, TelemetrySpool

pytestmark = pytest.mark.telemetry_smoke


@pytest.fixture()
def telemetry_campaign(tiny_spec: RunSpec) -> CampaignSpec:
    """The 2x2 tiny grid with telemetry on — four spooling units."""
    return CampaignSpec(
        name="tele-grid",
        base=dataclasses.replace(tiny_spec, telemetry=True),
        participants=(1, 2),
        epochs=(1, 2),
    )


def _run(campaign: CampaignSpec, root, jobs: int = 1, observer=None):
    store = ArtifactStore(root)
    runner = CampaignRunner(campaign, store, observer=observer)
    runner.run(jobs=jobs)
    return store


class TestBitForBitTotals:
    def test_jobs4_worker_spools_sum_to_the_sequential_total(
        self, tmp_path, telemetry_campaign
    ) -> None:
        sequential = _run(telemetry_campaign, tmp_path / "seq", jobs=1)
        parallel = _run(telemetry_campaign, tmp_path / "par", jobs=4)
        seq_totals = campaign_telemetry(sequential)
        par_totals = campaign_telemetry(parallel)
        assert len(seq_totals) == len(par_totals) == 4
        # Bit-for-bit: == on floats, no approx.
        assert seq_totals.sum_over_units("energy.joules") == (
            par_totals.sum_over_units("energy.joules")
        )
        assert seq_totals.sum_over_units("fl.rounds") == (
            par_totals.sum_over_units("fl.rounds")
        )
        # And per unit, not just in aggregate.
        for seq_unit, par_unit in zip(seq_totals.units, par_totals.units):
            assert seq_unit.key == par_unit.key
            assert seq_unit.sum_counters("energy.joules") == (
                par_unit.sum_counters("energy.joules")
            )

    def test_pool_backend_totals_match_sequential_bit_for_bit(
        self, tmp_path, tiny_spec
    ) -> None:
        base = dataclasses.replace(tiny_spec, telemetry=True)
        make = lambda backend: CampaignSpec(  # noqa: E731
            name="engines",
            base=dataclasses.replace(
                base, backend=backend, pool_workers=2
            ),
        )
        seq_store = _run(make("sequential"), tmp_path / "seq")
        pool_obs = Observer()
        pool_store = _run(
            make("pool"), tmp_path / "pool", jobs=2, observer=pool_obs
        )
        assert campaign_telemetry(seq_store).sum_over_units(
            "energy.joules"
        ) == campaign_telemetry(pool_store).sum_over_units("energy.joules")
        # The nested engine workers spooled too: their per-chunk counters
        # reached the parent observer via the collector.
        assert pool_obs.metrics.sum_values("engine.pool_clients_trained") > 0
        engine_spools = list(pool_store.spool_dir.glob("*.w*.jsonl"))
        assert engine_spools, "pool workers must leave engine spools"

    def test_parent_observer_merge_matches_stored_fold(
        self, tmp_path, telemetry_campaign
    ) -> None:
        observer = Observer()
        store = _run(
            telemetry_campaign, tmp_path / "s", jobs=2, observer=observer
        )
        folded = campaign_telemetry(store).sum_over_units("energy.joules")
        merged = observer.metrics.sum_values("energy.joules")
        assert merged == pytest.approx(folded, rel=1e-9)

    def test_reconciliation_is_clean_after_a_real_run(
        self, tmp_path, telemetry_campaign
    ) -> None:
        store = _run(telemetry_campaign, tmp_path / "s", jobs=2)
        assert campaign_telemetry(store).reconcile() == []


class TestKilledWorker:
    def _dead_pid(self) -> int:
        process = subprocess.Popen(["sleep", "0"])
        process.wait()
        return process.pid

    def test_truncated_spool_of_a_dead_worker_merges_and_reports_failed(
        self, tmp_path, telemetry_campaign
    ) -> None:
        store = ArtifactStore(tmp_path / "s")
        runner = CampaignRunner(telemetry_campaign, store)
        runner.run(max_units=1)
        # Fabricate the crash signature for the next unit: a spool with
        # streamed progress, a half-written record, no end record, and a
        # writer pid that no longer exists.
        victim = runner.units[1]
        spool = TelemetrySpool(
            store.spool_dir / f"{victim.key()}.jsonl",
            unit=victim.name,
            worker=self._dead_pid(),
        )
        spool.append(
            "event", event={"seq": 0, "category": "round.end", "fields": {}}
        )
        spool.close()
        with open(spool.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "ev')  # killed mid-write

        observer = Observer()
        from repro.obs import TelemetryCollector

        merged = TelemetryCollector(
            store.spool_dir, observer=observer
        ).poll()
        assert merged > 0  # the complete prefix merges cleanly
        assert any(e.category == "round.end" for e in observer.events)

        status = CampaignStatus.collect(store)
        by_key = {unit.key: unit for unit in status.units}
        assert by_key[victim.key()].state == "failed"
        assert by_key[victim.key()].rounds_done == 1
        assert by_key[runner.units[0].key()].state == "done"
        assert status.counts() == {
            "pending": 2,
            "running": 0,
            "retrying": 0,
            "done": 1,
            "failed": 1,
            "quarantined": 0,
        }

    def test_rerun_replaces_the_partial_spool_and_completes(
        self, tmp_path, telemetry_campaign
    ) -> None:
        store = ArtifactStore(tmp_path / "s")
        runner = CampaignRunner(telemetry_campaign, store)
        runner.run(max_units=1)
        victim = runner.units[1]
        spool = TelemetrySpool(
            store.spool_dir / f"{victim.key()}.jsonl",
            unit=victim.name,
            worker=self._dead_pid(),
        )
        spool.close()
        # Resume from scratch: the failed unit re-executes with a fresh
        # spool, and the campaign totals reconcile.
        CampaignRunner(telemetry_campaign, store).run()
        status = CampaignStatus.collect(store)
        assert status.counts()["done"] == 4
        assert status.finished
        telemetry = campaign_telemetry(store)
        assert len(telemetry) == 4
        assert telemetry.reconcile() == []


class TestStatusAndEta:
    def test_states_and_costs_before_and_after_running(
        self, tmp_path, telemetry_campaign
    ) -> None:
        store = ArtifactStore(tmp_path / "s")
        runner = CampaignRunner(telemetry_campaign, store)
        before = CampaignStatus.collect(store)
        assert before.counts()["pending"] == 4
        assert before.remaining_cost == before.total_cost > 0
        assert before.throughput() is None
        assert before.eta_s() is None  # no observations yet

        runner.run()
        after = CampaignStatus.collect(store)
        assert after.counts()["done"] == 4
        assert after.finished
        assert after.remaining_cost == 0
        assert after.eta_s() == 0.0
        assert after.throughput() is not None and after.throughput() > 0

    def test_partial_run_reports_progress_and_an_eta(
        self, tmp_path, telemetry_campaign
    ) -> None:
        store = ArtifactStore(tmp_path / "s")
        CampaignRunner(telemetry_campaign, store).run(max_units=2)
        status = CampaignStatus.collect(store)
        counts = status.counts()
        assert counts["done"] == 2 and counts["pending"] == 2
        assert 0 < status.remaining_cost < status.total_cost
        # Two completed units calibrated throughput: the ETA is defined.
        eta = status.eta_s()
        assert eta is not None and eta > 0
        summary = status.render_summary()
        assert "2 done" in summary
        assert "ETA:" in summary


class TestCli:
    def _spec_path(self, tmp_path, campaign: CampaignSpec):
        path = tmp_path / "spec.json"
        campaign.save(path)
        return path

    def test_status_prints_state_counts_and_remaining_cost(
        self, tmp_path, capsys, telemetry_campaign
    ) -> None:
        spec = self._spec_path(tmp_path, telemetry_campaign)
        store = tmp_path / "store"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec),
                    "--dir",
                    str(store),
                    "--max-units",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["campaign", "status", "--dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "2/4 units complete" in out
        assert (
            "units: 2 pending, 0 running, 0 retrying, 2 done, 0 failed, "
            "0 quarantined" in out
        )
        assert "estimated cost:" in out and "remaining" in out

    def test_run_exports_openmetrics_and_chrome_trace(
        self, tmp_path, capsys, telemetry_campaign
    ) -> None:
        spec = self._spec_path(tmp_path, telemetry_campaign)
        metrics_path = tmp_path / "out" / "metrics.txt"
        trace_path = tmp_path / "out" / "trace.json"
        code = main(
            [
                "campaign",
                "run",
                "--spec",
                str(spec),
                "--dir",
                str(tmp_path / "store"),
                "--jobs",
                "2",
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert text.endswith("# EOF\n")
        assert "# TYPE energy_joules counter" in text
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]
        err = capsys.readouterr().err
        assert "OpenMetrics" in err and "trace" in err

    def test_report_appends_aggregated_telemetry_section(
        self, tmp_path, capsys, telemetry_campaign
    ) -> None:
        spec = self._spec_path(tmp_path, telemetry_campaign)
        store = tmp_path / "store"
        assert (
            main(
                ["campaign", "run", "--spec", str(spec), "--dir", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["campaign", "report", "--dir", str(store)]) == 0
        captured = capsys.readouterr()
        assert "aggregated telemetry over 4 units" in captured.out
        assert "energy.joules" in captured.out
        assert captured.err == ""  # reconciliation found nothing
