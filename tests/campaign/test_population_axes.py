"""Spec-surface tests for the population-scale additions.

Two properties matter beyond plain correctness:

* **key stability** — ``tiers`` and ``population_dtype`` were added
  after the run-spec schema shipped, so at their defaults they must
  vanish from the identity projection: every key minted before the
  fields existed keeps resolving, and a finished campaign store binds
  to the same campaign key it was created under.
* **axis semantics** — the ``tiers`` axis expands like every other
  axis, but flat aggregation (tier 0) keeps the historical unit-name
  form so pre-tiers manifests stay byte-identical.
"""

from __future__ import annotations

import pytest

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.fl.engine import AUTO_BACKEND

pytestmark = pytest.mark.campaign_smoke


class TestRunSpecKeyStability:
    def test_defaults_absent_from_identity(self):
        doc = RunSpec().identity_dict()
        assert "tiers" not in doc
        assert "population_dtype" not in doc

    def test_pre_tiers_document_round_trips(self):
        """A spec doc written before the fields existed still loads."""
        old_doc = RunSpec().to_dict()
        del old_doc["tiers"]
        del old_doc["population_dtype"]
        restored = RunSpec.from_dict(old_doc)
        assert restored.tiers == 0
        assert restored.population_dtype == "float64"
        assert restored.key() == RunSpec().key()

    def test_non_default_values_change_key(self):
        base = RunSpec()
        assert RunSpec(tiers=4).key() != base.key()
        assert RunSpec(population_dtype="float32").key() != base.key()
        assert "tiers" in RunSpec(tiers=4).identity_dict()

    def test_validation(self):
        with pytest.raises(ValueError, match="tiers"):
            RunSpec(tiers=-1)
        with pytest.raises(ValueError, match="population_dtype"):
            RunSpec(population_dtype="float16")

    def test_auto_backend_accepted(self):
        spec = RunSpec(backend=AUTO_BACKEND)
        assert spec.federated_config().backend == AUTO_BACKEND

    def test_population_dtype_reaches_federated_config(self):
        spec = RunSpec(population_dtype="float32")
        assert spec.federated_config().population_dtype == "float32"


class TestCampaignTiersAxis:
    def test_axis_expands_with_name_suffix(self):
        campaign = CampaignSpec(
            name="grid",
            base=RunSpec(train_to_target=False, max_rounds=2),
            tiers=(0, 4),
        )
        assert len(campaign) == 2
        flat, tiered = campaign.expand()
        assert flat.tiers == 0
        assert tiered.tiers == 4
        assert "-T" not in flat.name
        assert "-T4" in tiered.name

    def test_no_axis_keeps_historical_names(self):
        campaign = CampaignSpec(
            name="grid",
            base=RunSpec(train_to_target=False, max_rounds=2),
            participants=(1, 2),
        )
        for unit in campaign.expand():
            assert "-T" not in unit.name

    def test_empty_axis_keeps_campaign_key(self):
        """Adding the tiers field must not re-key existing campaigns."""
        campaign = CampaignSpec(
            name="grid",
            base=RunSpec(train_to_target=False, max_rounds=2),
        )
        doc = campaign.to_dict()
        key_doc = dict(doc)
        key_doc["base"] = campaign.base.identity_dict()
        assert "tiers" in doc  # serialised for round-tripping...
        # ...but the key projection drops the empty axis (checked by
        # loading a pre-tiers document and comparing keys).
        del doc["tiers"]
        assert CampaignSpec.from_dict(doc).key() == campaign.key()

    def test_duplicate_tier_values_rejected(self):
        with pytest.raises(ValueError, match="tiers"):
            CampaignSpec(
                name="grid",
                base=RunSpec(train_to_target=False, max_rounds=2),
                tiers=(2, 2),
            )

    def test_auto_backend_axis_accepted(self):
        campaign = CampaignSpec(
            name="grid",
            base=RunSpec(train_to_target=False, max_rounds=2),
            backends=("sequential", AUTO_BACKEND),
        )
        assert len(campaign) == 2
