"""RunSpec/CampaignSpec: round-trips, deterministic keys, validation."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignSpec,
    FaultAxis,
    ResilienceAxis,
    RunSpec,
    make_demo_campaign,
)
from repro.experiments.config import ExperimentScale
from repro.faults import FaultPlan, ResilienceConfig, RetryPolicy, make_demo_plan
from repro.fl.training import FederatedConfig

pytestmark = pytest.mark.campaign_smoke


class TestRunSpecRoundTrip:
    def test_dict_round_trip_is_identity(self, tiny_spec: RunSpec) -> None:
        assert RunSpec.from_dict(tiny_spec.to_dict()) == tiny_spec

    def test_json_round_trip_is_identity(self, tiny_spec: RunSpec) -> None:
        assert RunSpec.from_json(tiny_spec.to_json(indent=2)) == tiny_spec

    def test_round_trip_preserves_fault_and_resilience(self) -> None:
        spec = RunSpec(
            n_servers=8,
            participants=2,
            fault_plan=make_demo_plan(8, seed=3),
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_retries=3),
                upload_timeout_s=30.0,
                min_quorum=2,
            ),
        )
        back = RunSpec.from_json(spec.to_json())
        assert back == spec
        assert back.fault_plan == spec.fault_plan
        assert back.resilience == spec.resilience

    def test_rejects_unknown_schema(self, tiny_spec: RunSpec) -> None:
        data = tiny_spec.to_dict()
        data["schema"] = "repro.run-spec/999"
        with pytest.raises(ValueError, match="schema"):
            RunSpec.from_dict(data)

    def test_rejects_missing_field(self, tiny_spec: RunSpec) -> None:
        data = tiny_spec.to_dict()
        del data["participants"]
        with pytest.raises(ValueError, match="malformed"):
            RunSpec.from_dict(data)


class TestRunSpecValidation:
    def test_rejects_bad_backend(self) -> None:
        with pytest.raises(ValueError, match="backend"):
            RunSpec(backend="gpu")

    def test_rejects_zero_participants(self) -> None:
        with pytest.raises(ValueError, match="participants"):
            RunSpec(participants=0)

    def test_rejects_participants_beyond_testbed(self) -> None:
        with pytest.raises(ValueError, match="n_servers"):
            RunSpec(n_servers=4, participants=3, overselection=2)

    def test_projects_onto_legacy_trio(self, tiny_spec: RunSpec) -> None:
        scale = tiny_spec.scale()
        federated = tiny_spec.federated_config()
        assert scale.n_servers == tiny_spec.n_servers
        assert federated.participants_per_round == tiny_spec.participants
        assert federated.local_epochs == tiny_spec.epochs
        # Fixed-budget mode: no early-stop target on the training config.
        assert federated.target_accuracy is None

    def test_from_components_round_trips_the_trio(self) -> None:
        scale = ExperimentScale(
            name="combo",
            n_train=400,
            n_test=100,
            n_servers=8,
            max_rounds=10,
            target_accuracy=0.7,
        )
        federated = FederatedConfig(
            n_rounds=10,
            participants_per_round=4,
            local_epochs=5,
            sgd=scale.sgd_config(),
            target_accuracy=0.7,
            backend="batched",
        )
        spec = RunSpec.from_components(scale, federated)
        assert spec.participants == 4
        assert spec.epochs == 5
        assert spec.backend == "batched"
        assert spec.train_to_target is True
        assert spec.scale() == scale


class TestRunSpecKeys:
    def test_key_is_deterministic(self, tiny_spec: RunSpec) -> None:
        assert tiny_spec.key() == tiny_spec.key()
        assert tiny_spec.key() == RunSpec.from_dict(tiny_spec.to_dict()).key()

    def test_key_survives_json_field_reordering(
        self, tiny_spec: RunSpec
    ) -> None:
        shuffled = dict(reversed(list(tiny_spec.to_dict().items())))
        assert RunSpec.from_dict(json.loads(json.dumps(shuffled))).key() == (
            tiny_spec.key()
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 1},
            {"epochs": 3},
            {"backend": "batched"},
            {"max_rounds": 4},
            {"train_to_target": True},
        ],
    )
    def test_any_semantic_change_changes_key(
        self, tiny_spec: RunSpec, change: dict
    ) -> None:
        assert dataclasses.replace(tiny_spec, **change).key() != tiny_spec.key()

    @pytest.mark.parametrize(
        "change", [{"telemetry": True}, {"pool_workers": 8}]
    )
    def test_result_neutral_knobs_do_not_change_key(
        self, tiny_spec: RunSpec, change: dict
    ) -> None:
        # Telemetry and pool-worker count cannot change what a run
        # computes; toggling them on a finished campaign must not
        # invalidate its completed units.
        assert dataclasses.replace(tiny_spec, **change).key() == tiny_spec.key()

    def test_result_neutral_knobs_do_not_change_campaign_key(
        self, tiny_campaign: CampaignSpec
    ) -> None:
        toggled = dataclasses.replace(
            tiny_campaign,
            base=dataclasses.replace(tiny_campaign.base, telemetry=True),
        )
        assert toggled.key() == tiny_campaign.key()


class TestCampaignSpec:
    def test_expand_is_deterministic_row_major(
        self, tiny_campaign: CampaignSpec
    ) -> None:
        first = tiny_campaign.expand()
        second = tiny_campaign.expand()
        assert first == second
        assert [u.key() for u in first] == [u.key() for u in second]
        assert [(u.participants, u.epochs) for u in first] == [
            (1, 1),
            (1, 2),
            (2, 1),
            (2, 2),
        ]

    def test_len_matches_axis_product(self, tiny_campaign: CampaignSpec) -> None:
        assert len(tiny_campaign) == 4
        assert len(tiny_campaign.expand()) == 4

    def test_empty_axes_pin_to_base(self, tiny_spec: RunSpec) -> None:
        campaign = CampaignSpec(name="single", base=tiny_spec)
        (unit,) = campaign.expand()
        assert unit.participants == tiny_spec.participants
        assert unit.epochs == tiny_spec.epochs
        assert unit.seed == tiny_spec.seed

    def test_unit_keys_are_unique(self, tiny_campaign: CampaignSpec) -> None:
        keys = [u.key() for u in tiny_campaign.expand()]
        assert len(keys) == len(set(keys))

    def test_json_round_trip_preserves_keys(
        self, tiny_campaign: CampaignSpec
    ) -> None:
        back = CampaignSpec.from_json(tiny_campaign.to_json(indent=2))
        assert back == tiny_campaign
        assert back.key() == tiny_campaign.key()
        assert [u.key() for u in back.expand()] == [
            u.key() for u in tiny_campaign.expand()
        ]

    def test_round_trip_with_fault_and_resilience_axes(
        self, tiny_spec: RunSpec
    ) -> None:
        campaign = CampaignSpec(
            name="faulted",
            base=tiny_spec,
            faults=(
                FaultAxis(label="clean"),
                FaultAxis(label="demo", plan=make_demo_plan(4, seed=0)),
            ),
            resiliences=(
                ResilienceAxis(label="none"),
                ResilienceAxis(
                    label="quorum1", config=ResilienceConfig(min_quorum=1)
                ),
            ),
        )
        back = CampaignSpec.from_json(campaign.to_json())
        assert back == campaign
        assert len(back) == 4

    def test_save_load_round_trip(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        path = tmp_path / "campaign.json"
        tiny_campaign.save(path)
        assert CampaignSpec.load(path) == tiny_campaign

    def test_rejects_duplicate_axis_values(self, tiny_spec: RunSpec) -> None:
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(name="dup", base=tiny_spec, participants=(1, 1))

    def test_rejects_invalid_grid_cell(self, tiny_spec: RunSpec) -> None:
        # K=8 exceeds the base's 4-server testbed: fail at declaration.
        with pytest.raises(ValueError, match="n_servers"):
            CampaignSpec(name="bad", base=tiny_spec, participants=(1, 8))

    def test_demo_campaign_is_a_valid_fixed_budget_grid(self) -> None:
        demo = make_demo_campaign()
        assert len(demo) == len(demo.participants) * len(demo.epochs)
        assert all(not u.train_to_target for u in demo.expand())


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "name", ["ExperimentScale", "FederatedConfig", "ResilienceConfig"]
    )
    def test_top_level_legacy_names_warn(self, name: str) -> None:
        import repro

        with pytest.warns(DeprecationWarning, match=name):
            obj = getattr(repro, name)
        assert obj.__name__ == name

    def test_unknown_attribute_still_raises(self) -> None:
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing
