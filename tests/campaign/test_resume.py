"""Kill-and-resume equivalence: the acceptance test for checkpointing.

A campaign interrupted after N units and later resumed must produce
artifacts *bit-identical* to an uninterrupted run — same history bytes,
same energy totals — because each unit executes on a fresh testbed
seeded only by its own spec.
"""

from __future__ import annotations

import pytest

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec

pytestmark = pytest.mark.campaign_smoke

_UNIT_FILES = ("spec.json", "history.json", "result.json")


def _unit_bytes(store: ArtifactStore) -> dict[tuple[str, str], bytes]:
    """Raw artifact bytes per (unit key, filename)."""
    return {
        (key, filename): (store.unit_dir(key) / filename).read_bytes()
        for key in store.completed_keys()
        for filename in _UNIT_FILES
    }


class TestKillAndResume:
    def test_interrupted_then_resumed_campaign_is_bit_identical(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        # Reference: one uninterrupted pass over all four units.
        reference = ArtifactStore(tmp_path / "reference")
        summary = CampaignRunner(tiny_campaign, reference).run()
        assert not summary.interrupted
        assert summary.executed == len(tiny_campaign)

        # Killed run: stop (checkpointed) after two units...
        resumed = ArtifactStore(tmp_path / "resumed")
        first = CampaignRunner(tiny_campaign, resumed).run(max_units=2)
        assert first.interrupted
        assert first.executed == 2
        assert len(resumed.completed_keys()) == 2

        # ... then resume with a brand-new runner (fresh process stand-in).
        second = CampaignRunner(tiny_campaign, resumed).run()
        assert not second.interrupted
        assert second.executed == 2
        assert second.skipped == 2

        # Byte-for-byte identical artifacts, unit by unit.
        assert _unit_bytes(resumed) == _unit_bytes(reference)
        assert resumed.verify() == []

        # And identical energy totals (already implied by the bytes,
        # stated explicitly because it is the paper-facing quantity).
        ref_energy = {
            a.key: a.result()["total_energy_j"] for a in reference.units()
        }
        res_energy = {
            a.key: a.result()["total_energy_j"] for a in resumed.units()
        }
        assert res_energy == ref_energy

    def test_resuming_a_complete_campaign_trains_nothing(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(tiny_campaign, store).run()
        before = _unit_bytes(store)
        again = CampaignRunner(tiny_campaign, store).run()
        assert again.executed == 0
        assert again.skipped == len(tiny_campaign)
        assert _unit_bytes(store) == before

    def test_skipped_units_do_not_count_against_max_units(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(tiny_campaign, store).run(max_units=2)
        # The two completed units are skipped; the cap budgets two
        # *fresh* executions, which finishes the campaign.
        summary = CampaignRunner(tiny_campaign, store).run(max_units=2)
        assert summary.executed == 2
        assert summary.skipped == 2
        assert not summary.interrupted
        assert len(store.completed_keys()) == len(tiny_campaign)

    def test_resume_survives_toggling_telemetry(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        # Enabling telemetry changes nothing a unit computes, so a
        # finished campaign re-run with telemetry on must skip every
        # unit instead of retraining the whole grid under new keys.
        import dataclasses

        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(tiny_campaign, store).run()
        toggled = dataclasses.replace(
            tiny_campaign,
            base=dataclasses.replace(tiny_campaign.base, telemetry=True),
        )
        summary = CampaignRunner(toggled, store).run()
        assert summary.executed == 0
        assert summary.skipped == len(tiny_campaign)

    def test_order_independence_single_unit_matches_grid_unit(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        # Unit independence, directly: running one grid cell alone (in
        # its own store, its own runner) reproduces the bytes the full
        # campaign recorded for that cell.
        full = ArtifactStore(tmp_path / "full")
        CampaignRunner(tiny_campaign, full).run()
        target = tiny_campaign.expand()[-1]
        solo_campaign = CampaignSpec(name=tiny_campaign.name, base=target)
        solo = ArtifactStore(tmp_path / "solo")
        CampaignRunner(solo_campaign, solo).run()
        key = target.key()
        assert (solo.unit_dir(key) / "history.json").read_bytes() == (
            full.unit_dir(key) / "history.json"
        ).read_bytes()
