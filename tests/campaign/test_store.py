"""ArtifactStore integrity: checkpointing, verification, corruption."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    RunSpec,
    StoreError,
)

pytestmark = pytest.mark.campaign_smoke


def _record_in_process(payload) -> str:
    """Process-pool worker: checkpoint one pre-built unit into a store.

    Module-level so it pickles; each process opens its own store handle,
    exactly like concurrent ``campaign run --jobs`` workers do.
    """
    root, campaign, spec, history, result = payload
    own_handle = ArtifactStore(root)
    own_handle.initialize(campaign)
    return own_handle.record_unit(spec, history, result)


@pytest.fixture()
def populated(tmp_path, tiny_campaign: CampaignSpec):
    """A store holding every unit of the tiny campaign."""
    store = ArtifactStore(tmp_path / "store")
    CampaignRunner(tiny_campaign, store).run()
    return store


class TestLifecycle:
    def test_initialize_creates_layout(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        assert (store.root / "campaign.json").exists()
        assert (store.root / store.index_filename).exists()
        assert store.campaign_key() == tiny_campaign.key()
        assert store.completed_keys() == set()

    def test_reinitialize_same_campaign_is_noop(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        store.initialize(tiny_campaign)  # resume path: must not raise
        assert store.campaign_key() == tiny_campaign.key()

    def test_initialize_different_campaign_raises(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        other = dataclasses.replace(tiny_campaign, name="other-grid")
        with pytest.raises(StoreError, match="refusing"):
            store.initialize(other)

    def test_uninitialised_store_has_no_campaign(self, tmp_path) -> None:
        store = ArtifactStore(tmp_path / "missing")
        assert store.campaign_key() is None
        with pytest.raises(StoreError):
            store.campaign()
        with pytest.raises(StoreError):
            store.manifest()


class TestRecordAndRead:
    def test_campaign_round_trips_through_store(
        self, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        assert populated.campaign() == tiny_campaign

    def test_every_unit_is_complete_and_loadable(
        self, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        expected = {u.key(): u for u in tiny_campaign.expand()}
        assert populated.completed_keys() == set(expected)
        for artifact in populated.units():
            spec = artifact.spec()
            assert spec == expected[artifact.key]
            assert spec.key() == artifact.key
            history = artifact.history()
            assert len(history) == spec.max_rounds
            result = artifact.result()
            assert result["total_energy_j"] > 0
            assert result["rounds"] == spec.max_rounds

    def test_unit_lookup_by_key(self, populated: ArtifactStore) -> None:
        key = next(iter(populated.completed_keys()))
        assert populated.unit(key).key == key
        with pytest.raises(StoreError, match="not complete"):
            populated.unit("0" * 16)


class TestVerify:
    def test_clean_store_verifies(self, populated: ArtifactStore) -> None:
        assert populated.verify() == []

    def test_detects_corrupted_history(self, populated: ArtifactStore) -> None:
        key = next(iter(populated.completed_keys()))
        path = populated.unit_dir(key) / "history.json"
        path.write_text(
            path.read_text(encoding="utf-8").replace("0", "1"),
            encoding="utf-8",
        )
        problems = populated.verify()
        assert any(
            "checksum mismatch" in p and "history.json" in p for p in problems
        )

    def test_detects_missing_result(self, populated: ArtifactStore) -> None:
        key = next(iter(populated.completed_keys()))
        (populated.unit_dir(key) / "result.json").unlink()
        assert any("missing result.json" in p for p in populated.verify())

    def test_detects_spec_key_mismatch(self, populated: ArtifactStore) -> None:
        # Rewrite a stored spec (seed bump) and refresh its index
        # checksum so only the content-hash cross-check can catch it.
        key = next(iter(populated.completed_keys()))
        spec_path = populated.unit_dir(key) / "spec.json"
        tampered = dataclasses.replace(
            RunSpec.from_json(spec_path.read_text(encoding="utf-8")),
            seed=999,
        )
        text = tampered.to_json(indent=2) + "\n"
        spec_path.write_text(text, encoding="utf-8")
        import hashlib

        entry = populated.manifest()["units"][key]
        entry["files"]["spec.json"] = hashlib.sha256(
            text.encode("utf-8")
        ).hexdigest()
        populated.put_entry(key, entry)
        assert any("hashes to" in p for p in populated.verify())

    def test_corrupt_manifest_raises(self, populated: ArtifactStore) -> None:
        (populated.root / populated.index_filename).write_text(
            "{not json", encoding="utf-8"
        )
        with pytest.raises(StoreError, match="corrupt manifest"):
            populated.manifest()


class TestConcurrentWriters:
    def test_parallel_record_unit_drops_no_manifest_entries(
        self, tmp_path, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        # Two 'campaign run' processes sharing a store both pass
        # initialize (same key) and checkpoint units concurrently; the
        # manifest read-modify-write is serialised by the store lock,
        # so no completed-unit entry may be lost.  Simulated here with
        # threads over independent ArtifactStore handles (the flock is
        # per open file description, so it serialises threads too).
        from concurrent.futures import ThreadPoolExecutor

        target_root = tmp_path / "shared"
        ArtifactStore(target_root).initialize(tiny_campaign)
        artifacts = list(populated.units())

        def record(artifact) -> str:
            own_handle = ArtifactStore(target_root)
            own_handle.initialize(tiny_campaign)
            return own_handle.record_unit(
                artifact.spec(), artifact.history(), artifact.result()
            )

        with ThreadPoolExecutor(max_workers=len(artifacts)) as pool:
            keys = list(pool.map(record, artifacts))

        shared = ArtifactStore(target_root)
        assert shared.completed_keys() == set(keys)
        assert shared.completed_keys() == populated.completed_keys()
        assert shared.verify() == []

    def test_multiprocess_record_unit_drops_no_manifest_entries(
        self, tmp_path, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        # The real thing the flock exists for: separate *processes*
        # (as under `campaign run --jobs`) sharing one store directory,
        # each with its own handle, checkpointing concurrently.  The
        # manifest must end complete and verify() clean.
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        target_root = tmp_path / "shared-mp"
        ArtifactStore(target_root).initialize(tiny_campaign)
        payloads = [
            (
                target_root,
                tiny_campaign,
                artifact.spec(),
                artifact.history(),
                artifact.result(),
            )
            for artifact in populated.units()
        ]
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ProcessPoolExecutor(
            max_workers=len(payloads), mp_context=context
        ) as pool:
            keys = list(pool.map(_record_in_process, payloads))

        shared = ArtifactStore(target_root)
        assert shared.completed_keys() == set(keys)
        assert shared.completed_keys() == populated.completed_keys()
        assert shared.verify() == []


class TestTelemetryArtifacts:
    def test_telemetry_units_persist_event_logs(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        spec = dataclasses.replace(tiny_spec, telemetry=True)
        campaign = CampaignSpec(name="telemetered", base=spec)
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(campaign, store).run()
        (artifact,) = list(store.units())
        log = artifact.directory / "telemetry.jsonl"
        assert log.exists()
        lines = log.read_text(encoding="utf-8").strip().splitlines()
        assert lines  # at least the trailing metrics.snapshot
        assert json.loads(lines[-1])["category"] == "metrics.snapshot"
        # The manifest checksums cover the telemetry file too.
        assert store.verify() == []


class TestFailureTrail:
    def _fail(self, store, key, quarantined=False, kind="error"):
        return store.record_failure(
            key,
            {
                "unit": "tiny/unit",
                "kind": kind,
                "error": "RuntimeError('boom')",
                "traceback": None,
                "spool_tail": None,
                "quarantined": quarantined,
            },
        )

    def test_failure_records_number_attempts_durably(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        key = tiny_campaign.expand()[0].key()
        assert store.attempts_used(key) == 0
        assert store.failure_records(key) == []

        first = self._fail(store, key)
        second = self._fail(store, key)
        assert first.name == "attempt-1.json"
        assert second.name == "attempt-2.json"
        assert store.attempts_used(key) == 2
        records = store.failure_records(key)
        assert [r["attempt"] for r in records] == [1, 2]
        assert all(r["key"] == key for r in records)

    def test_quarantined_keys_needs_a_terminal_record(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        key = tiny_campaign.expand()[0].key()
        self._fail(store, key, quarantined=False)
        assert store.quarantined_keys() == set()  # retries are not terminal
        self._fail(store, key, quarantined=True)
        assert store.quarantined_keys() == {key}

    def test_completed_unit_is_never_reported_quarantined(
        self, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        # A stale terminal record loses to a manifest entry: the unit
        # completed on a later pass, so it is healthy.
        key = tiny_campaign.expand()[0].key()
        self._fail(populated, key, quarantined=True)
        assert key in populated.completed_keys()
        assert populated.quarantined_keys() == set()

    def test_clear_failures_grants_a_fresh_budget(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        key = tiny_campaign.expand()[0].key()
        self._fail(store, key, quarantined=True)
        store.clear_failures(key)
        assert store.attempts_used(key) == 0
        assert store.quarantined_keys() == set()
        store.clear_failures(key)  # idempotent on a clean slate

    def test_quarantine_unit_evicts_manifest_entry_and_artifacts(
        self, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        key = tiny_campaign.expand()[0].key()
        unit_dir = populated.unit_dir(key)
        assert unit_dir.exists()
        populated.quarantine_unit(key)
        assert key not in populated.completed_keys()
        assert not unit_dir.exists()
        evicted = populated.quarantine_dir / key / "artifacts"
        assert (evicted / "spec.json").exists()
        assert (evicted / "history.json").exists()
        # The rest of the store still verifies clean.
        assert populated.verify() == []

    def test_orphan_unit_dirs_are_detected_by_verify(
        self, populated: ArtifactStore, tiny_campaign: CampaignSpec
    ) -> None:
        # Drop the index entry while leaving the unit directory behind,
        # as a crash between artifact write and index write would.
        key = tiny_campaign.expand()[1].key()
        populated._index_delete(key)
        assert populated.orphan_unit_keys() == [key]
        problems = populated.verify()
        assert any("orphan unit directory" in p for p in problems)
