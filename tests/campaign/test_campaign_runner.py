"""CampaignRunner: spec knobs reach the trainer; overrides stay consistent.

Two regression families live here.  First, ``run_unit`` must hand the
unit's *full* ``FederatedConfig`` projection to the training stack — a
spec declaring ``dropout_probability=0.3`` must actually train with
dropout, because the artifact store records (and content-keys) the spec
as what ran.  Second, grid-wide overrides rewrite the campaign itself
and the unit list is the rewritten campaign's expansion, so the stored
``campaign.json``, ``len(campaign)``, and every unit name/key describe
exactly the units that run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    ResilienceAxis,
    RunSpec,
)
from repro.faults import ResilienceConfig, make_demo_plan
from repro.fl.history_io import history_to_json

pytestmark = pytest.mark.campaign_smoke


class TestRunUnitHonorsSpec:
    def test_trainer_receives_the_spec_federated_config(
        self, tmp_path, monkeypatch, tiny_spec: RunSpec
    ) -> None:
        # Spy on the trainer construction: the config it receives must
        # be exactly the spec's projection, including the knobs the old
        # loop arguments could not express.
        import repro.hardware.prototype as prototype_module

        captured: dict = {}
        real_trainer = prototype_module.FederatedTrainer

        def spy(*args, **kwargs):
            captured["config"] = kwargs["config"]
            return real_trainer(*args, **kwargs)

        monkeypatch.setattr(prototype_module, "FederatedTrainer", spy)
        spec = dataclasses.replace(
            tiny_spec,
            dropout_probability=0.25,
            proximal_mu=0.5,
            pool_workers=3,
        )
        runner = CampaignRunner(
            CampaignSpec(name="knobs", base=spec),
            ArtifactStore(tmp_path / "store"),
        )
        runner.run_unit(spec)
        config = captured["config"]
        assert config == spec.federated_config()
        assert config.dropout_probability == 0.25
        assert config.proximal_mu == 0.5
        assert config.pool_workers == 3

    def test_dropout_probability_changes_what_trains(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        # End-to-end: a spec with heavy dropout must produce a different
        # training history than the clean spec (before the fix both
        # trained identically with the default, dropout-free config).
        dropped = dataclasses.replace(tiny_spec, dropout_probability=0.9)
        runner = CampaignRunner(
            CampaignSpec(name="dropout", base=tiny_spec),
            ArtifactStore(tmp_path / "store"),
        )
        clean_history = history_to_json(runner.run_unit(tiny_spec).history)
        dropped_history = history_to_json(runner.run_unit(dropped).history)
        assert clean_history != dropped_history


class TestOverrideConsistency:
    def test_backend_override_collapses_the_backend_axis(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        # A --backend override over a 2-backend axis must run ONE unit,
        # not the identical computation twice under stale labels.
        campaign = CampaignSpec(
            name="engines",
            base=tiny_spec,
            backends=("sequential", "batched"),
        )
        store = ArtifactStore(tmp_path / "store")
        runner = CampaignRunner(campaign, store, backend_override="batched")
        assert len(runner.units) == 1
        assert len(runner.units) == len(runner.campaign)
        (unit,) = runner.units
        assert unit.backend == "batched"
        assert "sequential" not in unit.name
        # The stored campaign.json describes the same units, so status
        # denominators computed from it are correct.
        assert store.campaign().key() == runner.campaign.key()
        assert len(store.campaign()) == len(runner.units)
        summary = runner.run()
        assert summary.executed == 1
        assert len(store.completed_keys()) == 1

    def test_fault_plan_override_collapses_the_fault_axis(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        from repro.campaign import FaultAxis

        plan = make_demo_plan(tiny_spec.n_servers, seed=7)
        campaign = CampaignSpec(
            name="faulted",
            base=tiny_spec,
            faults=(
                FaultAxis(label="clean"),
                FaultAxis(
                    label="demo",
                    plan=make_demo_plan(tiny_spec.n_servers, seed=0),
                ),
            ),
        )
        runner = CampaignRunner(
            campaign,
            ArtifactStore(tmp_path / "store"),
            fault_plan_override=plan,
        )
        assert len(runner.units) == 1
        assert len(runner.units) == len(runner.campaign)
        assert runner.units[0].fault_plan == plan

    def test_quorum_override_preserves_the_resilience_axis(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        # Forcing min_quorum must not collapse a labelled resilience
        # axis: each point keeps its label and its other policy fields.
        campaign = CampaignSpec(
            name="policies",
            base=tiny_spec,
            resiliences=(
                ResilienceAxis(label="none"),
                ResilienceAxis(
                    label="strict",
                    config=ResilienceConfig(upload_timeout_s=30.0),
                ),
            ),
        )
        runner = CampaignRunner(
            campaign, ArtifactStore(tmp_path / "store"), quorum_override=2
        )
        assert len(runner.units) == 2
        assert len(runner.units) == len(runner.campaign)
        by_label = {
            unit.name.rsplit("-r.", 1)[1]: unit for unit in runner.units
        }
        assert set(by_label) == {"none", "strict"}
        assert all(u.resilience.min_quorum == 2 for u in runner.units)
        assert by_label["strict"].resilience.upload_timeout_s == 30.0

    def test_quorum_override_without_axis_rewrites_the_base(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        runner = CampaignRunner(
            CampaignSpec(name="single", base=tiny_spec),
            ArtifactStore(tmp_path / "store"),
            quorum_override=1,
        )
        (unit,) = runner.units
        assert unit.resilience is not None
        assert unit.resilience.min_quorum == 1

    def test_no_overrides_leave_the_campaign_untouched(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        runner = CampaignRunner(
            tiny_campaign, ArtifactStore(tmp_path / "store")
        )
        assert runner.campaign is tiny_campaign
        assert runner.units == tiny_campaign.expand()
