"""Status edge cases added with supervision: retrying/quarantined states
and the hardened pid-liveness probe."""

from __future__ import annotations

import errno
import os

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    CampaignStatus,
    CampaignStatusMonitor,
)
from repro.campaign.status import _pid_alive

pytestmark = pytest.mark.campaign_smoke


def _fail(store, key, quarantined=False):
    store.record_failure(
        key,
        {
            "unit": "tiny/unit",
            "kind": "error",
            "error": "RuntimeError('boom')",
            "traceback": None,
            "spool_tail": None,
            "quarantined": quarantined,
        },
    )


class TestPidAlive:
    def test_own_pid_is_alive(self) -> None:
        assert _pid_alive(os.getpid()) is True

    def test_esrch_means_dead(self, monkeypatch) -> None:
        def probe(pid, sig):
            raise ProcessLookupError

        monkeypatch.setattr(os, "kill", probe)
        assert _pid_alive(12345) is False

    def test_eperm_means_alive_but_foreign(self, monkeypatch) -> None:
        # A pid owned by another user exists — PermissionError and the
        # raw-errno OSError spelling must both read as alive.
        def permission(pid, sig):
            raise PermissionError

        monkeypatch.setattr(os, "kill", permission)
        assert _pid_alive(12345) is True

        def raw_eperm(pid, sig):
            error = OSError("op not permitted")
            error.errno = errno.EPERM
            raise error

        monkeypatch.setattr(os, "kill", raw_eperm)
        assert _pid_alive(12345) is True

    def test_unprobeable_pid_is_not_reported_alive(self, monkeypatch) -> None:
        # EINVAL (or any other probe failure) cannot confirm liveness;
        # claiming alive would leave a unit "running" forever.
        def einval(pid, sig):
            error = OSError("invalid argument")
            error.errno = errno.EINVAL
            raise error

        monkeypatch.setattr(os, "kill", einval)
        assert _pid_alive(12345) is False


class TestSupervisedStates:
    def test_retrying_and_quarantined_states_come_from_the_trail(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        units = tiny_campaign.expand()
        retrying, quarantined = units[0].key(), units[1].key()
        _fail(store, retrying, quarantined=False)
        _fail(store, quarantined, quarantined=False)
        _fail(store, quarantined, quarantined=True)

        status = CampaignStatus.collect(store)
        by_key = {unit.key: unit for unit in status.units}
        assert by_key[retrying].state == "retrying"
        assert by_key[retrying].attempts == 1
        # A retry restarts from scratch: its full cost is still owed.
        assert by_key[retrying].remaining_cost == by_key[retrying].cost
        assert by_key[quarantined].state == "quarantined"
        assert by_key[quarantined].attempts == 2
        assert by_key[quarantined].remaining_cost == 0.0
        assert status.counts()["retrying"] == 1
        assert status.counts()["quarantined"] == 1
        assert status.troubled  # quarantine needs operator attention
        assert not status.finished  # retrying/pending work remains

    def test_completion_clears_the_retrying_state(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        key = tiny_campaign.expand()[0].key()
        _fail(store, key, quarantined=False)
        CampaignRunner(tiny_campaign, store).run()
        status = CampaignStatus.collect(store)
        by_key = {unit.key: unit for unit in status.units}
        assert by_key[key].state == "done"
        assert by_key[key].attempts == 1  # the trail remains visible
        assert status.finished
        assert not status.troubled


class TestStatusMonitor:
    """The ``--follow`` monitor must poll incrementally, not rebuild."""

    def test_done_rows_are_computed_once_and_reused(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        CampaignRunner(tiny_campaign, store).run(max_units=2)

        monitor = CampaignStatusMonitor(store)
        first = monitor.refresh()
        done_rows = {u.key: u for u in first.units if u.state == "done"}
        assert len(done_rows) == 2

        # A done unit is immutable, so its row must be replayed from
        # cache — deleting the result file on disk proves later polls
        # never re-open it.
        for key in done_rows:
            (store.unit_dir(key) / "result.json").unlink()
        second = monitor.refresh()
        for unit in second.units:
            if unit.key in done_rows:
                assert unit is done_rows[unit.key]

    def test_monitor_picks_up_newly_completed_units(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        monitor = CampaignStatusMonitor(store)
        assert monitor.refresh().counts()["pending"] == len(tiny_campaign)

        CampaignRunner(tiny_campaign, store).run()
        status = monitor.refresh()
        assert status.finished
        assert status.counts()["done"] == len(tiny_campaign)
        # collect() delegates to a throwaway monitor: same snapshot.
        fresh = CampaignStatus.collect(store)
        assert [u.key for u in fresh.units] == [u.key for u in status.units]
        assert [u.state for u in fresh.units] == [
            u.state for u in status.units
        ]
