"""Status edge cases added with supervision: retrying/quarantined states
and the hardened pid-liveness probe."""

from __future__ import annotations

import errno
import os

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    CampaignStatus,
)
from repro.campaign.status import _pid_alive

pytestmark = pytest.mark.campaign_smoke


def _fail(store, key, quarantined=False):
    store.record_failure(
        key,
        {
            "unit": "tiny/unit",
            "kind": "error",
            "error": "RuntimeError('boom')",
            "traceback": None,
            "spool_tail": None,
            "quarantined": quarantined,
        },
    )


class TestPidAlive:
    def test_own_pid_is_alive(self) -> None:
        assert _pid_alive(os.getpid()) is True

    def test_esrch_means_dead(self, monkeypatch) -> None:
        def probe(pid, sig):
            raise ProcessLookupError

        monkeypatch.setattr(os, "kill", probe)
        assert _pid_alive(12345) is False

    def test_eperm_means_alive_but_foreign(self, monkeypatch) -> None:
        # A pid owned by another user exists — PermissionError and the
        # raw-errno OSError spelling must both read as alive.
        def permission(pid, sig):
            raise PermissionError

        monkeypatch.setattr(os, "kill", permission)
        assert _pid_alive(12345) is True

        def raw_eperm(pid, sig):
            error = OSError("op not permitted")
            error.errno = errno.EPERM
            raise error

        monkeypatch.setattr(os, "kill", raw_eperm)
        assert _pid_alive(12345) is True

    def test_unprobeable_pid_is_not_reported_alive(self, monkeypatch) -> None:
        # EINVAL (or any other probe failure) cannot confirm liveness;
        # claiming alive would leave a unit "running" forever.
        def einval(pid, sig):
            error = OSError("invalid argument")
            error.errno = errno.EINVAL
            raise error

        monkeypatch.setattr(os, "kill", einval)
        assert _pid_alive(12345) is False


class TestSupervisedStates:
    def test_retrying_and_quarantined_states_come_from_the_trail(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        units = tiny_campaign.expand()
        retrying, quarantined = units[0].key(), units[1].key()
        _fail(store, retrying, quarantined=False)
        _fail(store, quarantined, quarantined=False)
        _fail(store, quarantined, quarantined=True)

        status = CampaignStatus.collect(store)
        by_key = {unit.key: unit for unit in status.units}
        assert by_key[retrying].state == "retrying"
        assert by_key[retrying].attempts == 1
        # A retry restarts from scratch: its full cost is still owed.
        assert by_key[retrying].remaining_cost == by_key[retrying].cost
        assert by_key[quarantined].state == "quarantined"
        assert by_key[quarantined].attempts == 2
        assert by_key[quarantined].remaining_cost == 0.0
        assert status.counts()["retrying"] == 1
        assert status.counts()["quarantined"] == 1
        assert status.troubled  # quarantine needs operator attention
        assert not status.finished  # retrying/pending work remains

    def test_completion_clears_the_retrying_state(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        store.initialize(tiny_campaign)
        key = tiny_campaign.expand()[0].key()
        _fail(store, key, quarantined=False)
        CampaignRunner(tiny_campaign, store).run()
        status = CampaignStatus.collect(store)
        by_key = {unit.key: unit for unit in status.units}
        assert by_key[key].state == "done"
        assert by_key[key].attempts == 1  # the trail remains visible
        assert status.finished
        assert not status.troubled
