"""Backend parity: JSON and SQLite stores are observably identical.

The repository redesign's core promise is that the index backend is an
implementation detail: the same campaign run against either backend
produces the same unit keys, the same artifact bytes, the same logical
index, the same reports, and the same CLI output — and ``migrate``
converts between them without changing any of it.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRepository,
    CampaignRunner,
    CampaignSpec,
    CampaignReport,
    JsonArtifactStore,
    SqliteArtifactStore,
    StoreError,
    StoreHealthReport,
    detect_backend,
    migrate_store,
    open_store,
)
from repro.experiments.runner import main

pytestmark = pytest.mark.campaign_smoke

BACKENDS = ("json", "sqlite")


def _unit_fingerprint(root: Path) -> dict[str, bytes]:
    """Every artifact byte under ``units/`` plus the campaign binding."""
    fingerprint = {}
    units = root / "units"
    if units.exists():
        for path in sorted(units.rglob("*")):
            if path.is_file():
                fingerprint[str(path.relative_to(root))] = path.read_bytes()
    campaign = root / "campaign.json"
    if campaign.exists():
        fingerprint["campaign.json"] = campaign.read_bytes()
    return fingerprint


@pytest.fixture()
def both_stores(tmp_path, tiny_campaign: CampaignSpec):
    """The tiny campaign fully executed against each backend."""
    stores = {}
    for backend in BACKENDS:
        store = ArtifactStore(tmp_path / backend, backend=backend)
        CampaignRunner(tiny_campaign, store).run()
        stores[backend] = store
    return stores


class TestDispatch:
    """``ArtifactStore(root)`` resolves the right backend class."""

    def test_default_is_json(self, tmp_path, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_STORE_BACKEND", raising=False)
        assert isinstance(ArtifactStore(tmp_path / "new"), JsonArtifactStore)

    def test_explicit_sqlite(self, tmp_path) -> None:
        store = ArtifactStore(tmp_path / "new", backend="sqlite")
        assert isinstance(store, SqliteArtifactStore)

    def test_auto_detect_each_backend(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        for backend in BACKENDS:
            root = tmp_path / backend
            ArtifactStore(root, backend=backend).initialize(tiny_campaign)
            assert detect_backend(root) == backend
            reopened = open_store(root)
            assert reopened.backend_name == backend

    def test_env_default_for_new_stores(self, tmp_path, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_STORE_BACKEND", "sqlite")
        assert isinstance(
            ArtifactStore(tmp_path / "new"), SqliteArtifactStore
        )
        monkeypatch.setenv("REPRO_STORE_BACKEND", "bogus")
        with pytest.raises(StoreError, match="REPRO_STORE_BACKEND"):
            ArtifactStore(tmp_path / "other")

    def test_backend_mismatch_raises(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        root = tmp_path / "store"
        ArtifactStore(root, backend="sqlite").initialize(tiny_campaign)
        with pytest.raises(StoreError, match="migrate"):
            ArtifactStore(root, backend="json")

    def test_both_satisfy_repository_protocol(self, tmp_path) -> None:
        for backend in BACKENDS:
            store = ArtifactStore(tmp_path / backend, backend=backend)
            assert isinstance(store, CampaignRepository)


class TestParity:
    """Same campaign, either backend: observably identical stores."""

    def test_same_keys_and_artifact_bytes(self, both_stores) -> None:
        json_store, sqlite_store = (
            both_stores["json"],
            both_stores["sqlite"],
        )
        assert json_store.keys() == sqlite_store.keys()
        assert _unit_fingerprint(json_store.root) == _unit_fingerprint(
            sqlite_store.root
        )

    def test_same_logical_index(self, both_stores) -> None:
        assert (
            both_stores["json"].index_digest()
            == both_stores["sqlite"].index_digest()
        )
        assert both_stores["json"].manifest() == both_stores[
            "sqlite"
        ].manifest()

    def test_same_histories(self, both_stores) -> None:
        for key in both_stores["json"].keys():
            json_unit = both_stores["json"].get(key)
            sqlite_unit = both_stores["sqlite"].get(key)
            assert json_unit.history().records == (
                sqlite_unit.history().records
            )
            assert json_unit.result() == sqlite_unit.result()

    def test_same_report_tables(self, both_stores) -> None:
        assert (
            CampaignReport.from_store(both_stores["json"]).render()
            == CampaignReport.from_store(both_stores["sqlite"]).render()
        )

    def test_same_cli_report_output(self, both_stores, capsys) -> None:
        outputs = {}
        for backend, store in both_stores.items():
            assert (
                main(["campaign", "report", "--dir", str(store.root)]) == 0
            )
            outputs[backend] = capsys.readouterr().out
        assert outputs["json"] == outputs["sqlite"]

    def test_prefix_scan_matches_filter(self, both_stores) -> None:
        for store in both_stores.values():
            key = store.keys()[0]
            prefix = key[:3]
            assert store.keys(prefix=prefix) == [
                k for k in store.keys() if k.startswith(prefix)
            ]

    def test_contains_is_membership(self, both_stores) -> None:
        for store in both_stores.values():
            for key in store.keys():
                assert store.contains(key)
            assert not store.contains("0" * 16)


class TestSqliteInvariants:
    """The store invariants the runner relies on, on the new backend."""

    def test_kill_and_resume_byte_identity(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        oneshot = ArtifactStore(tmp_path / "oneshot", backend="sqlite")
        CampaignRunner(tiny_campaign, oneshot).run()
        resumed = ArtifactStore(tmp_path / "resumed", backend="sqlite")
        CampaignRunner(tiny_campaign, resumed).run(max_units=2)
        assert len(resumed.keys()) == 2
        summary = CampaignRunner(tiny_campaign, resumed).run()
        assert summary.skipped == 2
        assert _unit_fingerprint(resumed.root) == _unit_fingerprint(
            oneshot.root
        )
        assert resumed.index_digest() == oneshot.index_digest()

    @pytest.mark.parallel_smoke
    def test_parallel_matches_sequential(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        sequential = ArtifactStore(tmp_path / "seq", backend="sqlite")
        CampaignRunner(tiny_campaign, sequential).run()
        parallel = ArtifactStore(tmp_path / "par", backend="sqlite")
        CampaignRunner(tiny_campaign, parallel).run(jobs=2)
        assert _unit_fingerprint(parallel.root) == _unit_fingerprint(
            sequential.root
        )
        assert parallel.index_digest() == sequential.index_digest()

    def test_doctor_rebuilds_deleted_index(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store", backend="sqlite")
        CampaignRunner(tiny_campaign, store).run()
        digest = store.index_digest()
        (store.root / "manifest.db").unlink()
        broken = ArtifactStore(store.root, backend="sqlite")
        report = broken.doctor(repair=True)
        assert "manifest.db missing" in report.problems
        assert sorted(report.adopted) == broken.keys()
        assert report.healthy
        assert broken.index_digest() == digest

    def test_doctor_quarantines_corrupt_unit(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store", backend="sqlite")
        CampaignRunner(tiny_campaign, store).run()
        victim = store.keys()[0]
        (store.unit_dir(victim) / "result.json").write_text(
            "garbage", encoding="utf-8"
        )
        report = store.doctor(repair=True)
        assert victim in report.quarantined
        assert not store.contains(victim)
        assert store.attempts_used(victim) == 1
        assert store.verify().healthy

    def test_store_at_rest_is_single_file_index(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        # Per-operation connections auto-checkpoint the WAL on close,
        # so nothing but manifest.db survives a finished run — the
        # fingerprint/migration story depends on this.
        store = ArtifactStore(tmp_path / "store", backend="sqlite")
        CampaignRunner(tiny_campaign, store).run()
        assert not (store.root / "manifest.db-wal").exists()
        assert not (store.root / "manifest.db-shm").exists()


class TestHealthReport:
    """verify()/doctor() share one typed report, list-compatible."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_typed_and_list_compatible(
        self, tmp_path, tiny_campaign: CampaignSpec, backend: str
    ) -> None:
        store = ArtifactStore(tmp_path / backend, backend=backend)
        CampaignRunner(tiny_campaign, store).run(max_units=1)
        health = store.verify()
        assert isinstance(health, StoreHealthReport)
        assert health == []  # legacy list contract
        assert not health  # falsy when problem-free
        assert list(health) == []
        assert health.healthy
        assert health.backend == backend
        assert health.checked == 1
        checkup = store.doctor()
        assert isinstance(checkup, StoreHealthReport)
        assert checkup.healthy

    def test_problems_surface_through_list_protocol(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store", backend="sqlite")
        CampaignRunner(tiny_campaign, store).run(max_units=1)
        key = store.keys()[0]
        (store.unit_dir(key) / "history.json").write_text(
            "{}", encoding="utf-8"
        )
        health = store.verify()
        assert health  # truthy when problems exist
        assert len(health) == 1
        assert any("checksum mismatch" in problem for problem in health)
        assert not health.healthy
        assert "integrity problem" in health.render()


class TestMigration:
    """``migrate`` round-trips byte-identically, either direction."""

    def test_round_trip_byte_identity_with_quarantine_trail(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        source = ArtifactStore(tmp_path / "src", backend="json")
        CampaignRunner(tiny_campaign, source).run()
        # A failure trail must survive migration: attempt counters are
        # durable state a resumed campaign keeps counting from.
        loser = tiny_campaign.expand()[0].key()
        source.record_failure(
            loser, {"unit": "u", "kind": "crash", "error": "boom"}
        )
        result = migrate_store(source.root, tmp_path / "mid", "sqlite")
        assert result.units == len(source.keys())
        assert result.index_digest == source.index_digest()
        back = migrate_store(tmp_path / "mid", tmp_path / "dst", "json")
        assert back.index_digest == result.index_digest
        assert (tmp_path / "dst" / "manifest.json").read_bytes() == (
            source.root / "manifest.json"
        ).read_bytes()
        assert _unit_fingerprint(tmp_path / "dst") == _unit_fingerprint(
            source.root
        )
        migrated = ArtifactStore(tmp_path / "dst")
        assert migrated.failure_records(loser) == source.failure_records(
            loser
        )
        assert migrated.verify().healthy

    def test_refuses_nonempty_destination(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        source = ArtifactStore(tmp_path / "src", backend="json")
        CampaignRunner(tiny_campaign, source).run(max_units=1)
        occupied = tmp_path / "dst"
        occupied.mkdir()
        (occupied / "keep.txt").write_text("mine", encoding="utf-8")
        with pytest.raises(StoreError, match="not empty"):
            migrate_store(source.root, occupied, "sqlite")
        assert (occupied / "keep.txt").read_text(encoding="utf-8") == "mine"

    def test_refuses_missing_source(self, tmp_path) -> None:
        with pytest.raises(StoreError, match="no campaign store"):
            migrate_store(tmp_path / "nothing", tmp_path / "dst", "sqlite")


class TestCli:
    """--store-backend and the migrate action on the campaign CLI."""

    def test_run_status_with_sqlite_backend(
        self, tmp_path, tiny_campaign: CampaignSpec, capsys
    ) -> None:
        spec_path = tmp_path / "campaign.json"
        tiny_campaign.save(spec_path)
        store_dir = tmp_path / "store"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec_path),
                    "--dir",
                    str(store_dir),
                    "--store-backend",
                    "sqlite",
                ]
            )
            == 0
        )
        assert (store_dir / "manifest.db").exists()
        assert not (store_dir / "manifest.json").exists()
        capsys.readouterr()
        assert main(["campaign", "status", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "4/4 units complete" in out
        assert "[sqlite store]" in out

    def test_cli_migrate_round_trip(
        self, tmp_path, tiny_campaign: CampaignSpec, capsys
    ) -> None:
        store = ArtifactStore(tmp_path / "src", backend="json")
        CampaignRunner(tiny_campaign, store).run()
        assert (
            main(
                [
                    "campaign",
                    "migrate",
                    "--dir",
                    str(store.root),
                    "--out",
                    str(tmp_path / "mid"),
                    "--store-backend",
                    "sqlite",
                ]
            )
            == 0
        )
        assert "migrated" in capsys.readouterr().out
        assert (
            main(
                [
                    "campaign",
                    "migrate",
                    "--dir",
                    str(tmp_path / "mid"),
                    "--out",
                    str(tmp_path / "dst"),
                    "--store-backend",
                    "json",
                ]
            )
            == 0
        )
        assert (tmp_path / "dst" / "manifest.json").read_bytes() == (
            store.root / "manifest.json"
        ).read_bytes()

    def test_cli_migrate_requires_out_and_backend(
        self, tmp_path, capsys
    ) -> None:
        assert main(["campaign", "migrate", "--dir", str(tmp_path)]) == 2
        assert "requires --out" in capsys.readouterr().err

    def test_cli_backend_mismatch_is_an_error(
        self, tmp_path, tiny_campaign: CampaignSpec, capsys
    ) -> None:
        store = ArtifactStore(tmp_path / "store", backend="sqlite")
        store.initialize(tiny_campaign)
        assert (
            main(
                [
                    "campaign",
                    "status",
                    "--dir",
                    str(store.root),
                    "--store-backend",
                    "json",
                ]
            )
            == 2
        )
        assert "migrate" in capsys.readouterr().err
