"""The ``repro campaign`` subcommand and the shared CLI flag surface."""

from __future__ import annotations

import pytest

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec
from repro.experiments.runner import build_parser, main

pytestmark = pytest.mark.campaign_smoke


class TestSharedFlags:
    """One parent parser supplies the cross-cutting flags everywhere."""

    @pytest.mark.parametrize("command", ["fig5", "resilience", "all"])
    def test_experiment_subcommands_accept_common_flags(
        self, command: str
    ) -> None:
        args = build_parser().parse_args(
            [command, "--backend", "pool", "--quorum", "2", "--profile"]
        )
        assert args.backend == "pool"
        assert args.quorum == 2
        assert args.profile is True
        assert args.scale == "tiny"

    def test_campaign_accepts_common_flags(self, tmp_path) -> None:
        args = build_parser().parse_args(
            [
                "campaign",
                "run",
                "--backend",
                "batched",
                "--fault-plan",
                str(tmp_path / "plan.json"),
                "--quorum",
                "3",
                "--telemetry",
                str(tmp_path / "t.jsonl"),
            ]
        )
        assert args.experiment == "campaign"
        assert args.action == "run"
        assert args.backend == "batched"
        assert args.quorum == 3
        assert args.telemetry is not None

    def test_backend_defaults_to_none_everywhere(self) -> None:
        # None means "no override": experiments fall back to sequential,
        # campaigns respect each unit's own spec.
        assert build_parser().parse_args(["fig5"]).backend is None
        assert (
            build_parser().parse_args(["campaign", "status"]).backend is None
        )

    def test_campaign_rejects_unknown_action(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "destroy"])

    def test_quorum_validated_before_dispatch(self, capsys) -> None:
        assert main(["campaign", "run", "--quorum", "0"]) == 2
        assert "--quorum" in capsys.readouterr().err


class TestCampaignCli:
    def test_init_writes_loadable_spec(self, tmp_path, capsys) -> None:
        path = tmp_path / "sweep.json"
        assert main(["campaign", "init", "--spec", str(path)]) == 0
        assert "wrote demo campaign spec" in capsys.readouterr().out
        demo = CampaignSpec.load(path)
        assert len(demo) > 1

    def test_init_without_spec_fails(self, tmp_path, capsys) -> None:
        assert main(["campaign", "init"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_run_interrupt_resume_and_status(
        self, tmp_path, capsys, tiny_campaign: CampaignSpec
    ) -> None:
        spec_path = tmp_path / "campaign.json"
        tiny_campaign.save(spec_path)
        store_dir = tmp_path / "artifacts"

        # First pass: stop after two units, checkpointed.
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec_path),
                    "--dir",
                    str(store_dir),
                    "--max-units",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 units run" in out
        assert "interrupted" in out
        assert "to resume" in out

        # Second pass resumes from the store alone (no --spec needed).
        assert main(["campaign", "run", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 units run, 2 resumed from artifacts" in out
        assert "Mean energy (J) per (K, E) cell" in out

        # Status: complete and integrity-clean.
        assert main(["campaign", "status", "--dir", str(store_dir)]) == 0
        captured = capsys.readouterr()
        assert "4/4 units complete" in captured.out
        assert captured.err == ""

    def test_status_flags_corruption(
        self, tmp_path, capsys, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "artifacts")
        CampaignRunner(tiny_campaign, store).run(max_units=1)
        key = next(iter(store.completed_keys()))
        (store.unit_dir(key) / "result.json").unlink()
        assert main(["campaign", "status", "--dir", str(store.root)]) == 1
        assert "integrity" in capsys.readouterr().err

    def test_status_without_store_fails(self, tmp_path, capsys) -> None:
        missing = tmp_path / "nowhere"
        assert main(["campaign", "status", "--dir", str(missing)]) == 2
        assert "no campaign store" in capsys.readouterr().err

    def test_report_regenerates_grid_without_training(
        self, tmp_path, capsys, monkeypatch, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "artifacts")
        CampaignRunner(tiny_campaign, store).run()
        capsys.readouterr()

        # From here on, any training attempt is an error: the report
        # must come from stored artifacts alone.
        def _no_training(*args, **kwargs):
            raise AssertionError("report must not re-run training")

        monkeypatch.setattr(
            "repro.hardware.prototype.HardwarePrototype.run", _no_training
        )
        monkeypatch.setattr(
            "repro.campaign.runner.CampaignRunner.run_unit", _no_training
        )
        assert main(["campaign", "report", "--dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "4 completed units" in out
        assert "Mean energy (J) per (K, E) cell" in out
        assert "best plan: K=" in out
        assert "saving vs (K=1, E=1) baseline" in out

    def test_report_without_store_fails(self, tmp_path, capsys) -> None:
        assert main(["campaign", "report", "--dir", str(tmp_path / "x")]) == 2
        assert "no campaign store" in capsys.readouterr().err

    def test_run_backend_override_rewrites_unit_specs(
        self, tmp_path, capsys, tiny_campaign: CampaignSpec
    ) -> None:
        spec_path = tmp_path / "campaign.json"
        tiny_campaign.save(spec_path)
        store_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec_path),
                    "--dir",
                    str(store_dir),
                    "--backend",
                    "batched",
                    "--max-units",
                    "1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        store = ArtifactStore(store_dir)
        (artifact,) = list(store.units())
        assert artifact.spec().backend == "batched"
        # The store is bound to the overridden campaign, so resuming
        # the original spec into it is refused.
        assert store.campaign_key() != tiny_campaign.key()
