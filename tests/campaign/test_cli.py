"""The ``repro campaign`` subcommand and the shared CLI flag surface."""

from __future__ import annotations

import pytest

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec
from repro.experiments.runner import build_parser, main

pytestmark = pytest.mark.campaign_smoke


class TestSharedFlags:
    """One parent parser supplies the cross-cutting flags everywhere."""

    @pytest.mark.parametrize("command", ["fig5", "resilience", "all"])
    def test_experiment_subcommands_accept_common_flags(
        self, command: str
    ) -> None:
        args = build_parser().parse_args(
            [command, "--backend", "pool", "--quorum", "2", "--profile"]
        )
        assert args.backend == "pool"
        assert args.quorum == 2
        assert args.profile is True
        assert args.scale == "tiny"

    def test_campaign_accepts_common_flags(self, tmp_path) -> None:
        args = build_parser().parse_args(
            [
                "campaign",
                "run",
                "--backend",
                "batched",
                "--fault-plan",
                str(tmp_path / "plan.json"),
                "--quorum",
                "3",
                "--telemetry",
                str(tmp_path / "t.jsonl"),
            ]
        )
        assert args.experiment == "campaign"
        assert args.action == "run"
        assert args.backend == "batched"
        assert args.quorum == 3
        assert args.telemetry is not None

    def test_backend_defaults_to_none_everywhere(self) -> None:
        # None means "no override": experiments fall back to sequential,
        # campaigns respect each unit's own spec.
        assert build_parser().parse_args(["fig5"]).backend is None
        assert (
            build_parser().parse_args(["campaign", "status"]).backend is None
        )

    def test_campaign_rejects_unknown_action(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "destroy"])

    def test_quorum_validated_before_dispatch(self, capsys) -> None:
        assert main(["campaign", "run", "--quorum", "0"]) == 2
        assert "--quorum" in capsys.readouterr().err


class TestCampaignCli:
    def test_init_writes_loadable_spec(self, tmp_path, capsys) -> None:
        path = tmp_path / "sweep.json"
        assert main(["campaign", "init", "--spec", str(path)]) == 0
        assert "wrote demo campaign spec" in capsys.readouterr().out
        demo = CampaignSpec.load(path)
        assert len(demo) > 1

    def test_init_without_spec_fails(self, tmp_path, capsys) -> None:
        assert main(["campaign", "init"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_run_interrupt_resume_and_status(
        self, tmp_path, capsys, tiny_campaign: CampaignSpec
    ) -> None:
        spec_path = tmp_path / "campaign.json"
        tiny_campaign.save(spec_path)
        store_dir = tmp_path / "artifacts"

        # First pass: stop after two units, checkpointed.
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec_path),
                    "--dir",
                    str(store_dir),
                    "--max-units",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 units run" in out
        assert "interrupted" in out
        assert "to resume" in out

        # Second pass resumes from the store alone (no --spec needed).
        assert main(["campaign", "run", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 units run, 2 resumed from artifacts" in out
        assert "Mean energy (J) per (K, E) cell" in out

        # Status: complete and integrity-clean.
        assert main(["campaign", "status", "--dir", str(store_dir)]) == 0
        captured = capsys.readouterr()
        assert "4/4 units complete" in captured.out
        assert captured.err == ""

    def test_status_flags_corruption(
        self, tmp_path, capsys, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "artifacts")
        CampaignRunner(tiny_campaign, store).run(max_units=1)
        key = next(iter(store.completed_keys()))
        (store.unit_dir(key) / "result.json").unlink()
        assert main(["campaign", "status", "--dir", str(store.root)]) == 1
        assert "integrity" in capsys.readouterr().err

    def test_status_without_store_fails(self, tmp_path, capsys) -> None:
        missing = tmp_path / "nowhere"
        assert main(["campaign", "status", "--dir", str(missing)]) == 2
        assert "no campaign store" in capsys.readouterr().err

    def test_report_regenerates_grid_without_training(
        self, tmp_path, capsys, monkeypatch, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "artifacts")
        CampaignRunner(tiny_campaign, store).run()
        capsys.readouterr()

        # From here on, any training attempt is an error: the report
        # must come from stored artifacts alone.
        def _no_training(*args, **kwargs):
            raise AssertionError("report must not re-run training")

        monkeypatch.setattr(
            "repro.hardware.prototype.HardwarePrototype.run", _no_training
        )
        monkeypatch.setattr(
            "repro.campaign.runner.CampaignRunner.run_unit", _no_training
        )
        assert main(["campaign", "report", "--dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "4 completed units" in out
        assert "Mean energy (J) per (K, E) cell" in out
        assert "best plan: K=" in out
        assert "saving vs (K=1, E=1) baseline" in out

    def test_report_without_store_fails(self, tmp_path, capsys) -> None:
        assert main(["campaign", "report", "--dir", str(tmp_path / "x")]) == 2
        assert "no campaign store" in capsys.readouterr().err

    def test_run_backend_override_rewrites_unit_specs(
        self, tmp_path, capsys, tiny_campaign: CampaignSpec
    ) -> None:
        spec_path = tmp_path / "campaign.json"
        tiny_campaign.save(spec_path)
        store_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec_path),
                    "--dir",
                    str(store_dir),
                    "--backend",
                    "batched",
                    "--max-units",
                    "1",
                ]
            )
            == 0
        )
        capsys.readouterr()
        store = ArtifactStore(store_dir)
        (artifact,) = list(store.units())
        assert artifact.spec().backend == "batched"
        # The store is bound to the overridden campaign, so resuming
        # the original spec into it is refused.
        assert store.campaign_key() != tiny_campaign.key()


class TestSupervisionCli:
    def _solo_spec_path(self, tmp_path, tiny_spec):
        campaign = CampaignSpec(name="solo", base=tiny_spec)
        path = tmp_path / "spec.json"
        campaign.save(path)
        return path, campaign

    def _chaos_path(self, tmp_path, kind="crash", times=-1):
        from repro.faults import ChaosPlan, Saboteur

        plan = ChaosPlan.build({"solo": Saboteur(kind=kind, times=times)})
        path = tmp_path / "chaos.json"
        path.write_text(plan.to_json())
        return path

    def test_parser_accepts_supervision_flags(self) -> None:
        args = build_parser().parse_args(
            [
                "campaign",
                "run",
                "--retries",
                "5",
                "--unit-timeout",
                "30",
                "--retry-quarantined",
                "--chaos-plan",
                "plan.json",
            ]
        )
        assert args.retries == 5
        assert args.unit_timeout == 30.0
        assert args.retry_quarantined is True
        assert args.chaos_plan == "plan.json"
        assert args.no_supervise is False
        doctor = build_parser().parse_args(
            ["campaign", "doctor", "--dir", "d", "--repair"]
        )
        assert doctor.action == "doctor"
        assert doctor.repair is True

    def test_chaos_run_exits_degraded_then_heals(
        self, tmp_path, capsys, tiny_spec
    ) -> None:
        spec_path, campaign = self._solo_spec_path(tmp_path, tiny_spec)
        chaos_path = self._chaos_path(tmp_path)
        store = tmp_path / "store"
        code = main(
            [
                "campaign",
                "run",
                "--spec",
                str(spec_path),
                "--dir",
                str(store),
                "--chaos-plan",
                str(chaos_path),
                "--retries",
                "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "1 QUARANTINED" in captured.out
        assert "DEGRADED" in captured.err
        assert "--retry-quarantined" in captured.err

        # status flags the quarantined unit with a non-zero exit...
        assert main(["campaign", "status", "--dir", str(store)]) == 1
        out = capsys.readouterr().out
        assert "1 quarantined" in out

        # ... and a fresh budget (chaos gone) heals to a clean exit.
        assert (
            main(
                [
                    "campaign",
                    "run",
                    "--dir",
                    str(store),
                    "--retry-quarantined",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["campaign", "status", "--dir", str(store)]) == 0

    def test_no_supervise_restores_fail_fast(
        self, tmp_path, capsys, tiny_spec
    ) -> None:
        from repro.faults import ChaosError

        spec_path, _ = self._solo_spec_path(tmp_path, tiny_spec)
        chaos_path = self._chaos_path(tmp_path)
        with pytest.raises(ChaosError):
            main(
                [
                    "campaign",
                    "run",
                    "--spec",
                    str(spec_path),
                    "--dir",
                    str(tmp_path / "store"),
                    "--chaos-plan",
                    str(chaos_path),
                    "--no-supervise",
                ]
            )

    def test_doctor_diagnoses_and_repairs_with_exit_codes(
        self, tmp_path, capsys, tiny_spec
    ) -> None:
        spec_path, _ = self._solo_spec_path(tmp_path, tiny_spec)
        store = tmp_path / "store"
        assert (
            main(
                ["campaign", "run", "--spec", str(spec_path), "--dir", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["campaign", "doctor", "--dir", str(store)]) == 0
        assert "healthy" in capsys.readouterr().out

        index_filename = ArtifactStore(store).index_filename
        (store / index_filename).unlink()
        assert main(["campaign", "doctor", "--dir", str(store)]) == 1
        assert f"{index_filename} missing" in capsys.readouterr().out
        assert (
            main(["campaign", "doctor", "--dir", str(store), "--repair"]) == 0
        )
        out = capsys.readouterr().out
        assert "adopted orphan" in out
        # Zero retraining afterwards: the run resumes from artifacts.
        assert main(["campaign", "run", "--dir", str(store)]) == 0
        assert "0 units run, 1 resumed from artifacts" in capsys.readouterr().out

    def test_doctor_without_store_exits_2(self, tmp_path, capsys) -> None:
        assert (
            main(["campaign", "doctor", "--dir", str(tmp_path / "nope")]) == 2
        )
        assert "no campaign store" in capsys.readouterr().err
