"""Unit tests for the battery / network-lifetime model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iot.battery import Battery, BatteryConfig, FleetLifetimeModel


class TestBatteryConfig:
    def test_usable_energy(self) -> None:
        config = BatteryConfig(capacity_j=1000.0, usable_fraction=0.8)
        assert config.usable_j == pytest.approx(800.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity_j": 0.0},
            {"self_discharge_per_day": -0.1},
            {"self_discharge_per_day": 1.0},
            {"usable_fraction": 0.0},
            {"usable_fraction": 1.5},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            BatteryConfig(**kwargs)


class TestBattery:
    def test_draw_decrements(self) -> None:
        battery = Battery(BatteryConfig(capacity_j=100.0, usable_fraction=1.0))
        assert battery.draw(30.0)
        assert battery.remaining_j == pytest.approx(70.0)
        assert battery.state_of_charge == pytest.approx(0.7)
        assert not battery.depleted

    def test_overdraw_browns_out(self) -> None:
        battery = Battery(BatteryConfig(capacity_j=100.0, usable_fraction=1.0))
        assert not battery.draw(150.0)
        assert battery.depleted
        assert battery.remaining_j == 0.0

    def test_draw_rejects_negative(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            Battery().draw(-1.0)

    def test_age_applies_self_discharge(self) -> None:
        config = BatteryConfig(
            capacity_j=1000.0, self_discharge_per_day=0.01, usable_fraction=1.0
        )
        battery = Battery(config)
        battery.age(10.0)
        assert battery.remaining_j == pytest.approx(900.0)

    def test_age_floors_at_zero(self) -> None:
        config = BatteryConfig(
            capacity_j=100.0, self_discharge_per_day=0.5, usable_fraction=1.0
        )
        battery = Battery(config)
        battery.age(100.0)
        assert battery.remaining_j == 0.0

    def test_age_rejects_negative(self) -> None:
        with pytest.raises(ValueError, match="days"):
            Battery().age(-1.0)


class TestFleetLifetime:
    def _model(self) -> FleetLifetimeModel:
        return FleetLifetimeModel(
            n_devices=10,
            per_task_cluster_energy_j=100.0,
            battery=BatteryConfig(capacity_j=1000.0, usable_fraction=1.0,
                                  self_discharge_per_day=0.0),
        )

    def test_per_device_energy_split(self) -> None:
        assert self._model().per_task_device_energy_j == pytest.approx(10.0)

    def test_tasks_until_depletion(self) -> None:
        assert self._model().tasks_until_depletion() == 100

    def test_halving_energy_doubles_tasks(self) -> None:
        # The operational meaning of the paper's 49.8% saving.
        expensive = self._model()
        cheap = FleetLifetimeModel(
            n_devices=10,
            per_task_cluster_energy_j=50.0,
            battery=expensive.battery,
        )
        assert cheap.tasks_until_depletion() == 2 * expensive.tasks_until_depletion()

    def test_lifetime_days(self) -> None:
        model = self._model()
        # 2 tasks/day x 10 J/device = 20 J/day; 1000 J => 50 days.
        assert model.lifetime_days(tasks_per_day=2.0) == pytest.approx(50.0)

    def test_lifetime_includes_self_discharge(self) -> None:
        leaky = FleetLifetimeModel(
            n_devices=10,
            per_task_cluster_energy_j=100.0,
            battery=BatteryConfig(
                capacity_j=1000.0, usable_fraction=1.0, self_discharge_per_day=0.01
            ),
        )
        # 20 J/day load + 10 J/day leak => 1000/30 days.
        assert leaky.lifetime_days(2.0) == pytest.approx(1000.0 / 30.0)

    def test_simulation_matches_analytic_mean(self) -> None:
        model = self._model()
        soc = model.simulate_fleet(50, np.random.default_rng(0), load_spread=0.05)
        assert soc.shape == (10,)
        # 50 tasks x 10 J = 500 J of 1000 J => ~0.5 remaining.
        assert soc.mean() == pytest.approx(0.5, abs=0.05)

    def test_simulation_zero_tasks(self) -> None:
        soc = self._model().simulate_fleet(0, np.random.default_rng(0))
        np.testing.assert_allclose(soc, 1.0)

    def test_dead_devices_clip_at_zero(self) -> None:
        model = self._model()
        soc = model.simulate_fleet(200, np.random.default_rng(1), load_spread=0.3)
        assert soc.min() >= 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_devices": 0, "per_task_cluster_energy_j": 1.0},
            {"n_devices": 1, "per_task_cluster_energy_j": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            FleetLifetimeModel(**kwargs)

    def test_rejects_bad_simulation_args(self) -> None:
        model = self._model()
        with pytest.raises(ValueError, match="n_tasks"):
            model.simulate_fleet(-1, np.random.default_rng(0))
        with pytest.raises(ValueError, match="load_spread"):
            model.simulate_fleet(1, np.random.default_rng(0), load_spread=1.0)
        with pytest.raises(ValueError, match="tasks_per_day"):
            model.lifetime_days(0.0)
