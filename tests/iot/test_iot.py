"""Unit tests for the IoT network substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constants import NBIOT_ENERGY_PER_BYTE_J
from repro.iot.collision import SlottedAlohaModel
from repro.iot.device import NBIOT_PROFILE, IoTDevice, RadioProfile
from repro.iot.network import IoTCluster, IoTNetwork


class TestDevice:
    def test_nbiot_energy_per_sample(self) -> None:
        device = IoTDevice(device_id=0, sample_bytes=785)
        # §IV-A: NB-IoT costs 7.74 mWs per byte.
        assert device.energy_per_sample == pytest.approx(785 * NBIOT_ENERGY_PER_BYTE_J)

    def test_upload_energy_linear(self) -> None:
        device = IoTDevice(device_id=0, sample_bytes=100)
        assert device.upload_energy(10) == pytest.approx(10 * device.energy_per_sample)
        assert device.upload_energy(0) == 0.0

    def test_upload_energy_inflated_by_collisions(self) -> None:
        device = IoTDevice(device_id=0)
        assert device.upload_energy(10, success_probability=0.5) == pytest.approx(
            2 * device.upload_energy(10)
        )

    def test_time_per_sample(self) -> None:
        device = IoTDevice(device_id=0, sample_bytes=100)
        assert device.time_per_sample == pytest.approx(800 / NBIOT_PROFILE.rate_bps)

    def test_rejects_invalid(self) -> None:
        with pytest.raises(ValueError, match="sample_bytes"):
            IoTDevice(device_id=0, sample_bytes=0)
        with pytest.raises(ValueError, match="n_samples"):
            IoTDevice(device_id=0).upload_energy(-1)
        with pytest.raises(ValueError, match="success_probability"):
            IoTDevice(device_id=0).upload_energy(1, success_probability=0.0)

    def test_radio_profile_validation(self) -> None:
        with pytest.raises(ValueError, match="energy_per_byte"):
            RadioProfile("bad", 0.0, 1000.0, True)
        with pytest.raises(ValueError, match="rate_bps"):
            RadioProfile("bad", 1e-3, 0.0, True)


class TestSlottedAloha:
    def test_success_probability_closed_form(self) -> None:
        model = SlottedAlohaModel(n_devices=10, transmit_probability=0.1)
        assert model.success_probability == pytest.approx(0.9**9)

    def test_single_device_always_succeeds(self) -> None:
        model = SlottedAlohaModel(n_devices=1, transmit_probability=0.5)
        assert model.success_probability == 1.0
        assert model.energy_inflation_factor() == 1.0

    def test_more_devices_lower_success(self) -> None:
        probabilities = [
            SlottedAlohaModel(m, 0.1).success_probability for m in (2, 5, 20, 100)
        ]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_simulated_attempts_match_expectation(self) -> None:
        model = SlottedAlohaModel(n_devices=20, transmit_probability=0.05)
        attempts = model.simulate_deliveries(5000, np.random.default_rng(0))
        assert attempts.min() >= 1
        assert np.mean(attempts) == pytest.approx(
            model.expected_attempts_per_packet, rel=0.05
        )

    def test_throughput_maximised_at_one_over_m(self) -> None:
        m = 25
        best = SlottedAlohaModel(m, 1.0 / m).throughput()
        for q in (0.2 / m, 0.5 / m, 2.0 / m, 5.0 / m):
            assert SlottedAlohaModel(m, q).throughput() <= best + 1e-12

    def test_rejects_invalid(self) -> None:
        with pytest.raises(ValueError, match="n_devices"):
            SlottedAlohaModel(0, 0.1)
        with pytest.raises(ValueError, match="transmit_probability"):
            SlottedAlohaModel(5, 0.0)
        with pytest.raises(ValueError, match="n_packets"):
            SlottedAlohaModel(5, 0.1).simulate_deliveries(-1, np.random.default_rng(0))


class TestCluster:
    def _cluster(self, contention: SlottedAlohaModel | None = None) -> IoTCluster:
        devices = [IoTDevice(device_id=i, sample_bytes=100) for i in range(4)]
        return IoTCluster(edge_server_id=0, devices=devices, contention=contention)

    def test_rho_without_contention(self) -> None:
        cluster = self._cluster()
        assert cluster.rho == pytest.approx(100 * NBIOT_ENERGY_PER_BYTE_J)

    def test_rho_inflated_by_contention(self) -> None:
        contention = SlottedAlohaModel(n_devices=4, transmit_probability=0.2)
        cluster = self._cluster(contention)
        assert cluster.rho == pytest.approx(
            100 * NBIOT_ENERGY_PER_BYTE_J / contention.success_probability
        )

    def test_collection_energy_matches_eq4(self) -> None:
        cluster = self._cluster()
        assert cluster.collection_energy(50) == pytest.approx(cluster.rho * 50)

    def test_collect_simulation_statistics(self) -> None:
        contention = SlottedAlohaModel(n_devices=4, transmit_probability=0.1)
        cluster = self._cluster(contention)
        report = cluster.collect(2000, np.random.default_rng(1))
        assert report.n_samples == 2000
        assert report.attempts >= 2000
        # Sampled energy should approach the expected rho * n.
        assert report.energy_j == pytest.approx(cluster.collection_energy(2000), rel=0.1)

    def test_collect_zero_samples(self) -> None:
        report = self._cluster().collect(0, np.random.default_rng(0))
        assert report.energy_j == 0.0
        assert report.attempts == 0

    def test_rejects_empty_cluster(self) -> None:
        with pytest.raises(ValueError, match="at least one device"):
            IoTCluster(0, [])


class TestNetwork:
    def test_homogeneous_builder(self) -> None:
        network = IoTNetwork.homogeneous(5, devices_per_cluster=3)
        assert network.n_clusters == 5
        assert len(network.cluster(2).devices) == 3

    def test_rho_values_and_mean(self) -> None:
        network = IoTNetwork.homogeneous(4, 2, sample_bytes=100)
        rhos = network.rho_values()
        assert set(rhos) == {0, 1, 2, 3}
        assert network.mean_rho() == pytest.approx(100 * NBIOT_ENERGY_PER_BYTE_J)

    def test_collect_round(self) -> None:
        network = IoTNetwork.homogeneous(3, 2, sample_bytes=100)
        reports = network.collect_round({0: 5, 2: 7}, np.random.default_rng(0))
        assert set(reports) == {0, 2}
        assert reports[2].n_samples == 7

    def test_unknown_cluster_raises(self) -> None:
        network = IoTNetwork.homogeneous(2, 1)
        with pytest.raises(KeyError, match="no cluster"):
            network.cluster(5)

    def test_duplicate_ids_rejected(self) -> None:
        devices = [IoTDevice(device_id=0)]
        with pytest.raises(ValueError, match="duplicate"):
            IoTNetwork([IoTCluster(1, devices), IoTCluster(1, devices)])

    def test_empty_network_rejected(self) -> None:
        with pytest.raises(ValueError, match="at least one cluster"):
            IoTNetwork([])
