"""Unit tests for the Dataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_split


def _make(n: int = 10, n_features: int = 4, n_classes: int = 3) -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(
        rng.normal(size=(n, n_features)),
        rng.integers(0, n_classes, size=n),
        n_classes,
    )


class TestConstruction:
    def test_basic_properties(self) -> None:
        ds = _make(n=10, n_features=4, n_classes=3)
        assert len(ds) == 10
        assert ds.n_features == 4
        assert ds.n_classes == 3

    def test_labels_cast_to_int64(self) -> None:
        ds = Dataset(np.zeros((3, 2)), np.array([0.0, 1.0, 1.0]), 2)
        assert ds.labels.dtype == np.int64

    def test_rejects_1d_features(self) -> None:
        with pytest.raises(ValueError, match="features must be 2-D"):
            Dataset(np.zeros(5), np.zeros(5, dtype=int), 2)

    def test_rejects_2d_labels(self) -> None:
        with pytest.raises(ValueError, match="labels must be 1-D"):
            Dataset(np.zeros((5, 2)), np.zeros((5, 1), dtype=int), 2)

    def test_rejects_mismatched_lengths(self) -> None:
        with pytest.raises(ValueError, match="disagree on the number of samples"):
            Dataset(np.zeros((5, 2)), np.zeros(4, dtype=int), 2)

    def test_rejects_out_of_range_labels(self) -> None:
        with pytest.raises(ValueError, match="labels must lie in"):
            Dataset(np.zeros((3, 2)), np.array([0, 1, 2]), 2)

    def test_rejects_negative_labels(self) -> None:
        with pytest.raises(ValueError, match="labels must lie in"):
            Dataset(np.zeros((3, 2)), np.array([0, -1, 1]), 2)

    def test_rejects_nonpositive_n_classes(self) -> None:
        with pytest.raises(ValueError, match="n_classes must be positive"):
            Dataset(np.zeros((3, 2)), np.zeros(3, dtype=int), 0)


class TestSubset:
    def test_subset_selects_rows(self) -> None:
        ds = _make(n=10)
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.features, ds.features[[1, 3, 5]])
        np.testing.assert_array_equal(sub.labels, ds.labels[[1, 3, 5]])

    def test_subset_keeps_n_classes(self) -> None:
        ds = _make(n=10, n_classes=3)
        assert ds.subset([0]).n_classes == 3

    def test_take_caps_at_length(self) -> None:
        ds = _make(n=5)
        assert len(ds.take(100)) == 5
        assert len(ds.take(2)) == 2

    def test_take_rejects_negative(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            _make().take(-1)

    def test_shuffled_is_permutation(self) -> None:
        ds = _make(n=20)
        shuffled = ds.shuffled(np.random.default_rng(3))
        assert sorted(shuffled.labels.tolist()) == sorted(ds.labels.tolist())
        assert np.isclose(shuffled.features.sum(), ds.features.sum())


class TestBatches:
    def test_batches_cover_all_samples(self) -> None:
        ds = _make(n=10)
        batches = list(ds.batches(3))
        assert sum(len(b[1]) for b in batches) == 10
        assert [len(b[1]) for b in batches] == [3, 3, 3, 1]

    def test_full_batch(self) -> None:
        ds = _make(n=10)
        batches = list(ds.batches(100))
        assert len(batches) == 1
        assert len(batches[0][1]) == 10

    def test_batches_shuffle_with_rng(self) -> None:
        ds = _make(n=50)
        plain = np.concatenate([b[1] for b in ds.batches(50)])
        shuffled = np.concatenate(
            [b[1] for b in ds.batches(50, rng=np.random.default_rng(5))]
        )
        assert sorted(plain.tolist()) == sorted(shuffled.tolist())
        assert not np.array_equal(plain, shuffled)

    def test_rejects_nonpositive_batch_size(self) -> None:
        with pytest.raises(ValueError, match="batch_size must be positive"):
            list(_make().batches(0))


class TestClassCounts:
    def test_counts_sum_to_length(self) -> None:
        ds = _make(n=30, n_classes=3)
        counts = ds.class_counts()
        assert counts.shape == (3,)
        assert counts.sum() == 30

    def test_counts_include_missing_classes(self) -> None:
        ds = Dataset(np.zeros((3, 2)), np.array([0, 0, 1]), 5)
        counts = ds.class_counts()
        assert counts.tolist() == [2, 1, 0, 0, 0]


class TestMerge:
    def test_merge_concatenates(self) -> None:
        a, b = _make(n=4), _make(n=6)
        merged = a.merged_with(b)
        assert len(merged) == 10

    def test_merge_rejects_different_classes(self) -> None:
        a = Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), 2)
        b = Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), 3)
        with pytest.raises(ValueError, match="different n_classes"):
            a.merged_with(b)

    def test_merge_rejects_different_features(self) -> None:
        a = Dataset(np.zeros((2, 2)), np.zeros(2, dtype=int), 2)
        b = Dataset(np.zeros((2, 3)), np.zeros(2, dtype=int), 2)
        with pytest.raises(ValueError, match="different n_features"):
            a.merged_with(b)


class TestTrainTestSplit:
    def test_split_covers_everything(self) -> None:
        ds = _make(n=20)
        train, test = train_test_split(ds, 0.25, np.random.default_rng(0))
        assert len(train) == 15
        assert len(test) == 5

    def test_split_disjoint(self) -> None:
        rng = np.random.default_rng(0)
        ds = Dataset(
            np.arange(20, dtype=float).reshape(20, 1), np.zeros(20, dtype=int), 2
        )
        train, test = train_test_split(ds, 0.3, rng)
        train_vals = set(train.features.ravel().tolist())
        test_vals = set(test.features.ravel().tolist())
        assert not train_vals & test_vals
        assert len(train_vals | test_vals) == 20

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_split_rejects_bad_fraction(self, bad: float) -> None:
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(_make(), bad, np.random.default_rng(0))
