"""Unit tests for the synthetic-MNIST generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import (
    IMAGE_SIDE,
    N_CLASSES,
    N_FEATURES,
    generate_synthetic_mnist,
    load_synthetic_mnist,
    render_glyph,
)


class TestGlyphs:
    def test_glyph_shape_and_range(self) -> None:
        for digit in range(10):
            glyph = render_glyph(digit)
            assert glyph.shape == (IMAGE_SIDE, IMAGE_SIDE)
            assert set(np.unique(glyph)) <= {0.0, 1.0}

    def test_glyphs_are_distinct(self) -> None:
        glyphs = [render_glyph(d) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                assert not np.array_equal(glyphs[i], glyphs[j]), (i, j)

    def test_glyph_leaves_shift_margin(self) -> None:
        # Translations up to +-3 pixels must not push ink off the canvas.
        for digit in range(10):
            glyph = render_glyph(digit)
            assert glyph[:3].sum() == 0
            assert glyph[-3:].sum() == 0
            assert glyph[:, :3].sum() == 0
            assert glyph[:, -3:].sum() == 0

    def test_rejects_invalid_digit(self) -> None:
        with pytest.raises(ValueError, match="digit must be in 0..9"):
            render_glyph(10)


class TestGenerate:
    def test_shapes_and_ranges(self) -> None:
        ds = generate_synthetic_mnist(100, seed=0)
        assert len(ds) == 100
        assert ds.n_features == N_FEATURES
        assert ds.n_classes == N_CLASSES
        assert ds.features.min() >= 0.0
        assert ds.features.max() <= 1.0
        assert ds.features.dtype == np.float32

    def test_classes_balanced(self) -> None:
        ds = generate_synthetic_mnist(1000, seed=0, label_noise=0.0)
        counts = ds.class_counts()
        assert counts.min() == counts.max() == 100

    def test_unbalanced_remainder_distributed(self) -> None:
        ds = generate_synthetic_mnist(1003, seed=0, label_noise=0.0)
        counts = ds.class_counts()
        assert counts.sum() == 1003
        assert counts.max() - counts.min() == 1

    def test_deterministic_for_seed(self) -> None:
        a = generate_synthetic_mnist(50, seed=42)
        b = generate_synthetic_mnist(50, seed=42)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self) -> None:
        a = generate_synthetic_mnist(50, seed=1)
        b = generate_synthetic_mnist(50, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_label_noise_flips_some_labels(self) -> None:
        clean = generate_synthetic_mnist(2000, seed=3, label_noise=0.0)
        noisy = generate_synthetic_mnist(2000, seed=3, label_noise=0.2)
        flipped = np.mean(clean.labels != noisy.labels)
        # 20% re-drawn, of which 9/10 actually change: expect ~0.18.
        assert 0.12 < flipped < 0.25

    def test_rejects_bad_label_noise(self) -> None:
        with pytest.raises(ValueError, match="label_noise"):
            generate_synthetic_mnist(10, label_noise=1.0)

    def test_rejects_nonpositive_n(self) -> None:
        with pytest.raises(ValueError, match="n_samples must be positive"):
            generate_synthetic_mnist(0)

    def test_classes_separable_by_template_matching(self) -> None:
        """Noisy samples stay closer to their own prototype than to others.

        This is the property that makes the task learnable by a linear
        model.  Because samples are randomly translated by up to +-3
        pixels, the matcher scores each sample against every *shifted*
        prototype and takes the best match per class.
        """
        ds = generate_synthetic_mnist(300, seed=0, noise_std=0.25, label_noise=0.0)
        shifts = range(-3, 4)
        shifted_prototypes = np.stack(
            [
                np.stack(
                    [
                        np.roll(render_glyph(d), (dy, dx), axis=(0, 1)).ravel()
                        for dy in shifts
                        for dx in shifts
                    ]
                )
                for d in range(N_CLASSES)
            ]
        )  # (classes, shifts, pixels)
        scores = np.einsum("np,csp->ncs", ds.features, shifted_prototypes).max(axis=2)
        accuracy = float(np.mean(scores.argmax(axis=1) == ds.labels))
        assert accuracy > 0.75


class TestLoad:
    def test_load_returns_disjoint_seeded_pair(self) -> None:
        train, test = load_synthetic_mnist(n_train=200, n_test=100, seed=5)
        assert len(train) == 200
        assert len(test) == 100
        # Independent streams: the first images must differ.
        assert not np.array_equal(train.features[0], test.features[0])

    def test_load_deterministic(self) -> None:
        a_train, a_test = load_synthetic_mnist(100, 50, seed=9)
        b_train, b_test = load_synthetic_mnist(100, 50, seed=9)
        np.testing.assert_array_equal(a_train.features, b_train.features)
        np.testing.assert_array_equal(a_test.labels, b_test.labels)
