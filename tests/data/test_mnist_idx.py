"""Unit tests for the IDX-format MNIST loader (uses synthetic IDX files)."""

from __future__ import annotations

import gzip
import struct

import numpy as np
import pytest

from repro.data.mnist_idx import load_mnist_idx, mnist_files_present, read_idx


def _idx_bytes(array: np.ndarray, dtype_code: int = 0x08) -> bytes:
    header = struct.pack(">BBBB", 0, 0, dtype_code, array.ndim)
    header += struct.pack(f">{array.ndim}I", *array.shape)
    return header + array.astype(">u1" if dtype_code == 0x08 else ">f4").tobytes()


def _write_mnist_dir(tmp_path, n_train: int = 12, n_test: int = 6, gz: bool = False):
    rng = np.random.default_rng(0)
    files = {
        "train-images-idx3-ubyte": rng.integers(
            0, 256, size=(n_train, 28, 28), dtype=np.uint8
        ),
        "train-labels-idx1-ubyte": rng.integers(0, 10, size=n_train, dtype=np.uint8),
        "t10k-images-idx3-ubyte": rng.integers(
            0, 256, size=(n_test, 28, 28), dtype=np.uint8
        ),
        "t10k-labels-idx1-ubyte": rng.integers(0, 10, size=n_test, dtype=np.uint8),
    }
    for name, array in files.items():
        payload = _idx_bytes(array)
        if gz:
            (tmp_path / f"{name}.gz").write_bytes(gzip.compress(payload))
        else:
            (tmp_path / name).write_bytes(payload)
    return files


class TestReadIdx:
    def test_roundtrip_3d_ubyte(self, tmp_path) -> None:
        array = np.arange(2 * 3 * 4, dtype=np.uint8).reshape(2, 3, 4)
        path = tmp_path / "data.idx"
        path.write_bytes(_idx_bytes(array))
        np.testing.assert_array_equal(read_idx(path), array)

    def test_roundtrip_gzipped(self, tmp_path) -> None:
        array = np.arange(10, dtype=np.uint8)
        path = tmp_path / "data.idx.gz"
        path.write_bytes(gzip.compress(_idx_bytes(array)))
        np.testing.assert_array_equal(read_idx(path), array)

    def test_rejects_bad_magic(self, tmp_path) -> None:
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x01\x00\x08\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(ValueError, match="magic"):
            read_idx(path)

    def test_rejects_unknown_dtype(self, tmp_path) -> None:
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\x07\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(ValueError, match="dtype code"):
            read_idx(path)

    def test_rejects_truncated_body(self, tmp_path) -> None:
        array = np.arange(10, dtype=np.uint8)
        path = tmp_path / "short.idx"
        path.write_bytes(_idx_bytes(array)[:-3])
        with pytest.raises(ValueError, match="body has"):
            read_idx(path)

    def test_rejects_tiny_file(self, tmp_path) -> None:
        path = tmp_path / "tiny.idx"
        path.write_bytes(b"\x00\x00")
        with pytest.raises(ValueError, match="too short"):
            read_idx(path)


class TestLoadMnist:
    def test_loads_plain_files(self, tmp_path) -> None:
        files = _write_mnist_dir(tmp_path)
        train, test = load_mnist_idx(tmp_path)
        assert len(train) == 12
        assert len(test) == 6
        assert train.n_features == 784
        assert train.n_classes == 10
        assert train.features.dtype == np.float32
        assert 0.0 <= train.features.min() and train.features.max() <= 1.0
        np.testing.assert_array_equal(
            train.labels, files["train-labels-idx1-ubyte"].astype(np.int64)
        )

    def test_loads_gzipped_files(self, tmp_path) -> None:
        _write_mnist_dir(tmp_path, gz=True)
        train, test = load_mnist_idx(tmp_path)
        assert len(train) == 12

    def test_pixel_scaling(self, tmp_path) -> None:
        files = _write_mnist_dir(tmp_path)
        train, _ = load_mnist_idx(tmp_path)
        raw = files["train-images-idx3-ubyte"].reshape(12, -1)
        np.testing.assert_allclose(train.features, raw / 255.0, atol=1e-6)

    def test_missing_file_raises(self, tmp_path) -> None:
        _write_mnist_dir(tmp_path)
        (tmp_path / "t10k-labels-idx1-ubyte").unlink()
        with pytest.raises(FileNotFoundError, match="t10k-labels"):
            load_mnist_idx(tmp_path)

    def test_presence_check(self, tmp_path) -> None:
        assert not mnist_files_present(tmp_path)
        _write_mnist_dir(tmp_path)
        assert mnist_files_present(tmp_path)

    def test_label_count_mismatch_rejected(self, tmp_path) -> None:
        _write_mnist_dir(tmp_path)
        wrong = np.zeros(5, dtype=np.uint8)
        (tmp_path / "train-labels-idx1-ubyte").write_bytes(_idx_bytes(wrong))
        with pytest.raises(ValueError, match="label count"):
            load_mnist_idx(tmp_path)
