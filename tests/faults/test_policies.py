"""Unit tests for retry/backoff policies and the simulated upload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.models import GilbertElliottModel, substream
from repro.faults.policies import (
    ResilienceConfig,
    RetryPolicy,
    RoundResilienceReport,
    UploadOutcome,
    simulate_upload,
)
from repro.net.channel import ChannelConfig, WirelessChannel


class TestRetryPolicy:
    def test_exponential_growth_capped(self) -> None:
        policy = RetryPolicy(
            base_backoff_s=0.1,
            backoff_factor=2.0,
            max_backoff_s=0.5,
            jitter_fraction=0.0,
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.4)
        assert policy.backoff_s(3) == pytest.approx(0.5)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.5)

    def test_jitter_stays_within_fraction_and_is_deterministic(self) -> None:
        policy = RetryPolicy(base_backoff_s=1.0, jitter_fraction=0.2)
        draws = [
            policy.backoff_s(0, np.random.default_rng(s)) for s in range(50)
        ]
        assert all(0.8 <= d <= 1.2 for d in draws)
        assert policy.backoff_s(0, np.random.default_rng(3)) == policy.backoff_s(
            0, np.random.default_rng(3)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_backoff_s": -0.1},
            {"backoff_factor": 0.5},
            {"max_backoff_s": 0.01, "base_backoff_s": 0.1},
            {"jitter_fraction": 1.0},
        ],
    )
    def test_validation(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_rejects_negative_retry_index(self) -> None:
        with pytest.raises(ValueError, match="retry_index"):
            RetryPolicy().backoff_s(-1)


class TestResilienceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"upload_timeout_s": 0.0},
            {"round_deadline_s": -1.0},
            {"min_quorum": 0},
            {"nominal_train_s": -1.0},
        ],
    )
    def test_validation(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


def _channel(loss: float = 0.0) -> WirelessChannel:
    config = ChannelConfig(rate_bps=1e6, latency_s=0.0, loss_probability=loss)
    rng = np.random.default_rng(0) if loss > 0 else None
    return WirelessChannel(config, rng=rng)


class TestSimulateUpload:
    def test_lossless_delivers_first_attempt(self) -> None:
        outcome = simulate_upload(
            _channel(), 12500, RetryPolicy(), np.random.default_rng(0)
        )
        assert outcome.delivered
        assert outcome.attempts == 1
        assert outcome.retries == 0
        assert outcome.backoff_s == 0.0
        assert outcome.transfer_s == pytest.approx(0.1)

    def test_retry_cap_exhaustion(self) -> None:
        always_lost = lambda: True  # noqa: E731
        policy = RetryPolicy(max_retries=2, jitter_fraction=0.0)
        outcome = simulate_upload(
            _channel(),
            12500,
            policy,
            np.random.default_rng(0),
            attempt_lost=always_lost,
        )
        assert not outcome.delivered
        assert not outcome.timed_out
        assert outcome.attempts == 3  # 1 + max_retries
        assert outcome.retries == 2
        # Backoff accrues only between attempts: retries 0 and 1.
        assert outcome.backoff_s == pytest.approx(0.1 + 0.2)
        assert outcome.total_s == pytest.approx(3 * 0.1 + 0.3)

    def test_timeout_budget_stops_before_attempt(self) -> None:
        always_lost = lambda: True  # noqa: E731
        policy = RetryPolicy(
            max_retries=50, base_backoff_s=0.0, jitter_fraction=0.0
        )
        outcome = simulate_upload(
            _channel(),
            12500,  # 0.1 s per attempt
            policy,
            np.random.default_rng(0),
            timeout_s=0.35,
            attempt_lost=always_lost,
        )
        assert not outcome.delivered
        assert outcome.timed_out
        assert outcome.attempts == 3  # a 4th attempt would exceed 0.35 s

    def test_burst_model_drives_losses_deterministically(self) -> None:
        def run() -> UploadOutcome:
            model = GilbertElliottModel(
                p_enter_bad=0.4, p_exit_bad=0.3, loss_bad=0.95
            )
            channel_rng = substream(7, "channel", 0)
            return simulate_upload(
                _channel(),
                12500,
                RetryPolicy(max_retries=5),
                substream(7, "resilience"),
                attempt_lost=lambda: model.attempt_lost(channel_rng),
            )

        first, second = run(), run()
        assert first == second

    def test_rejects_negative_bytes(self) -> None:
        with pytest.raises(ValueError, match="n_bytes"):
            simulate_upload(
                _channel(), -1, RetryPolicy(), np.random.default_rng(0)
            )


class TestRoundResilienceReport:
    def test_retry_and_backoff_aggregates(self) -> None:
        report = RoundResilienceReport(
            round_index=4,
            selected=(0, 1, 2),
            upload_attempts={0: 1, 1: 3, 2: 2},
            backoff_s={1: 0.3, 2: 0.1},
        )
        assert report.retries == 3
        assert report.total_backoff_s == pytest.approx(0.4)

    def test_to_dict_is_plain_types(self) -> None:
        report = RoundResilienceReport(
            round_index=0,
            selected=(np.int64(0),),
            crashed=(np.int64(1),),
            slowdowns={np.int64(2): np.float64(3.0)},
            upload_attempts={0: 2},
            backoff_s={0: 0.1},
            degraded=True,
            quorum=2,
        )
        data = report.to_dict()
        assert data["selected"] == [0]
        assert data["crashed"] == [1]
        assert data["slowdowns"] == {2: 3.0}
        assert data["retries"] == 1
        assert data["degraded"] is True
        flat = list(data.values())
        for value in flat:
            assert type(value) in (int, float, bool, list, dict)
