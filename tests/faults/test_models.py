"""Unit tests for the declarative fault models and plan serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.models import (
    BatteryFault,
    BurstLossFault,
    CorruptionFault,
    CrashFault,
    FaultPlan,
    GilbertElliottModel,
    StragglerFault,
    make_demo_plan,
    substream,
)


class TestSubstream:
    def test_distinct_labels_give_distinct_streams(self) -> None:
        a = substream(7, "dropout").random(8)
        b = substream(7, "resilience").random(8)
        assert not np.allclose(a, b)

    def test_same_labels_reproduce(self) -> None:
        a = substream(7, "channel", 3).random(8)
        b = substream(7, "channel", 3).random(8)
        np.testing.assert_array_equal(a, b)

    def test_string_labels_are_stable_not_salted(self) -> None:
        # Python's builtin hash() is salted per process; the substream
        # mapping must not be.  CRC-32 of "dropout" is a fixed constant.
        a = substream(0, "dropout").random()
        b = substream(0, "dropout").random()
        assert a == b


class TestGilbertElliott:
    def test_good_state_with_zero_loss_never_loses(self) -> None:
        model = GilbertElliottModel(p_enter_bad=0.0, p_exit_bad=1.0, loss_good=0.0)
        rng = np.random.default_rng(0)
        assert not any(model.attempt_lost(rng) for _ in range(200))

    def test_bursty_losses_cluster(self) -> None:
        model = GilbertElliottModel(
            p_enter_bad=0.05, p_exit_bad=0.2, loss_good=0.0, loss_bad=1.0
        )
        rng = np.random.default_rng(1)
        outcomes = [model.attempt_lost(rng) for _ in range(5000)]
        losses = np.array(outcomes)
        # Losses occur, and consecutive losses are far likelier than the
        # marginal rate (the burst signature).
        rate = losses.mean()
        assert 0 < rate < 1
        pairs = losses[:-1] & losses[1:]
        conditional = pairs.sum() / max(1, losses[:-1].sum())
        assert conditional > 2 * rate

    def test_stationary_loss_matches_empirical_rate(self) -> None:
        model = GilbertElliottModel(
            p_enter_bad=0.1, p_exit_bad=0.3, loss_good=0.05, loss_bad=0.8
        )
        expected = model.stationary_loss
        rng = np.random.default_rng(2)
        observed = np.mean([model.attempt_lost(rng) for _ in range(20000)])
        assert observed == pytest.approx(expected, abs=0.03)

    def test_rejects_absorbing_bad_state(self) -> None:
        with pytest.raises(ValueError, match="absorbing"):
            GilbertElliottModel(p_enter_bad=0.5, p_exit_bad=0.0, loss_bad=1.0)

    def test_rejects_out_of_range_probability(self) -> None:
        with pytest.raises(ValueError, match="p_enter_bad"):
            GilbertElliottModel(p_enter_bad=1.5, p_exit_bad=0.5)


class TestFaultWindows:
    def test_crash_window_is_half_open(self) -> None:
        fault = CrashFault(client_id=0, start_round=2, end_round=5)
        assert not fault.active(1)
        assert fault.active(2)
        assert fault.active(4)
        assert not fault.active(5)

    def test_permanent_crash(self) -> None:
        fault = CrashFault(client_id=0, start_round=3)
        assert fault.active(1000)

    def test_rejects_empty_window(self) -> None:
        with pytest.raises(ValueError, match="end_round"):
            CrashFault(client_id=0, start_round=5, end_round=5)

    def test_straggler_rejects_speedup(self) -> None:
        with pytest.raises(ValueError, match="slowdown"):
            StragglerFault(client_id=0, start_round=0, slowdown=0.5)

    def test_battery_validation(self) -> None:
        with pytest.raises(ValueError, match="capacity_j"):
            BatteryFault(client_id=0, capacity_j=0.0)
        with pytest.raises(ValueError, match="initial_fraction"):
            BatteryFault(client_id=0, capacity_j=10.0, initial_fraction=0.0)

    def test_corruption_validation(self) -> None:
        with pytest.raises(ValueError, match="mode"):
            CorruptionFault(client_id=0, mode="zeros")
        with pytest.raises(ValueError, match="probability"):
            CorruptionFault(client_id=0, probability=0.0)

    def test_burst_loss_validates_channel_eagerly(self) -> None:
        with pytest.raises(ValueError, match="absorbing"):
            BurstLossFault(client_id=0, p_exit_bad=0.0, loss_bad=1.0)


class TestFaultPlan:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            seed=13,
            faults=(
                CrashFault(client_id=1, start_round=2, end_round=6),
                StragglerFault(client_id=2, start_round=0, slowdown=3.0),
                BurstLossFault(client_id=3, loss_bad=0.7),
                BatteryFault(client_id=4, capacity_j=25.0, per_round_j=5.0),
                CorruptionFault(client_id=5, probability=0.5, mode="inf"),
            ),
        )

    def test_queries(self) -> None:
        plan = self._plan()
        assert len(plan) == 5
        assert plan.max_client_id == 5
        assert [f.kind for f in plan.for_client(2)] == ["straggler"]
        assert len(plan.of_kind("crash")) == 1
        assert plan.for_client(99) == ()

    def test_json_round_trip_preserves_every_fault(self) -> None:
        plan = self._plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan

    def test_file_round_trip(self, tmp_path) -> None:
        plan = self._plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_from_dict_rejects_unknown_kind(self) -> None:
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"seed": 0, "faults": [{"kind": "meteor", "client_id": 0}]}
            )

    def test_from_dict_rejects_malformed_entry(self) -> None:
        with pytest.raises(ValueError, match="malformed fault plan"):
            FaultPlan.from_dict({"seed": 0, "faults": [{"client_id": 0}]})

    def test_empty_plan(self) -> None:
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.max_client_id == -1
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestDemoPlan:
    def test_contains_three_fault_kinds(self) -> None:
        plan = make_demo_plan(20, seed=3)
        kinds = {f.kind for f in plan}
        assert kinds == {"crash", "straggler", "burst_loss"}

    def test_fault_classes_are_disjoint(self) -> None:
        plan = make_demo_plan(20, seed=3)
        crash_ids = {f.client_id for f in plan.of_kind("crash")}
        slow_ids = {f.client_id for f in plan.of_kind("straggler")}
        loss_ids = {f.client_id for f in plan.of_kind("burst_loss")}
        assert not (crash_ids & slow_ids)
        assert not (crash_ids & loss_ids)
        assert not (slow_ids & loss_ids)

    def test_deterministic_in_seed(self) -> None:
        assert make_demo_plan(16, seed=5) == make_demo_plan(16, seed=5)
        assert make_demo_plan(16, seed=5) != make_demo_plan(16, seed=6)
