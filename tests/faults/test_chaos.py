"""Unit tests for the process-level chaos harness (repro.faults.chaos)."""

from __future__ import annotations

import json

import pytest

from repro.faults import ChaosError, ChaosPlan, Saboteur

pytestmark = pytest.mark.chaos_smoke


class TestSaboteur:
    def test_rejects_unknown_kind(self) -> None:
        with pytest.raises(ValueError, match="unknown saboteur kind"):
            Saboteur(kind="meltdown")

    def test_rejects_bad_times_and_hang(self) -> None:
        with pytest.raises(ValueError, match="times"):
            Saboteur(kind="crash", times=-2)
        with pytest.raises(ValueError, match="hang_s"):
            Saboteur(kind="hang", hang_s=0.0)

    def test_crash_acts_exactly_times_attempts_then_stops(self) -> None:
        saboteur = Saboteur(kind="crash", times=2)
        assert [saboteur.should_act(a) for a in range(4)] == [
            True,
            True,
            False,
            False,
        ]
        with pytest.raises(ChaosError, match="attempt 0"):
            saboteur.on_start(0)
        with pytest.raises(ChaosError, match="attempt 1"):
            saboteur.on_start(1)
        saboteur.on_start(2)  # silent: the retry succeeds

    def test_negative_times_means_unrecoverable(self) -> None:
        saboteur = Saboteur(kind="crash", times=-1)
        assert all(saboteur.should_act(a) for a in range(10))

    def test_interrupt_raises_keyboard_interrupt(self) -> None:
        with pytest.raises(KeyboardInterrupt):
            Saboteur(kind="interrupt").on_start(0)

    def test_corrupt_tears_history_bytes(self, tmp_path) -> None:
        unit_dir = tmp_path / "unit"
        unit_dir.mkdir()
        original = json.dumps({"rounds": list(range(50))}).encode()
        (unit_dir / "history.json").write_bytes(original)
        saboteur = Saboteur(kind="corrupt", times=1)
        saboteur.corrupt_artifacts(unit_dir, attempt=0)
        torn = (unit_dir / "history.json").read_bytes()
        assert torn != original
        assert len(torn) == len(original)  # torn write, not truncation
        assert b"CHAOS" in torn

        # Attempt 1 is past the budget: the rewrite stays clean.
        (unit_dir / "history.json").write_bytes(original)
        saboteur.corrupt_artifacts(unit_dir, attempt=1)
        assert (unit_dir / "history.json").read_bytes() == original

    def test_corrupt_does_not_touch_other_kinds(self, tmp_path) -> None:
        unit_dir = tmp_path / "unit"
        unit_dir.mkdir()
        (unit_dir / "history.json").write_bytes(b"{}")
        Saboteur(kind="crash").corrupt_artifacts(unit_dir, attempt=0)
        assert (unit_dir / "history.json").read_bytes() == b"{}"

    def test_dict_round_trip(self) -> None:
        saboteur = Saboteur(kind="hang", times=3, hang_s=7.5)
        assert Saboteur.from_dict(saboteur.to_dict()) == saboteur

    def test_from_dict_rejects_garbage(self) -> None:
        with pytest.raises(ValueError, match="malformed saboteur"):
            Saboteur.from_dict({"times": 1})


class TestChaosPlan:
    def test_matches_by_name_substring_first_wins(self) -> None:
        plan = ChaosPlan.build(
            {
                "K2-E4": Saboteur(kind="crash"),
                "K2": Saboteur(kind="hang"),
            }
        )
        assert plan.saboteur_for("grid-K2-E4-s0").kind == "crash"
        assert plan.saboteur_for("grid-K2-E1-s0").kind == "hang"
        assert plan.saboteur_for("grid-K8-E1-s0") is None

    def test_json_round_trip(self) -> None:
        plan = ChaosPlan.build(
            {
                "a": Saboteur(kind="kill", times=-1),
                "b": Saboteur(kind="corrupt", times=2),
            }
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_from_dict_requires_match_token(self) -> None:
        with pytest.raises(ValueError, match="missing 'match'"):
            ChaosPlan.from_dict({"saboteurs": [{"kind": "crash"}]})

    def test_empty_plan_matches_nothing(self) -> None:
        assert ChaosPlan().saboteur_for("anything") is None
