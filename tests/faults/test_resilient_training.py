"""Resilient-round semantics: survivor aggregation, quorum, determinism."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    BurstLossFault,
    CorruptionFault,
    CrashFault,
    FaultPlan,
    StragglerFault,
    make_demo_plan,
)
from repro.faults.policies import ResilienceConfig, RetryPolicy
from repro.fl.client import LocalUpdate
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sampling import FixedSampler
from repro.fl.server import Coordinator, NonFiniteUpdateError
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.obs import Observer

_CONFIG = LogisticRegressionConfig(n_features=8, n_classes=3)
_N_CLIENTS = 8


def _linear_task(n: int, seed: int = 0) -> Dataset:
    projection = np.random.default_rng(424242).normal(size=(8, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 8))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, 3)


_TRAIN = _linear_task(240)
_TEST = _linear_task(80, seed=99)
_PARTITIONS = partition_iid(_TRAIN, _N_CLIENTS, np.random.default_rng(1))


def _trainer(
    plan: FaultPlan | None = None,
    resilience: ResilienceConfig | None = None,
    sampler=None,
    observer=None,
    **config_kwargs,
) -> FederatedTrainer:
    clients = build_clients(_PARTITIONS, _CONFIG)
    defaults = dict(
        n_rounds=10,
        participants_per_round=4,
        local_epochs=2,
        sgd=SGDConfig(learning_rate=0.5, decay=1.0),
    )
    defaults.update(config_kwargs)
    injector = (
        FaultInjector(plan, _N_CLIENTS, observer=observer)
        if plan is not None
        else None
    )
    return FederatedTrainer(
        clients=clients,
        config=FederatedConfig(**defaults),
        train_eval=_TRAIN,
        test_eval=_TEST,
        sampler=sampler,
        observer=observer,
        fault_injector=injector,
        resilience=resilience,
    )


class TestSurvivorAggregationProperty:
    """Aggregation under failures == FedAvg over exactly the survivors."""

    @settings(max_examples=10, deadline=None)
    @given(plan_seed=st.integers(min_value=0, max_value=10_000))
    def test_faulted_round_equals_fedavg_over_survivors(
        self, plan_seed: int
    ) -> None:
        plan = make_demo_plan(
            _N_CLIENTS,
            seed=plan_seed,
            crash_fraction=0.25,
            loss_fraction=0.3,
            loss_bad=0.95,
        )
        faulted = _trainer(
            plan=plan,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_retries=1), min_quorum=1
            ),
        )
        record = faulted.run_round()
        survivors = record.aggregated
        if not survivors:
            assert record.degraded
            return
        # Reference run: no faults, FixedSampler selecting exactly the
        # survivor subset.  Fresh clients share the per-client RNG
        # streams with the faulted run, so local training is identical.
        reference = _trainer(
            sampler=FixedSampler(_N_CLIENTS, list(survivors)),
            participants_per_round=len(survivors),
        )
        reference.run_round()
        np.testing.assert_array_equal(
            faulted.coordinator.global_parameters,
            reference.coordinator.global_parameters,
        )

    def test_crashed_client_excluded_and_replaced(self) -> None:
        plan = FaultPlan(
            seed=3, faults=(CrashFault(client_id=0, start_round=0),)
        )
        trainer = _trainer(
            plan=plan,
            resilience=ResilienceConfig(),
            sampler=FixedSampler(_N_CLIENTS, [0, 1, 2, 3]),
        )
        record = trainer.run_round()
        report = trainer.last_resilience_report
        assert report.crashed == (0,)
        assert len(report.replacements) == 1
        assert 0 not in record.participants
        assert set(record.aggregated) == set(record.participants)

    def test_resampling_disabled_shrinks_the_round(self) -> None:
        plan = FaultPlan(
            seed=3, faults=(CrashFault(client_id=0, start_round=0),)
        )
        trainer = _trainer(
            plan=plan,
            resilience=ResilienceConfig(resample_crashed=False),
            sampler=FixedSampler(_N_CLIENTS, [0, 1, 2, 3]),
        )
        record = trainer.run_round()
        assert trainer.last_resilience_report.replacements == ()
        assert set(record.participants) == {1, 2, 3}


class TestDeterminism:
    def test_same_plan_and_seed_reproduce_identical_histories(self) -> None:
        def run() -> FederatedTrainer:
            plan = make_demo_plan(_N_CLIENTS, seed=11, loss_bad=0.95)
            trainer = _trainer(
                plan=plan,
                resilience=ResilienceConfig(
                    retry=RetryPolicy(max_retries=2),
                    upload_timeout_s=5.0,
                    round_deadline_s=60.0,
                    min_quorum=2,
                ),
                n_rounds=6,
            )
            trainer.run()
            return trainer

        first, second = run(), run()
        assert first.history.to_records() == second.history.to_records()
        assert [r.to_dict() for r in first.resilience_log] == [
            r.to_dict() for r in second.resilience_log
        ]

    def test_different_plan_seed_changes_the_run(self) -> None:
        def run(plan_seed: int) -> list[dict]:
            plan = make_demo_plan(_N_CLIENTS, seed=plan_seed, loss_bad=0.95)
            trainer = _trainer(
                plan=plan, resilience=ResilienceConfig(), n_rounds=6
            )
            trainer.run()
            return [r.to_dict() for r in trainer.resilience_log]

        assert run(11) != run(12)


class TestQuorumDegradation:
    def _all_crash_plan(self, start_round: int = 1) -> FaultPlan:
        return FaultPlan(
            seed=0,
            faults=tuple(
                CrashFault(client_id=c, start_round=start_round)
                for c in range(_N_CLIENTS)
            ),
        )

    def test_quorum_miss_degrades_and_carries_model_forward(self) -> None:
        observer = Observer()
        trainer = _trainer(
            plan=self._all_crash_plan(start_round=1),
            resilience=ResilienceConfig(min_quorum=2),
            n_rounds=3,
            observer=observer,
        )
        history = trainer.run()
        assert not history[0].degraded
        good_params = trainer.coordinator.global_parameters
        assert history[1].degraded and history[2].degraded
        assert history[1].aggregated == ()
        # The degraded rounds carried the last good model forward.
        np.testing.assert_array_equal(
            trainer.coordinator.global_parameters, good_params
        )
        assert history.degraded_round_count() == 2
        assert observer.counter("fl.rounds_degraded").value == 2
        assert observer.metrics.value("fl.rounds_skipped") == 2

    def test_quorum_met_by_survivors_is_not_degraded(self) -> None:
        plan = FaultPlan(
            seed=0, faults=(CrashFault(client_id=0, start_round=0),)
        )
        trainer = _trainer(
            plan=plan,
            resilience=ResilienceConfig(min_quorum=3, resample_crashed=False),
            sampler=FixedSampler(_N_CLIENTS, [0, 1, 2, 3]),
        )
        record = trainer.run_round()
        assert not record.degraded
        assert len(record.aggregated) == 3

    def test_rounds_still_count_under_degradation(self) -> None:
        trainer = _trainer(
            plan=self._all_crash_plan(start_round=0),
            resilience=ResilienceConfig(min_quorum=1),
            n_rounds=3,
        )
        history = trainer.run()
        assert len(history) == 3
        assert trainer.coordinator.rounds_completed == 3
        assert all(r.degraded for r in history)


class TestNonFiniteRejection:
    def _poisoned_updates(self) -> list[LocalUpdate]:
        good = LocalUpdate(
            client_id=0,
            parameters=np.ones(_CONFIG.n_parameters),
            n_samples=10,
            epochs=1,
            gradient_steps=1,
            final_local_loss=0.5,
        )
        bad = LocalUpdate(
            client_id=1,
            parameters=np.full(_CONFIG.n_parameters, np.nan),
            n_samples=10,
            epochs=1,
            gradient_steps=1,
            final_local_loss=0.5,
        )
        return [good, bad]

    def test_coordinator_guard_raises_typed_error(self) -> None:
        coordinator = Coordinator(_CONFIG)
        with pytest.raises(NonFiniteUpdateError) as excinfo:
            coordinator.aggregate(self._poisoned_updates())
        assert excinfo.value.client_ids == (1,)
        # The poisoned batch must not have touched the global model.
        assert np.all(np.isfinite(coordinator.global_parameters))
        assert coordinator.rounds_completed == 0

    def test_trainer_filters_corrupted_uploads_before_aggregation(self) -> None:
        observer = Observer()
        plan = FaultPlan(
            seed=0,
            faults=(CorruptionFault(client_id=1, probability=1.0),),
        )
        trainer = _trainer(
            plan=plan,
            resilience=ResilienceConfig(),
            sampler=FixedSampler(_N_CLIENTS, [0, 1, 2, 3]),
            observer=observer,
        )
        record = trainer.run_round()
        assert 1 in record.participants
        assert 1 not in record.aggregated
        assert trainer.last_resilience_report.corrupted == (1,)
        assert observer.counter("fl.nonfinite_rejected").value == 1
        assert np.all(np.isfinite(trainer.coordinator.global_parameters))


class TestIndependentStreams:
    def test_straggler_faults_do_not_change_aggregation(self) -> None:
        # Stragglers only slow clients down; with no deadline the round
        # outcome must be bit-identical to the fault-free run (their
        # draws come from dedicated streams, not the sampler's).
        plan = FaultPlan(
            seed=5,
            faults=tuple(
                StragglerFault(client_id=c, start_round=0, slowdown=4.0)
                for c in range(_N_CLIENTS)
            ),
        )
        faulted = _trainer(plan=plan, n_rounds=4)
        plain = _trainer(n_rounds=4)
        assert faulted.run().to_records() == plain.run().to_records()

    def test_burst_loss_does_not_perturb_sampling(self) -> None:
        # Burst-loss channels draw from per-client streams; which clients
        # the sampler picks each round must not depend on the plan.
        plan = FaultPlan(
            seed=5,
            faults=tuple(
                BurstLossFault(client_id=c, loss_bad=0.9)
                for c in range(_N_CLIENTS)
            ),
        )
        faulted = _trainer(
            plan=plan, resilience=ResilienceConfig(), n_rounds=4
        )
        plain = _trainer(n_rounds=4)
        faulted.run()
        plain.run()
        assert [r.participants for r in faulted.history.records] == [
            r.participants for r in plain.history.records
        ]
