"""Unit tests for the runtime fault injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import (
    BatteryFault,
    BurstLossFault,
    CorruptionFault,
    CrashFault,
    FaultPlan,
    StragglerFault,
)
from repro.obs import Observer


def _injector(*faults, n_clients: int = 8, seed: int = 0, observer=None):
    return FaultInjector(
        FaultPlan(seed=seed, faults=tuple(faults)), n_clients, observer=observer
    )


class TestValidation:
    def test_rejects_plan_exceeding_population(self) -> None:
        with pytest.raises(ValueError, match="population"):
            _injector(CrashFault(client_id=9, start_round=0), n_clients=8)

    def test_rejects_duplicate_burst_fault(self) -> None:
        with pytest.raises(ValueError, match="more than one burst-loss"):
            _injector(
                BurstLossFault(client_id=1),
                BurstLossFault(client_id=1, loss_bad=0.5),
            )

    def test_rejects_duplicate_battery_fault(self) -> None:
        with pytest.raises(ValueError, match="more than one battery"):
            _injector(
                BatteryFault(client_id=1, capacity_j=5.0),
                BatteryFault(client_id=1, capacity_j=9.0),
            )


class TestAvailability:
    def test_crash_window(self) -> None:
        injector = _injector(CrashFault(client_id=2, start_round=1, end_round=3))
        assert injector.available(2, 0)
        assert not injector.available(2, 1)
        assert not injector.available(2, 2)
        assert injector.available(2, 3)
        # Unaffected clients are always available.
        assert injector.available(0, 1)

    def test_crashed_emits_counter(self) -> None:
        observer = Observer()
        injector = _injector(
            CrashFault(client_id=2, start_round=0), observer=observer
        )
        assert injector.crashed(2, 0)
        assert not injector.crashed(3, 0)
        assert observer.counter("fault.injected", kind="crash").value == 1


class TestStragglers:
    def test_slowdown_takes_max_over_active_faults(self) -> None:
        injector = _injector(
            StragglerFault(client_id=1, start_round=0, slowdown=2.0),
            StragglerFault(client_id=1, start_round=0, slowdown=5.0),
        )
        assert injector.slowdown(1, 0) == 5.0
        assert injector.slowdown(0, 0) == 1.0


class TestCorruption:
    def test_always_corrupts_at_probability_one(self) -> None:
        injector = _injector(CorruptionFault(client_id=0, probability=1.0))
        fault = injector.corrupts(0, 0)
        assert fault is not None
        corrupted = injector.corrupt_payload(np.ones(4), fault)
        assert np.isnan(corrupted).all()

    def test_inf_mode(self) -> None:
        injector = _injector(CorruptionFault(client_id=0, mode="inf"))
        fault = injector.corrupts(0, 0)
        corrupted = injector.corrupt_payload(np.ones(4), fault)
        assert np.isinf(corrupted).all()

    def test_draw_is_call_order_independent(self) -> None:
        # The per-(client, round) substream makes the corruption decision
        # a pure function of (plan seed, client, round): consuming other
        # rounds first must not change any answer.
        make = lambda: _injector(  # noqa: E731
            CorruptionFault(client_id=0, probability=0.5), seed=42
        )
        forward = [make().corrupts(0, t) is not None for t in range(10)]
        backward_injector = make()
        backward = [
            backward_injector.corrupts(0, t) is not None
            for t in reversed(range(10))
        ]
        assert forward == list(reversed(backward))

    def test_payload_corruption_does_not_mutate_input(self) -> None:
        injector = _injector(CorruptionFault(client_id=0))
        original = np.ones(4)
        injector.corrupt_payload(original, injector.corrupts(0, 0))
        np.testing.assert_array_equal(original, np.ones(4))


class TestBurstChannels:
    def test_loss_model_only_within_window(self) -> None:
        injector = _injector(
            BurstLossFault(client_id=3, start_round=2, end_round=4)
        )
        assert injector.upload_loss_model(3, 1) is None
        assert injector.upload_loss_model(3, 2) is not None
        assert injector.upload_loss_model(3, 4) is None
        assert injector.upload_loss_model(0, 2) is None

    def test_channel_rng_requires_declared_fault(self) -> None:
        injector = _injector(BurstLossFault(client_id=3))
        injector.channel_rng(3)
        with pytest.raises(KeyError):
            injector.channel_rng(0)


class TestBatteries:
    def test_depletion_kills_from_next_round(self) -> None:
        injector = _injector(
            BatteryFault(client_id=1, capacity_j=10.0, per_round_j=6.0)
        )
        assert injector.available(1, 0)
        injector.note_participation(1, 0)  # 6 J spent, 4 J left
        assert injector.available(1, 1)
        injector.note_participation(1, 1)  # brown-out
        assert not injector.available(1, 2)
        assert injector.battery(1).depleted

    def test_measured_energy_overrides_nominal(self) -> None:
        injector = _injector(
            BatteryFault(client_id=1, capacity_j=10.0, per_round_j=1.0)
        )
        injector.note_participation(1, 0, energy_j=10.0)
        assert not injector.available(1, 1)

    def test_initial_fraction(self) -> None:
        injector = _injector(
            BatteryFault(
                client_id=1, capacity_j=10.0, initial_fraction=0.5, per_round_j=1.0
            )
        )
        assert injector.battery(1).state_of_charge == pytest.approx(0.5)

    def test_depletion_emits_event(self) -> None:
        observer = Observer()
        injector = _injector(
            BatteryFault(client_id=1, capacity_j=1.0, per_round_j=2.0),
            observer=observer,
        )
        injector.note_participation(1, 0)
        kinds = [e.fields["kind"] for e in observer.events]
        assert "battery_depleted" in kinds
