"""End-to-end fault-injection acceptance test on the simulated testbed.

One seeded run injects three fault kinds (crash blackout, straggler,
bursty links) into the hardware prototype.  The run must complete
without raising, survive a two-round total blackout via quorum fallback
(degraded rounds), still reach the target accuracy, report the failure
cost through the observer, and be bit-identical when repeated.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.faults.models import (
    BurstLossFault,
    CrashFault,
    FaultPlan,
    StragglerFault,
)
from repro.faults.policies import ResilienceConfig, RetryPolicy
from repro.fl.sgd import SGDConfig
from repro.hardware.prototype import (
    HardwarePrototype,
    PrototypeConfig,
    PrototypeResult,
)
from repro.obs import Observer

pytestmark = pytest.mark.fault_injection

_TARGET_ACCURACY = 0.75

# Three fault kinds: a total two-round blackout (every server down in
# rounds [1, 3) — no replacement pool, so the quorum cannot be met), a
# permanent straggler, and bursty uplinks on three servers.
_PLAN = FaultPlan(
    seed=21,
    faults=(
        *(CrashFault(client_id=c, start_round=1, end_round=3) for c in range(8)),
        StragglerFault(client_id=1, start_round=0, slowdown=3.0),
        *(
            BurstLossFault(
                client_id=c, p_enter_bad=0.3, p_exit_bad=0.4, loss_bad=0.85
            )
            for c in (2, 5, 7)
        ),
    ),
)

_RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(max_retries=3),
    upload_timeout_s=30.0,
    round_deadline_s=120.0,
    min_quorum=2,
)


def _run() -> tuple[PrototypeResult, Observer]:
    train = generate_synthetic_mnist(800, seed=0)
    test = generate_synthetic_mnist(200, seed=1)
    config = PrototypeConfig(
        n_servers=8, sgd=SGDConfig(learning_rate=0.05, decay=0.995), seed=0
    )
    observer = Observer()
    prototype = HardwarePrototype(train, test, config, observer=observer)
    result = prototype.run(
        participants=3,
        epochs=20,
        n_rounds=60,
        target_accuracy=_TARGET_ACCURACY,
        fault_plan=_PLAN,
        resilience=_RESILIENCE,
    )
    return result, observer


@pytest.fixture(scope="module")
def faulted_run() -> tuple[PrototypeResult, Observer]:
    return _run()


class TestAcceptance:
    def test_reaches_target_accuracy_despite_faults(self, faulted_run) -> None:
        result, _ = faulted_run
        assert result.history.rounds_to_accuracy(_TARGET_ACCURACY) is not None
        assert result.history.final_accuracy() >= _TARGET_ACCURACY

    def test_blackout_rounds_degrade_instead_of_crashing(
        self, faulted_run
    ) -> None:
        result, _ = faulted_run
        degraded = [r.round_index for r in result.history.records if r.degraded]
        assert degraded == [1, 2]
        assert result.degraded_rounds == 2
        # Degraded rounds carried the model forward: accuracy unchanged.
        accs = result.history.accuracies
        assert accs[1] == accs[0] and accs[2] == accs[0]

    def test_all_three_fault_kinds_fired(self, faulted_run) -> None:
        _, observer = faulted_run
        kinds = {
            e.fields["kind"]
            for e in observer.events
            if e.category == "fault.injected"
        }
        assert {"crash", "straggler", "burst_loss"} <= kinds

    def test_failure_cost_reported_through_observer(self, faulted_run) -> None:
        result, observer = faulted_run
        assert observer.metrics.sum_values("fl.retries") > 0
        assert observer.metrics.sum_values("fl.rounds_degraded") == 2
        assert observer.metrics.sum_values("energy.wasted_j") > 0
        assert observer.metrics.sum_values("energy.wasted_j") == pytest.approx(
            result.wasted_energy_j
        )
        assert 0 < result.wasted_fraction < 1

    def test_bit_identical_across_runs(self, faulted_run) -> None:
        first, _ = faulted_run
        second, _ = _run()
        assert first.history.to_records() == second.history.to_records()
        assert first.total_energy_j == second.total_energy_j
        assert first.wasted_energy_j == second.wasted_energy_j
        assert first.wall_clock_s == second.wall_clock_s
