"""Feature-interaction integration tests.

Each production feature (FedProx, over-selection, compression, dropout,
heterogeneous hardware, non-iid data) is unit-tested in isolation; these
tests run them *together* on the testbed, as a deployment would, and
check the composite system still behaves sanely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.fl.compression import ErrorFeedback, TopKCompressor, UniformQuantizer
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_dirichlet
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.hardware.raspberry_pi import PiTimingConfig


@pytest.fixture(scope="module")
def data():
    return load_synthetic_mnist(n_train=800, n_test=200, seed=0)


class TestKitchenSinkTrainer:
    def test_all_features_together(self, data) -> None:
        """FedProx + over-selection + compression + dropout, non-iid data."""
        train, test = data
        rng = np.random.default_rng(0)
        partitions = partition_dirichlet(train, 8, alpha=0.3, rng=rng)
        model = LogisticRegressionConfig(l2=1e-3)
        clients = build_clients(partitions, model)
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=40,
                participants_per_round=3,
                local_epochs=5,
                sgd=SGDConfig(learning_rate=0.05, decay=0.995),
                dropout_probability=0.1,
                proximal_mu=0.1,
                overselection=2,
                seed=1,
            ),
            train_eval=train,
            test_eval=test,
            update_compressor=UniformQuantizer(8),
        )
        history = trainer.run()
        assert history.final_loss() < history.losses[0]
        assert history.final_accuracy() > 0.5
        for record in history.records:
            assert len(record.participants) == 5
            assert len(record.aggregated) <= 3
        assert trainer.total_upload_bytes > 0


class TestKitchenSinkPrototype:
    def test_jittery_heterogeneous_compressed_overselected(self, data) -> None:
        train, test = data
        config = PrototypeConfig(
            n_servers=8,
            timing=PiTimingConfig(jitter_fraction=0.2),
            heterogeneity=0.25,
            seed=0,
        )
        prototype = HardwarePrototype(train, test, config)
        result = prototype.run(
            participants=3,
            epochs=10,
            n_rounds=20,
            overselection=2,
            update_compressor=ErrorFeedback(TopKCompressor(0.2)),
        )
        assert result.rounds == 20
        assert result.total_energy_j > 0
        assert result.wall_clock_s > 0
        assert result.history.final_loss() < result.history.losses[0]
        # Over-selected energy exceeds a plain run of the same shape.
        plain = prototype.run(participants=3, epochs=10, n_rounds=20)
        assert result.total_energy_j > plain.total_energy_j * 0.9

    def test_deterministic_composite_run(self, data) -> None:
        train, test = data
        config = PrototypeConfig(
            n_servers=6, heterogeneity=0.2, seed=7
        )

        def run():
            prototype = HardwarePrototype(train, test, config)
            return prototype.run(
                participants=2,
                epochs=5,
                n_rounds=8,
                update_compressor=UniformQuantizer(8),
            )

        a, b = run(), run()
        np.testing.assert_allclose(a.energy_per_round_j, b.energy_per_round_j)
        np.testing.assert_array_equal(a.history.losses, b.history.losses)


class TestPlannerOnComposite:
    def test_plan_from_heterogeneous_compressed_system(self, data) -> None:
        """Calibrate-and-plan still works when the system uses extensions."""
        from repro.core.calibration import GapObservation, fit_convergence_constants
        from repro.core.planner import EnergyPlanner

        train, test = data
        config = PrototypeConfig(n_servers=8, heterogeneity=0.2, seed=0)
        prototype = HardwarePrototype(train, test, config)
        target = 0.72
        observations = []
        for k, e in ((2, 5), (8, 5), (2, 20), (8, 20), (1, 60)):
            run = prototype.run(
                participants=k,
                epochs=e,
                n_rounds=100,
                target_accuracy=target,
                update_compressor=UniformQuantizer(8),
            )
            if run.reached_target:
                observations.append(GapObservation(run.rounds, e, k, gap=0.5))
        if len(observations) < 3:
            pytest.skip("too few pilots converged at this tiny scale")
        bound = fit_convergence_constants(observations)
        energy = prototype.heterogeneous_energy_params().mean()
        planner = EnergyPlanner(bound=bound, energy=energy, n_servers=8)
        plan = planner.plan(epsilon=0.5)
        assert 1 <= plan.participants <= 8
        assert plan.epochs >= 1
        assert plan.predicted_energy > 0
