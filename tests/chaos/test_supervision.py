"""Chaos acceptance: the supervised runtime under crash/hang/kill/corrupt.

The acceptance bar for supervision is *degraded completion with healthy
bytes*: an 8-unit ``--jobs 4`` campaign seeded with saboteurs must end
with the crash-once unit retried to success, the unrecoverable units
quarantined behind durable failure records, and every healthy unit's
artifacts byte-identical to a fault-free sequential run — chaos may
decide *whether* a unit completes, never *what* it computes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    RunSpec,
)
from repro.faults import ChaosPlan, RetryPolicy, Saboteur
from repro.obs.observer import Observer
from repro.perf.scheduler import SupervisionPolicy

pytestmark = pytest.mark.chaos_smoke

_RUNTIME_DIRS = ("quarantine", "heartbeats", "spools")


def _artifact_digest(root: Path) -> dict[str, str]:
    """SHA-256 of every *artifact* file by relative path.

    Runtime state — failure records, heartbeats, telemetry spools, the
    lock file — is excluded: those carry wall times, pids and
    tracebacks, so only ``units/``, the manifest and the campaign
    binding participate in byte-identity claims.
    """
    digest = {}
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.name == ".lock":
            continue
        relative = path.relative_to(root)
        if relative.parts[0] in _RUNTIME_DIRS:
            continue
        digest[str(relative)] = hashlib.sha256(path.read_bytes()).hexdigest()
    return digest


def _unit_digest(store: ArtifactStore, key: str) -> dict[str, str]:
    """SHA-256 of one unit directory's files by name."""
    unit_dir = store.unit_dir(key)
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(unit_dir.iterdir())
        if path.is_file()
    }


def _keys_by_token(runner: CampaignRunner) -> dict[str, str]:
    """Map each unit's ``K?-E?-s?`` grid token to its content key."""
    mapping = {}
    for spec in runner.units:
        # "chaos-grid/K1-E1-s0-sequential-f.base-r.base" -> "K1-E1-s0"
        token = "-".join(spec.name.split("/", 1)[1].split("-")[:3])
        mapping[token] = spec.key()
    return mapping


class TestParallelChaosCampaign:
    def test_eight_unit_campaign_survives_the_full_saboteur_grid(
        self,
        tmp_path,
        chaos_campaign: CampaignSpec,
        fast_supervision: SupervisionPolicy,
    ) -> None:
        # The acceptance scenario: four healthy units, one crash-once,
        # and three unrecoverables (hang, SIGKILL, corrupt-write).
        plan = ChaosPlan.build(
            {
                "K1-E1-s0": Saboteur(kind="crash", times=1),
                "K1-E2-s0": Saboteur(kind="hang", times=-1, hang_s=60.0),
                "K2-E1-s0": Saboteur(kind="kill", times=-1),
                "K2-E2-s0": Saboteur(kind="corrupt", times=-1),
            }
        )
        store = ArtifactStore(tmp_path / "chaos")
        observer = Observer()
        runner = CampaignRunner(
            chaos_campaign, store, observer=observer, chaos=plan
        )
        summary = runner.run(jobs=4, supervision=fast_supervision)

        # Degraded completion: the pass neither raised nor gave up.
        assert not summary.interrupted
        assert summary.degraded
        assert summary.quarantined == 3
        assert summary.executed == 5  # four healthy + the crash-once
        assert len(store.completed_keys()) == 5
        assert store.verify() == []

        keys = _keys_by_token(runner)
        # The crash-once unit burned exactly one attempt and recovered.
        crash_key = keys["K1-E1-s0"]
        assert crash_key in store.completed_keys()
        assert store.attempts_used(crash_key) == 1
        records = store.failure_records(crash_key)
        assert len(records) == 1
        assert records[0]["quarantined"] is False
        assert "ChaosError" in records[0]["error"]

        # Each unrecoverable burned the full budget and left a terminal
        # failure record attributing the right kind of death.
        expected_kinds = {
            "K1-E2-s0": "timeout",
            "K2-E1-s0": "worker-lost",
            "K2-E2-s0": "error",
        }
        assert store.quarantined_keys() == {
            keys[token] for token in expected_kinds
        }
        for token, kind in expected_kinds.items():
            records = store.failure_records(keys[token])
            assert len(records) == fast_supervision.max_attempts
            assert records[-1]["quarantined"] is True
            assert records[-1]["kind"] == kind
        # The corrupt-write unit failed via verify-after-write, and its
        # poisoned bytes were evicted out of units/ but kept around.
        corrupt_records = store.failure_records(keys["K2-E2-s0"])
        assert "UnitVerificationError" in corrupt_records[-1]["error"]
        evicted = store.quarantine_dir / keys["K2-E2-s0"] / "artifacts"
        assert (evicted / "history.json").exists()

        # Supervision machinery actually engaged: SIGKILLs broke the
        # pool (rebuilt), and the watchdog reclaimed the hung worker.
        assert observer.metrics.value("scheduler.pool_rebuilds") >= 1
        assert observer.metrics.value("watchdog.timeouts") >= 1

        # Healthy bytes: every completed unit — including the retried
        # crash-once — is byte-identical to a fault-free sequential run.
        reference = ArtifactStore(tmp_path / "reference")
        CampaignRunner(chaos_campaign, reference).run()
        for key in store.completed_keys():
            assert _unit_digest(store, key) == _unit_digest(reference, key)


class TestSequentialSupervision:
    def _solo(self, tiny_spec: RunSpec) -> CampaignSpec:
        return CampaignSpec(name="solo", base=tiny_spec)

    def test_crash_once_retries_to_byte_identical_store(
        self, tmp_path, tiny_spec: RunSpec, fast_supervision
    ) -> None:
        campaign = self._solo(tiny_spec)
        chaos = ChaosPlan.build({"K2-E2": Saboteur(kind="crash", times=1)})
        store = ArtifactStore(tmp_path / "chaos")
        summary = CampaignRunner(campaign, store, chaos=chaos).run(
            supervision=fast_supervision
        )
        assert summary.executed == 1
        assert not summary.degraded
        (outcome,) = summary.outcomes
        assert outcome.attempts == 2  # one failure + the success

        key = campaign.expand()[0].key()
        assert store.attempts_used(key) == 1
        (record,) = store.failure_records(key)
        assert record["quarantined"] is False
        assert record["kind"] == "error"

        reference = ArtifactStore(tmp_path / "reference")
        CampaignRunner(campaign, reference).run()
        assert _artifact_digest(store.root) == _artifact_digest(
            reference.root
        )

    def test_unrecoverable_crash_is_quarantined_then_healable(
        self, tmp_path, tiny_spec: RunSpec, fast_supervision
    ) -> None:
        campaign = self._solo(tiny_spec)
        chaos = ChaosPlan.build({"solo": Saboteur(kind="crash", times=-1)})
        store = ArtifactStore(tmp_path / "store")
        summary = CampaignRunner(campaign, store, chaos=chaos).run(
            supervision=fast_supervision
        )
        assert summary.degraded
        assert summary.quarantined == 1
        assert summary.executed == 0
        key = campaign.expand()[0].key()
        assert store.attempts_used(key) == fast_supervision.max_attempts
        assert store.quarantined_keys() == {key}

        # A plain re-run skips the quarantined unit; granting a fresh
        # budget (with the chaos gone) heals the campaign completely.
        again = CampaignRunner(campaign, store).run(
            supervision=fast_supervision
        )
        assert again.executed == 0 and again.quarantined == 1
        healed = CampaignRunner(campaign, store).run(
            supervision=fast_supervision, retry_quarantined=True
        )
        assert healed.executed == 1 and not healed.degraded
        reference = ArtifactStore(tmp_path / "reference")
        CampaignRunner(campaign, reference).run()
        assert _artifact_digest(store.root) == _artifact_digest(
            reference.root
        )


class TestKillAndResumeDeterminism:
    def test_sigkill_mid_retry_resumes_to_identical_bytes_and_attempts(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        # A crash-twice saboteur under a ~30s backoff gives the parent a
        # wide window: wait for the first durable failure record, then
        # SIGKILL the whole campaign process mid-backoff.  The resumed
        # run must continue attempt numbering from the failure trail and
        # land the exact bytes an uninterrupted run produces.
        killed_root = tmp_path / "killed"
        script = textwrap.dedent(
            """
            import dataclasses
            import sys

            from repro.campaign import ArtifactStore, CampaignRunner
            from repro.campaign import CampaignSpec, RunSpec
            from repro.campaign.runner import DEFAULT_SUPERVISION
            from repro.faults import ChaosPlan, RetryPolicy, Saboteur

            spec = RunSpec(
                name="tiny", n_train=160, n_test=80, n_servers=4,
                participants=2, epochs=2, max_rounds=3,
                train_to_target=False,
            )
            campaign = CampaignSpec(name="resume-chaos", base=spec)
            chaos = ChaosPlan.build(
                {"K2-E2": Saboteur(kind="crash", times=2)}
            )
            supervision = dataclasses.replace(
                DEFAULT_SUPERVISION,
                retry=RetryPolicy(
                    max_retries=3, base_backoff_s=30.0, max_backoff_s=40.0
                ),
            )
            CampaignRunner(
                campaign, ArtifactStore(sys.argv[1]), chaos=chaos
            ).run(supervision=supervision)
            """
        )
        script_path = tmp_path / "campaign_script.py"
        script_path.write_text(script)
        env = {**os.environ, "PYTHONPATH": "/root/repo/src"}
        process = subprocess.Popen(
            [sys.executable, str(script_path), str(killed_root)], env=env
        )
        try:
            campaign = CampaignSpec(name="resume-chaos", base=tiny_spec)
            key = campaign.expand()[0].key()
            record_path = killed_root / "quarantine" / key / "attempt-1.json"
            deadline = time.monotonic() + 120
            while not record_path.exists():
                assert time.monotonic() < deadline, "first attempt never failed"
                assert process.poll() is None, "campaign exited prematurely"
                time.sleep(0.05)
            process.send_signal(signal.SIGKILL)
        finally:
            process.kill()
            process.wait(timeout=30)

        killed = ArtifactStore(killed_root)
        assert killed.completed_keys() == set()
        assert killed.attempts_used(key) == 1

        # Resume (fast backoff — backoff never reaches the artifacts):
        # the saboteur still owes one crash, charged as attempt 2.
        chaos = ChaosPlan.build({"K2-E2": Saboteur(kind="crash", times=2)})
        supervision = SupervisionPolicy(
            retry=RetryPolicy(
                max_retries=3, base_backoff_s=0.01, max_backoff_s=0.05
            )
        )
        resumed = CampaignRunner(campaign, killed, chaos=chaos).run(
            supervision=supervision
        )
        assert resumed.executed == 1
        (outcome,) = resumed.outcomes
        assert outcome.attempts == 3

        # Uninterrupted reference with the same saboteur budget.
        reference_root = tmp_path / "reference"
        reference = ArtifactStore(reference_root)
        CampaignRunner(campaign, reference, chaos=chaos).run(
            supervision=supervision
        )
        assert _artifact_digest(killed_root) == _artifact_digest(
            reference_root
        )
        # Identical durable attempt trails: same record files, same
        # attempt numbers, same failure kinds.
        assert killed.attempts_used(key) == reference.attempts_used(key) == 2
        killed_trail = [
            (r["attempt"], r["kind"]) for r in killed.failure_records(key)
        ]
        reference_trail = [
            (r["attempt"], r["kind"]) for r in reference.failure_records(key)
        ]
        assert killed_trail == reference_trail == [(1, "error"), (2, "error")]


class TestSigtermDrain:
    def test_sigterm_checkpoints_like_ctrl_c_and_resumes_cleanly(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        # A campaign process that SIGTERMs itself as soon as the first
        # unit lands: the handler must convert the signal into the
        # graceful drain-and-checkpoint path (exit 0, consistent store),
        # and a resumed run must finish the grid byte-identically.
        store_root = tmp_path / "store"
        script = textwrap.dedent(
            """
            import json
            import os
            import signal
            import sys
            import threading
            import time

            from repro.campaign import ArtifactStore, CampaignRunner
            from repro.campaign import CampaignSpec, RunSpec

            spec = RunSpec(
                name="tiny", n_train=160, n_test=80, n_servers=4,
                participants=2, epochs=2, max_rounds=3,
                train_to_target=False,
            )
            campaign = CampaignSpec(
                name="drain", base=spec, participants=(1, 2), epochs=(1, 2)
            )
            store = ArtifactStore(sys.argv[1])

            runner = CampaignRunner(campaign, store)

            def preempt():
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    try:
                        done = store.completed_keys()
                    except Exception:
                        done = set()
                    if done:
                        os.kill(os.getpid(), signal.SIGTERM)
                        return
                    time.sleep(0.01)

            threading.Thread(target=preempt, daemon=True).start()
            summary = runner.run()
            print(json.dumps({
                "executed": summary.executed,
                "interrupted": summary.interrupted,
            }))
            """
        )
        script_path = tmp_path / "drain_script.py"
        script_path.write_text(script)
        env = {**os.environ, "PYTHONPATH": "/root/repo/src"}
        completed = subprocess.run(
            [sys.executable, str(script_path), str(store_root)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        summary = json.loads(completed.stdout.strip().splitlines()[-1])
        assert summary["interrupted"] or summary["executed"] == 4

        # Whatever the drain checkpointed is consistent and resumable.
        store = ArtifactStore(store_root)
        assert store.verify() == []
        assert len(store.completed_keys()) >= 1
        campaign = CampaignSpec(
            name="drain", base=tiny_spec, participants=(1, 2), epochs=(1, 2)
        )
        resumed = CampaignRunner(campaign, store).run()
        assert len(store.completed_keys()) == 4
        assert resumed.executed + summary["executed"] == 4

        reference = ArtifactStore(tmp_path / "reference")
        CampaignRunner(campaign, reference).run()
        assert _artifact_digest(store_root) == _artifact_digest(
            reference.root
        )


class TestDoctor:
    def _grid(self, tiny_spec: RunSpec) -> CampaignSpec:
        return CampaignSpec(
            name="doctored", base=tiny_spec, participants=(1, 2), epochs=(1, 2)
        )

    def test_repair_rebuilds_a_deleted_manifest_without_retraining(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        campaign = self._grid(tiny_spec)
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(campaign, store).run()
        index_path = store.root / store.index_filename
        original = store.index_digest()
        store.close()
        index_path.unlink()

        diagnosis = store.doctor(repair=False)
        assert not diagnosis.healthy
        assert any(
            f"{store.index_filename} missing" in p for p in diagnosis.problems
        )
        assert index_path.exists() is False  # diagnosis never mutates

        report = store.doctor(repair=True)
        assert report.healthy
        assert len(report.adopted) == 4
        # The rebuilt index is logically identical to the lost one.
        assert store.index_digest() == original
        # Zero retraining: the adopted store satisfies every resume check.
        summary = CampaignRunner(campaign, store).run()
        assert summary.executed == 0
        assert summary.skipped == 4

    def test_repair_evicts_corrupt_unit_and_next_run_retrains_it(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        campaign = self._grid(tiny_spec)
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(campaign, store).run()
        victim = campaign.expand()[0].key()
        history = store.unit_dir(victim) / "history.json"
        history.write_bytes(b"\x00" * len(history.read_bytes()))
        assert store.verify() != []

        report = store.doctor(repair=True)
        assert report.healthy
        assert report.quarantined == [victim]
        assert (
            store.quarantine_dir / victim / "artifacts" / "history.json"
        ).exists()
        (record,) = store.failure_records(victim)
        assert record["kind"] == "corrupt-artifact"
        # The eviction is non-terminal: no quarantine skip, so the next
        # pass retrains exactly the evicted unit.
        assert store.quarantined_keys() == set()
        summary = CampaignRunner(campaign, store).run()
        assert summary.executed == 1
        assert summary.skipped == 3
        assert store.verify() == []

        reference = ArtifactStore(tmp_path / "reference")
        CampaignRunner(campaign, reference).run()
        for key in reference.completed_keys():
            assert _unit_digest(store, key) == _unit_digest(reference, key)

    def test_repair_adopts_orphans_left_by_a_crash_window(
        self, tmp_path, tiny_spec: RunSpec
    ) -> None:
        campaign = self._grid(tiny_spec)
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(campaign, store).run()
        # Fabricate the files-written/index-lost crash shape for one
        # unit by dropping its index entry.
        victim = campaign.expand()[2].key()
        original = store.index_digest()
        store._index_delete(victim)
        assert store.orphan_unit_keys() == [victim]
        assert any("orphan" in problem for problem in store.verify())

        report = store.doctor(repair=True)
        assert report.healthy
        assert report.adopted == [victim]
        assert store.index_digest() == original
        assert store.verify() == []

    def test_doctor_refuses_a_store_without_campaign_binding(
        self, tmp_path
    ) -> None:
        report = ArtifactStore(tmp_path / "empty").doctor(repair=True)
        assert not report.healthy
        assert any("not recoverable" in p for p in report.problems)
