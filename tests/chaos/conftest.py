"""Shared fixtures for the chaos acceptance suite: tiny, fast units."""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign import CampaignSpec, RunSpec
from repro.campaign.runner import DEFAULT_SUPERVISION
from repro.faults import RetryPolicy
from repro.perf.scheduler import SupervisionPolicy


@pytest.fixture()
def tiny_spec() -> RunSpec:
    """A fixed-budget unit small enough for byte-level identity tests."""
    return RunSpec(
        name="tiny",
        n_train=160,
        n_test=80,
        n_servers=4,
        participants=2,
        epochs=2,
        max_rounds=3,
        train_to_target=False,
    )


@pytest.fixture()
def chaos_campaign(tiny_spec: RunSpec) -> CampaignSpec:
    """A 2x2x2 (K, E, seed) grid — eight units, the acceptance shape."""
    return CampaignSpec(
        name="chaos-grid",
        base=tiny_spec,
        participants=(1, 2),
        epochs=(1, 2),
        seeds=(0, 1),
    )


@pytest.fixture()
def fast_supervision() -> SupervisionPolicy:
    """Supervision tuned for tests: tight budget, millisecond backoffs.

    ``unit_timeout_s`` is generous against a loaded CI box (a healthy
    tiny unit trains in well under a second) but short enough that a
    hung saboteur is reclaimed twice within the test's patience.
    """
    return dataclasses.replace(
        DEFAULT_SUPERVISION,
        retry=RetryPolicy(
            max_retries=1, base_backoff_s=0.05, max_backoff_s=0.2
        ),
        unit_timeout_s=6.0,
        kill_grace_s=2.0,
    )
