"""Shared fixtures for the test suite.

Dataset generation and prototype construction are comparatively slow, so
the common small instances are session-scoped.  Tests must not mutate
fixture state (datasets are immutable; trainers are built per test).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Derandomised hypothesis profile: property tests explore the same example
# sequence on every run, so the suite is reproducible in CI.
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.fl.model import LogisticRegressionConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """600 synthetic-MNIST samples (balanced, shuffled)."""
    return generate_synthetic_mnist(600, seed=7)


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """60 synthetic-MNIST samples for the fastest unit tests."""
    return generate_synthetic_mnist(60, seed=11)


@pytest.fixture(scope="session")
def model_config() -> LogisticRegressionConfig:
    return LogisticRegressionConfig()


@pytest.fixture()
def default_bound() -> ConvergenceBound:
    """Plausible convergence constants used across optimizer tests."""
    return ConvergenceBound(a0=5.0, a1=0.02, a2=1e-4)


@pytest.fixture()
def default_energy() -> EnergyParams:
    """Plausible energy constants (paper-fitted c0/c1, nonzero rho/e_U)."""
    return EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000)


@pytest.fixture()
def default_objective(
    default_bound: ConvergenceBound, default_energy: EnergyParams
) -> EnergyObjective:
    return EnergyObjective(
        bound=default_bound, energy=default_energy, epsilon=0.05, n_servers=20
    )
