"""Tests for the FedProx proximal-term extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.client import EdgeServerClient
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_by_shards
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

_CONFIG = LogisticRegressionConfig(n_features=6, n_classes=3)


def _dataset(n: int = 60, seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    return Dataset(rng.normal(size=(n, 6)), rng.integers(0, 3, size=n), 3)


class TestClientProximal:
    def test_zero_mu_matches_plain_sgd(self) -> None:
        dataset = _dataset()
        a = EdgeServerClient(0, dataset, _CONFIG)
        b = EdgeServerClient(0, dataset, _CONFIG)
        start = np.zeros(_CONFIG.n_parameters)
        plain = a.train(start, epochs=5, learning_rate=0.2)
        prox0 = b.train(start, epochs=5, learning_rate=0.2, proximal_mu=0.0)
        np.testing.assert_allclose(plain.parameters, prox0.parameters)

    def test_proximal_term_anchors_to_global(self) -> None:
        dataset = _dataset()
        start = np.zeros(_CONFIG.n_parameters)
        weak = EdgeServerClient(0, dataset, _CONFIG).train(
            start, epochs=20, learning_rate=0.2, proximal_mu=0.0
        )
        strong = EdgeServerClient(0, dataset, _CONFIG).train(
            start, epochs=20, learning_rate=0.2, proximal_mu=5.0
        )
        # Stronger mu keeps the local model closer to the global one.
        assert np.linalg.norm(strong.parameters - start) < np.linalg.norm(
            weak.parameters - start
        )

    def test_monotone_in_mu(self) -> None:
        dataset = _dataset()
        start = np.zeros(_CONFIG.n_parameters)
        distances = []
        for mu in (0.0, 0.5, 2.0, 10.0):
            update = EdgeServerClient(0, dataset, _CONFIG).train(
                start, epochs=10, learning_rate=0.2, proximal_mu=mu
            )
            distances.append(np.linalg.norm(update.parameters - start))
        assert distances == sorted(distances, reverse=True)

    def test_rejects_negative_mu(self) -> None:
        client = EdgeServerClient(0, _dataset(), _CONFIG)
        with pytest.raises(ValueError, match="proximal_mu"):
            client.train(
                np.zeros(_CONFIG.n_parameters),
                epochs=1,
                learning_rate=0.1,
                proximal_mu=-0.1,
            )

    def test_proximal_with_minibatches(self) -> None:
        client = EdgeServerClient(0, _dataset(), _CONFIG)
        update = client.train(
            np.zeros(_CONFIG.n_parameters),
            epochs=2,
            learning_rate=0.1,
            sgd=SGDConfig(batch_size=20),
            proximal_mu=1.0,
        )
        assert update.gradient_steps == 6  # 3 batches x 2 epochs


class TestFederatedProximal:
    def _trainer(self, mu: float) -> FederatedTrainer:
        # Pathologically skewed shards: each client sees ~1 class.
        rng = np.random.default_rng(3)
        features = rng.normal(size=(300, 6))
        labels = np.repeat(np.arange(3), 100)
        features[np.arange(300), labels % 6] += 2.0  # separable structure
        train = Dataset(features, labels, 3)
        partitions = partition_by_shards(train, 6, 1, np.random.default_rng(4))
        clients = build_clients(partitions, _CONFIG)
        return FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=30,
                participants_per_round=2,
                local_epochs=10,
                proximal_mu=mu,
                sgd=SGDConfig(learning_rate=0.2, decay=1.0),
                seed=5,
            ),
            train_eval=train,
            test_eval=train,
        )

    def test_fedprox_config_validation(self) -> None:
        with pytest.raises(ValueError, match="proximal_mu"):
            FederatedConfig(
                n_rounds=1, participants_per_round=1, local_epochs=1, proximal_mu=-1.0
            )

    def test_fedprox_stabilises_skewed_training(self) -> None:
        plain = self._trainer(mu=0.0).run()
        prox = self._trainer(mu=0.5).run()
        # Under extreme skew with long local runs, the proximal term
        # damps the oscillations of the global loss trajectory.
        plain_swing = float(np.std(np.diff(plain.losses)))
        prox_swing = float(np.std(np.diff(prox.losses)))
        assert prox_swing < plain_swing

    def test_fedprox_still_learns(self) -> None:
        history = self._trainer(mu=0.5).run()
        assert history.final_loss() < history.losses[0]
        assert history.final_accuracy() > 0.5
