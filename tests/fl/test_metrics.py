"""Unit tests for the training history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.metrics import RoundRecord, TrainingHistory


def _record(t: int, loss: float, acc: float, epochs: int = 10) -> RoundRecord:
    return RoundRecord(
        round_index=t,
        train_loss=loss,
        test_accuracy=acc,
        participants=(0, 1),
        local_epochs=epochs,
        learning_rate=0.01,
    )


def _history(losses: list[float], accs: list[float], epochs: int = 10) -> TrainingHistory:
    history = TrainingHistory()
    for t, (loss, acc) in enumerate(zip(losses, accs)):
        history.append(_record(t, loss, acc, epochs))
    return history


class TestAppend:
    def test_records_in_order(self) -> None:
        history = _history([2.0, 1.0], [0.3, 0.6])
        assert len(history) == 2
        assert history[0].train_loss == 2.0
        assert history.records[1].test_accuracy == 0.6

    def test_rejects_gap_in_rounds(self) -> None:
        history = TrainingHistory()
        history.append(_record(0, 1.0, 0.5))
        with pytest.raises(ValueError, match="arrived after"):
            history.append(_record(2, 0.9, 0.6))

    def test_rejects_nonzero_first_round(self) -> None:
        with pytest.raises(ValueError, match="first record"):
            TrainingHistory().append(_record(3, 1.0, 0.5))


class TestSeries:
    def test_losses_and_accuracies_arrays(self) -> None:
        history = _history([2.0, 1.5, 1.0], [0.2, 0.5, 0.8])
        np.testing.assert_array_equal(history.losses, [2.0, 1.5, 1.0])
        np.testing.assert_array_equal(history.accuracies, [0.2, 0.5, 0.8])

    def test_final_and_best(self) -> None:
        history = _history([2.0, 1.0, 1.2], [0.2, 0.9, 0.7])
        assert history.final_loss() == 1.2
        assert history.final_accuracy() == 0.7
        assert history.best_accuracy() == 0.9

    def test_empty_history_raises(self) -> None:
        history = TrainingHistory()
        with pytest.raises(ValueError, match="empty"):
            history.final_loss()
        with pytest.raises(ValueError, match="empty"):
            history.final_accuracy()
        with pytest.raises(ValueError, match="empty"):
            history.best_accuracy()


class TestTargets:
    def test_rounds_to_accuracy_is_one_based(self) -> None:
        history = _history([3, 2, 1], [0.3, 0.6, 0.9])
        assert history.rounds_to_accuracy(0.6) == 2
        assert history.rounds_to_accuracy(0.25) == 1

    def test_rounds_to_accuracy_unreached(self) -> None:
        history = _history([3, 2], [0.3, 0.6])
        assert history.rounds_to_accuracy(0.99) is None

    def test_rounds_to_loss(self) -> None:
        history = _history([3, 2, 1], [0.3, 0.6, 0.9])
        assert history.rounds_to_loss(2.0) == 2
        assert history.rounds_to_loss(0.5) is None

    def test_rounds_to_accuracy_first_crossing(self) -> None:
        # Accuracy dips back below the target later; the first crossing
        # is what counts (matching how the paper reads its curves).
        history = _history([3, 2, 2, 1], [0.3, 0.8, 0.6, 0.9])
        assert history.rounds_to_accuracy(0.75) == 2

    def test_local_gradients_to_accuracy(self) -> None:
        history = _history([3, 2, 1], [0.3, 0.6, 0.9], epochs=20)
        # Reaches 0.6 at round 2 => 2 rounds x 20 epochs.
        assert history.local_gradient_rounds_to_accuracy(0.6) == 40
        assert history.local_gradient_rounds_to_accuracy(0.99) is None


class TestPlainDictSerialisation:
    def test_to_dict_emits_plain_types(self) -> None:
        record = _record(0, 1.5, 0.25)
        data = record.to_dict()
        assert data == {
            "round_index": 0,
            "train_loss": 1.5,
            "test_accuracy": 0.25,
            "participants": [0, 1],
            "local_epochs": 10,
            "learning_rate": 0.01,
            "aggregated": [0, 1],
            "degraded": False,
        }
        assert all(
            type(v) in (int, float, list, bool) for v in data.values()
        )

    def test_record_round_trip(self) -> None:
        record = RoundRecord(
            round_index=2,
            train_loss=0.5,
            test_accuracy=0.8,
            participants=(0, 1, 2),
            local_epochs=5,
            learning_rate=0.02,
            aggregated=(1, 2),
        )
        assert RoundRecord.from_dict(record.to_dict()) == record

    def test_from_dict_rejects_malformed(self) -> None:
        with pytest.raises(ValueError, match="malformed record"):
            RoundRecord.from_dict({"round_index": 0})

    def test_history_round_trip(self) -> None:
        history = _history([1.0, 0.5, 0.2], [0.3, 0.6, 0.9])
        restored = TrainingHistory.from_records(history.to_records())
        assert restored.records == history.records

    def test_to_records_length_and_order(self) -> None:
        history = _history([1.0, 0.5], [0.3, 0.6])
        records = history.to_records()
        assert [r["round_index"] for r in records] == [0, 1]


class TestSummary:
    def test_summary_aggregates(self) -> None:
        history = _history([1.0, 0.5, 0.7], [0.3, 0.9, 0.6], epochs=4)
        summary = history.summary()
        assert summary == {
            "rounds": 3,
            "final_loss": 0.7,
            "final_accuracy": 0.6,
            "best_accuracy": 0.9,
            "total_local_epochs": 12,
            "total_selections": 6,
            "degraded_rounds": 0,
        }

    def test_empty_summary_is_well_formed(self) -> None:
        summary = TrainingHistory().summary()
        assert summary["rounds"] == 0
        assert summary["final_loss"] is None
        assert summary["total_local_epochs"] == 0
