"""Unit tests for the training history."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.metrics import RoundRecord, TrainingHistory


def _record(t: int, loss: float, acc: float, epochs: int = 10) -> RoundRecord:
    return RoundRecord(
        round_index=t,
        train_loss=loss,
        test_accuracy=acc,
        participants=(0, 1),
        local_epochs=epochs,
        learning_rate=0.01,
    )


def _history(losses: list[float], accs: list[float], epochs: int = 10) -> TrainingHistory:
    history = TrainingHistory()
    for t, (loss, acc) in enumerate(zip(losses, accs)):
        history.append(_record(t, loss, acc, epochs))
    return history


class TestAppend:
    def test_records_in_order(self) -> None:
        history = _history([2.0, 1.0], [0.3, 0.6])
        assert len(history) == 2
        assert history[0].train_loss == 2.0
        assert history.records[1].test_accuracy == 0.6

    def test_rejects_gap_in_rounds(self) -> None:
        history = TrainingHistory()
        history.append(_record(0, 1.0, 0.5))
        with pytest.raises(ValueError, match="arrived after"):
            history.append(_record(2, 0.9, 0.6))

    def test_rejects_nonzero_first_round(self) -> None:
        with pytest.raises(ValueError, match="first record"):
            TrainingHistory().append(_record(3, 1.0, 0.5))


class TestSeries:
    def test_losses_and_accuracies_arrays(self) -> None:
        history = _history([2.0, 1.5, 1.0], [0.2, 0.5, 0.8])
        np.testing.assert_array_equal(history.losses, [2.0, 1.5, 1.0])
        np.testing.assert_array_equal(history.accuracies, [0.2, 0.5, 0.8])

    def test_final_and_best(self) -> None:
        history = _history([2.0, 1.0, 1.2], [0.2, 0.9, 0.7])
        assert history.final_loss() == 1.2
        assert history.final_accuracy() == 0.7
        assert history.best_accuracy() == 0.9

    def test_empty_history_raises(self) -> None:
        history = TrainingHistory()
        with pytest.raises(ValueError, match="empty"):
            history.final_loss()
        with pytest.raises(ValueError, match="empty"):
            history.final_accuracy()
        with pytest.raises(ValueError, match="empty"):
            history.best_accuracy()


class TestTargets:
    def test_rounds_to_accuracy_is_one_based(self) -> None:
        history = _history([3, 2, 1], [0.3, 0.6, 0.9])
        assert history.rounds_to_accuracy(0.6) == 2
        assert history.rounds_to_accuracy(0.25) == 1

    def test_rounds_to_accuracy_unreached(self) -> None:
        history = _history([3, 2], [0.3, 0.6])
        assert history.rounds_to_accuracy(0.99) is None

    def test_rounds_to_loss(self) -> None:
        history = _history([3, 2, 1], [0.3, 0.6, 0.9])
        assert history.rounds_to_loss(2.0) == 2
        assert history.rounds_to_loss(0.5) is None

    def test_rounds_to_accuracy_first_crossing(self) -> None:
        # Accuracy dips back below the target later; the first crossing
        # is what counts (matching how the paper reads its curves).
        history = _history([3, 2, 2, 1], [0.3, 0.8, 0.6, 0.9])
        assert history.rounds_to_accuracy(0.75) == 2

    def test_local_gradients_to_accuracy(self) -> None:
        history = _history([3, 2, 1], [0.3, 0.6, 0.9], epochs=20)
        # Reaches 0.6 at round 2 => 2 rounds x 20 epochs.
        assert history.local_gradient_rounds_to_accuracy(0.6) == 40
        assert history.local_gradient_rounds_to_accuracy(0.99) is None
