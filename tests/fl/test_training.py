"""Integration tests for the federated training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sampling import FixedSampler
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

_CONFIG = LogisticRegressionConfig(n_features=8, n_classes=3)


def _linear_task(n: int, seed: int = 0) -> Dataset:
    """A noisy linear 3-class task FedAvg can learn quickly.

    The ground-truth projection is drawn from a *fixed* stream so train
    and test sets (different ``seed``) share the same underlying task.
    """
    projection = np.random.default_rng(424242).normal(size=(8, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 8))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, 3)


def _trainer(
    n_samples: int = 300,
    n_clients: int = 6,
    **config_kwargs,
) -> FederatedTrainer:
    train = _linear_task(n_samples)
    test = _linear_task(100, seed=99)
    partitions = partition_iid(train, n_clients, np.random.default_rng(1))
    clients = build_clients(partitions, _CONFIG)
    defaults = dict(
        n_rounds=20,
        participants_per_round=3,
        local_epochs=2,
        sgd=SGDConfig(learning_rate=0.5, decay=1.0),
    )
    defaults.update(config_kwargs)
    return FederatedTrainer(
        clients=clients,
        config=FederatedConfig(**defaults),
        train_eval=train,
        test_eval=test,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_rounds": 0},
            {"participants_per_round": 0},
            {"local_epochs": 0},
            {"dropout_probability": 1.0},
            {"dropout_probability": -0.1},
            {"target_accuracy": 0.0},
            {"target_accuracy": 1.5},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        defaults = dict(n_rounds=5, participants_per_round=2, local_epochs=1)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            FederatedConfig(**defaults)

    def test_rejects_k_above_n(self) -> None:
        with pytest.raises(ValueError, match="exceeds the number"):
            _trainer(participants_per_round=100)


class TestTrainingLoop:
    def test_history_grows_per_round(self) -> None:
        trainer = _trainer(n_rounds=5)
        trainer.run()
        assert len(trainer.history) == 5
        assert trainer.coordinator.rounds_completed == 5

    def test_learning_happens(self) -> None:
        trainer = _trainer(n_rounds=25)
        history = trainer.run()
        assert history.final_loss() < history.losses[0]
        assert history.final_accuracy() > 0.6

    def test_gradient_step_accounting(self) -> None:
        trainer = _trainer(n_rounds=4, participants_per_round=3, local_epochs=2)
        trainer.run()
        # Full batch: E steps per client per round.
        assert trainer.total_gradient_steps == 4 * 3 * 2
        assert trainer.total_uploads == 4 * 3

    def test_early_stop_at_target(self) -> None:
        trainer = _trainer(n_rounds=100, target_accuracy=0.5)
        history = trainer.run()
        assert len(history) < 100
        assert history.final_accuracy() >= 0.5

    def test_deterministic_given_seed(self) -> None:
        losses_a = _trainer(seed=7, n_rounds=6).run().losses
        losses_b = _trainer(seed=7, n_rounds=6).run().losses
        np.testing.assert_array_equal(losses_a, losses_b)

    def test_different_seeds_differ(self) -> None:
        losses_a = _trainer(seed=1, n_rounds=6).run().losses
        losses_b = _trainer(seed=2, n_rounds=6).run().losses
        assert not np.array_equal(losses_a, losses_b)

    def test_custom_sampler_used(self) -> None:
        train = _linear_task(300)
        partitions = partition_iid(train, 6, np.random.default_rng(1))
        clients = build_clients(partitions, _CONFIG)
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=3, participants_per_round=2, local_epochs=1
            ),
            train_eval=train,
            test_eval=train,
            sampler=FixedSampler(6, [1, 4]),
        )
        trainer.run()
        for record in trainer.history.records:
            assert record.participants == (1, 4)

    def test_learning_rate_decays_across_rounds(self) -> None:
        trainer = _trainer(n_rounds=3, sgd=SGDConfig(learning_rate=0.1, decay=0.5))
        trainer.run()
        rates = [r.learning_rate for r in trainer.history.records]
        assert rates == pytest.approx([0.1, 0.05, 0.025])

    def test_k_equals_one_is_sequential_sgd(self) -> None:
        trainer = _trainer(n_rounds=10, participants_per_round=1)
        history = trainer.run()
        assert history.final_loss() < history.losses[0]
        for record in trainer.history.records:
            assert len(record.participants) == 1


class TestDropout:
    def test_dropout_reduces_uploads(self) -> None:
        full = _trainer(n_rounds=20, seed=3)
        full.run()
        lossy = _trainer(n_rounds=20, seed=3, dropout_probability=0.5)
        lossy.run()
        assert lossy.total_uploads < full.total_uploads
        # Gradient *computation* still happens at dropped clients.
        assert lossy.total_gradient_steps == full.total_gradient_steps

    def test_all_dropped_round_keeps_model(self) -> None:
        trainer = _trainer(n_rounds=1, participants_per_round=1)
        trainer.config.__dict__  # frozen dataclass; rebuild with dropout ~ 1
        trainer = _trainer(
            n_rounds=3, participants_per_round=1, dropout_probability=0.999, seed=5
        )
        params_before = trainer.coordinator.global_parameters
        trainer.run()
        # With dropout ~ 1 nearly every round is wasted; rounds must still
        # be counted and the model stays near its initial value.
        assert len(trainer.history) == 3
        assert trainer.coordinator.rounds_completed == 3

    def test_training_survives_moderate_dropout(self) -> None:
        trainer = _trainer(n_rounds=30, dropout_probability=0.3)
        history = trainer.run()
        assert history.final_accuracy() > 0.55

    def test_sampling_invariant_to_dropout_setting(self) -> None:
        # Regression: dropout used to draw from the sampler's RNG, so
        # enabling it changed which clients later rounds selected.  The
        # dropout stream is now independent — the selection sequence must
        # be identical whatever the dropout probability.
        runs = {}
        for p in (0.0, 0.5, 0.9):
            trainer = _trainer(n_rounds=12, seed=7, dropout_probability=p)
            trainer.run()
            runs[p] = [r.participants for r in trainer.history.records]
        assert runs[0.0] == runs[0.5] == runs[0.9]
