"""Population-engine acceptance suite (million-client backend).

The population backend must be a drop-in replacement for the sequential
reference: same cohorts, same update order, same aggregated parameters
(within ``atol=1e-10``; bit-identical to the batched engine, whose
kernel it shares).  The suite sweeps seeds, K, E, FedProx, dropout,
over-selection, and an active fault plan; checks cohort-order
invariance of :func:`train_cohort`; verifies the stacked K/E/seed grid
against per-unit trainer runs; and pins the fog-tier aggregation fold
to the flat mean.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.models import make_demo_plan
from repro.faults.policies import ResilienceConfig, RetryPolicy
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.engine import (
    AUTO_BACKEND,
    POPULATION_MIN_CLIENTS,
    PopulationEngine,
    select_backend,
)
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.population import (
    AggregationTree,
    GridUnit,
    PopulationState,
    train_cohort,
    train_unit_grid,
)
from repro.fl.sampling import FloydSampler
from repro.fl.server import Coordinator, aggregate_mean
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.obs.observer import Observer
from repro.perf.cache import StackCache
from repro.perf.shared_data import SharedDatasetStore, attach_datasets

pytestmark = pytest.mark.population_smoke

_CONFIG = LogisticRegressionConfig(n_features=8, n_classes=3)
_N_CLIENTS = 8


def _linear_task(n: int, seed: int = 0) -> Dataset:
    projection = np.random.default_rng(424242).normal(size=(8, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 8))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, 3)


# 317 samples over 8 clients -> two distinct partition sizes, so the
# population state exercises its size-grouping path every round.
_TRAIN = _linear_task(317)
_TEST = _linear_task(100, seed=99)
_PARTITIONS = partition_iid(_TRAIN, _N_CLIENTS, np.random.default_rng(1))


def _run(
    backend: str,
    with_faults: bool = False,
    observer: Observer | None = None,
    model_config: LogisticRegressionConfig = _CONFIG,
    **config_kwargs,
):
    """Train with ``backend`` and return (final_params, history, reports)."""
    defaults = dict(
        n_rounds=8,
        participants_per_round=3,
        local_epochs=2,
        sgd=SGDConfig(learning_rate=0.5, decay=0.99),
        backend=backend,
    )
    defaults.update(config_kwargs)
    clients = build_clients(_PARTITIONS, model_config)
    kwargs = {}
    if with_faults:
        plan = make_demo_plan(
            _N_CLIENTS,
            seed=13,
            crash_fraction=0.25,
            loss_fraction=0.3,
            loss_bad=0.95,
        )
        kwargs["fault_injector"] = FaultInjector(plan, _N_CLIENTS)
        kwargs["resilience"] = ResilienceConfig(
            retry=RetryPolicy(max_retries=1), min_quorum=1
        )
    trainer = FederatedTrainer(
        clients=clients,
        config=FederatedConfig(**defaults),
        train_eval=_TRAIN,
        test_eval=_TEST,
        observer=observer,
        **kwargs,
    )
    try:
        trainer.run()
    finally:
        trainer.close()
    return (
        trainer.coordinator.global_parameters,
        trainer.history,
        list(trainer.resilience_log),
    )


def _assert_equivalent(reference, candidate, atol: float = 1e-10) -> None:
    params_ref, history_ref, reports_ref = reference
    params_new, history_new, reports_new = candidate
    np.testing.assert_allclose(params_new, params_ref, rtol=0, atol=atol)
    assert len(history_ref) == len(history_new)
    for rec_ref, rec_new in zip(history_ref.records, history_new.records):
        assert rec_ref.round_index == rec_new.round_index
        assert rec_ref.participants == rec_new.participants
        assert rec_ref.aggregated == rec_new.aggregated
        assert rec_ref.degraded == rec_new.degraded
        assert rec_ref.train_loss == pytest.approx(
            rec_new.train_loss, abs=atol
        )
    assert reports_ref == reports_new


class TestPopulationEquivalence:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("participants,epochs", [(1, 1), (3, 4), (5, 1)])
    def test_plain_fedavg(self, seed: int, participants: int, epochs: int):
        reference = _run(
            "sequential",
            seed=seed,
            participants_per_round=participants,
            local_epochs=epochs,
        )
        candidate = _run(
            "population",
            seed=seed,
            participants_per_round=participants,
            local_epochs=epochs,
        )
        _assert_equivalent(reference, candidate)

    def test_fedprox_and_l2(self):
        regularised = LogisticRegressionConfig(
            n_features=8, n_classes=3, l2=0.01
        )
        kwargs = dict(
            proximal_mu=0.05,
            model_config=regularised,
            sgd=SGDConfig(learning_rate=0.4),
        )
        reference = _run("sequential", **kwargs)
        candidate = _run("population", **kwargs)
        _assert_equivalent(reference, candidate)

    def test_dropout_and_overselection(self):
        kwargs = dict(dropout_probability=0.3, overselection=2, seed=3)
        reference = _run("sequential", **kwargs)
        candidate = _run("population", **kwargs)
        _assert_equivalent(reference, candidate)

    def test_active_fault_plan(self):
        reference = _run("sequential", with_faults=True, n_rounds=10, seed=5)
        candidate = _run("population", with_faults=True, n_rounds=10, seed=5)
        _assert_equivalent(reference, candidate)
        assert candidate[2], "fault plan produced no resilience reports"

    def test_bitwise_identical_to_batched(self):
        """Population shares the batched kernel: results match exactly."""
        batched = _run("batched", seed=2, participants_per_round=4)
        population = _run("population", seed=2, participants_per_round=4)
        np.testing.assert_array_equal(batched[0], population[0])

    def test_float32_dtype_close(self):
        reference = _run("sequential", seed=1)
        candidate = _run("population", seed=1, population_dtype="float32")
        # float32 compute, float64 aggregation: small but non-zero delta.
        np.testing.assert_allclose(
            candidate[0], reference[0], rtol=0, atol=1e-4
        )

    def test_population_rounds_counted(self):
        observer = Observer()
        _run("population", observer=observer, n_rounds=6)
        assert observer.metrics.value("engine.population_rounds") == 6

    def test_minibatch_falls_back_to_sequential(self):
        kwargs = dict(sgd=SGDConfig(learning_rate=0.3, batch_size=16))
        reference = _run("sequential", **kwargs)
        observer = Observer()
        candidate = _run("population", observer=observer, **kwargs)
        _assert_equivalent(reference, candidate, atol=0.0)
        with pytest.raises(KeyError):
            observer.metrics.value("engine.population_rounds")

    def test_auto_backend_equivalent(self):
        reference = _run("sequential", seed=4)
        candidate = _run(AUTO_BACKEND, seed=4)
        _assert_equivalent(reference, candidate)


class TestPopulationState:
    def test_from_datasets_roundtrip(self):
        state = PopulationState.from_datasets(_PARTITIONS, _CONFIG)
        assert state.n_clients == _N_CLIENTS
        for client_id, dataset in enumerate(_PARTITIONS):
            restored = EdgeServerClient.from_population(state, client_id)
            np.testing.assert_array_equal(
                restored.dataset.features, dataset.features
            )
            np.testing.assert_array_equal(
                restored.dataset.labels, dataset.labels
            )

    def test_synthesize_shapes_and_dtype(self):
        state = PopulationState.synthesize(
            64, n_features=6, n_classes=4, samples_per_client=3, seed=1
        )
        assert state.n_clients == 64
        assert int(state.n_samples.sum()) == 64 * 3
        f32 = PopulationState.synthesize(
            16, n_features=6, n_classes=4, dtype=np.float32
        )
        assert f32.dtype == np.float32

    def test_battery_drain(self):
        state = PopulationState.synthesize(10, seed=3)
        state.battery_j[:] = 5.0
        state.drain_battery(np.array([0, 1, 2]), 6.0)
        active = state.active_clients()
        assert 0 not in active and 1 not in active and 2 not in active
        assert len(active) == 7

    def test_rejects_gapped_ids(self):
        group_cls = type(
            PopulationState.synthesize(2, seed=0).groups[
                next(iter(PopulationState.synthesize(2, seed=0).groups))
            ]
        )
        good = PopulationState.synthesize(4, seed=0)
        (n, group), = good.groups.items()
        bad = group_cls(
            client_ids=group.client_ids + 2,  # ids 2..5, not 0..3
            features=group.features,
            labels=group.labels,
        )
        with pytest.raises(ValueError):
            PopulationState({n: bad}, good.model_config)


class TestTrainCohort:
    def _state_and_anchor(self):
        state = PopulationState.from_datasets(_PARTITIONS, _CONFIG)
        anchor = _CONFIG.build().get_parameters()
        return state, anchor

    def test_update_order_follows_input_ids(self):
        state, anchor = self._state_and_anchor()
        ordered = train_cohort(
            state, [1, 3, 5], anchor, epochs=2, learning_rate=0.5
        )
        shuffled = train_cohort(
            state, [5, 1, 3], anchor, epochs=2, learning_rate=0.5
        )
        assert [u.client_id for u in ordered] == [1, 3, 5]
        assert [u.client_id for u in shuffled] == [5, 1, 3]
        by_id = {u.client_id: u.parameters for u in shuffled}
        for update in ordered:
            np.testing.assert_array_equal(
                update.parameters, by_id[update.client_id]
            )

    def test_matches_sequential_client(self):
        state, anchor = self._state_and_anchor()
        clients = build_clients(_PARTITIONS, _CONFIG)
        for client_id in (0, 4, 7):
            expected = clients[client_id].train(
                anchor, epochs=3, learning_rate=0.4
            )
            (actual,) = train_cohort(
                state, [client_id], anchor, epochs=3, learning_rate=0.4
            )
            np.testing.assert_allclose(
                actual.parameters, expected.parameters, rtol=0, atol=1e-10
            )
            assert actual.n_samples == expected.n_samples


class TestAggregationTree:
    def _updates(self, k: int = 12) -> list[LocalUpdate]:
        rng = np.random.default_rng(5)
        return [
            LocalUpdate(
                client_id=i,
                parameters=rng.normal(size=_CONFIG.n_parameters),
                n_samples=40,
                epochs=1,
                gradient_steps=1,
                final_local_loss=0.1,
            )
            for i in range(k)
        ]

    def test_fold_matches_flat_mean(self):
        updates = self._updates()
        flat = aggregate_mean(updates)
        for tiers in (1, 3, 4, 12, 100):
            folded = AggregationTree(tiers).fold_updates(updates)
            np.testing.assert_allclose(folded, flat, rtol=0, atol=1e-12)

    def test_fan_in(self):
        tree = AggregationTree(4)
        assert tree.fan_in(12) == 4
        assert tree.fan_in(3) == 3
        assert tree.fan_in(1) == 1

    def test_coordinator_with_tree(self):
        updates = self._updates(6)
        flat = Coordinator(_CONFIG)
        tiered = Coordinator(_CONFIG, aggregation_tree=AggregationTree(3))
        np.testing.assert_allclose(
            tiered.aggregate(updates),
            flat.aggregate(updates),
            rtol=0,
            atol=1e-12,
        )

    def test_tree_requires_mean_rule(self):
        with pytest.raises(ValueError, match="mean"):
            Coordinator(
                _CONFIG,
                aggregation="weighted",
                aggregation_tree=AggregationTree(2),
            )


class TestUnitGrid:
    def test_grid_matches_per_unit_trainers(self):
        state = PopulationState.from_datasets(_PARTITIONS, _CONFIG)
        sgd = SGDConfig(learning_rate=0.5, decay=0.99)
        units = [
            GridUnit(participants=5, epochs=3, seed=7),
            GridUnit(participants=8, epochs=2, seed=11),
            GridUnit(participants=3, epochs=5, seed=7),
        ]
        results = train_unit_grid(state, units, n_rounds=6, sgd=sgd)
        for unit, result in zip(units, results):
            clients = build_clients(_PARTITIONS, _CONFIG)
            trainer = FederatedTrainer(
                clients=clients,
                config=FederatedConfig(
                    n_rounds=6,
                    participants_per_round=unit.participants,
                    local_epochs=unit.epochs,
                    sgd=sgd,
                    seed=unit.seed,
                    backend="batched",
                ),
                train_eval=_TRAIN,
                test_eval=_TEST,
            )
            trainer.run()
            trainer.close()
            np.testing.assert_array_equal(
                result.parameters, trainer.coordinator.global_parameters
            )

    def test_grid_with_tree_close_to_flat(self):
        state = PopulationState.from_datasets(_PARTITIONS, _CONFIG)
        sgd = SGDConfig(learning_rate=0.5, decay=0.99)
        units = [GridUnit(participants=6, epochs=2, seed=0)]
        flat = train_unit_grid(state, units, n_rounds=5, sgd=sgd)
        tiered = train_unit_grid(
            state, units, n_rounds=5, sgd=sgd, tree=AggregationTree(3)
        )
        np.testing.assert_allclose(
            tiered[0].parameters, flat[0].parameters, rtol=0, atol=1e-10
        )


class TestPopulationEngineFallback:
    def test_minibatch_config_falls_back(self):
        clients = build_clients(_PARTITIONS, _CONFIG)
        config = FederatedConfig(
            n_rounds=1,
            participants_per_round=1,
            local_epochs=1,
            sgd=SGDConfig(learning_rate=0.3, batch_size=8),
            backend="population",
        )
        engine = PopulationEngine(clients, config)
        assert engine.state is None

    def test_from_state_requires_vectorizable(self):
        state = PopulationState.synthesize(8, seed=0)
        config = FederatedConfig(
            n_rounds=1,
            participants_per_round=1,
            local_epochs=1,
            sgd=SGDConfig(learning_rate=0.3, batch_size=8),
            backend="population",
        )
        engine = PopulationEngine.from_state(state, config)
        anchor = state.model_config.build().get_parameters()
        with pytest.raises(RuntimeError, match="cannot fall back"):
            engine.train_round([0], anchor, 0, 0.1)


class TestFloydSampler:
    def test_selects_sorted_unique_in_range(self):
        sampler = FloydSampler(1000, 10, seed=3)
        for round_index in range(5):
            selected = sampler.select(round_index)
            assert len(selected) == 10
            assert len(set(selected.tolist())) == 10
            assert np.all(np.diff(selected) > 0)
            assert selected.min() >= 0 and selected.max() < 1000

    def test_stateless_and_deterministic(self):
        a = FloydSampler(500, 20, seed=9)
        b = FloydSampler(500, 20, seed=9)
        # Query out of order: selection depends only on (seed, round).
        np.testing.assert_array_equal(a.select(3), b.select(3))
        np.testing.assert_array_equal(a.select(0), b.select(0))
        assert not np.array_equal(a.select(0), a.select(1))

    def test_full_population(self):
        sampler = FloydSampler(6, 6, seed=0)
        np.testing.assert_array_equal(sampler.select(0), np.arange(6))


class TestAutoSelection:
    def test_vectorized_small_population(self):
        assert (
            select_backend(
                n_clients=20,
                participants=5,
                epochs=2,
                n_features=784,
                vectorizable=True,
            )
            == "batched"
        )

    def test_vectorized_single_participant(self):
        assert (
            select_backend(
                n_clients=20,
                participants=1,
                epochs=2,
                n_features=784,
                vectorizable=True,
            )
            == "sequential"
        )

    def test_vectorized_large_population(self):
        assert (
            select_backend(
                n_clients=POPULATION_MIN_CLIENTS,
                participants=10,
                epochs=1,
                n_features=784,
                vectorizable=True,
            )
            == "population"
        )

    def test_single_cpu_never_pool(self):
        profitable = {
            "thresholds": {"pool_cpu_floor": 2},
            "break_even": {
                "rows": [
                    {
                        "participants": 4,
                        "epochs": 1,
                        "model": "8x3",
                        "speedup_pool": 1.5,
                    }
                ]
            },
        }
        assert (
            select_backend(
                n_clients=20,
                participants=16,
                epochs=8,
                n_features=784,
                vectorizable=False,
                available_cpus=1,
                table=profitable,
            )
            == "sequential"
        )

    def test_pool_when_measured_profitable(self):
        profitable = {
            "thresholds": {"pool_cpu_floor": 2},
            "break_even": {
                "rows": [
                    {
                        "participants": 4,
                        "epochs": 1,
                        "model": "8x3",
                        "speedup_pool": 1.5,
                    }
                ]
            },
        }
        assert (
            select_backend(
                n_clients=20,
                participants=16,
                epochs=8,
                n_features=784,
                vectorizable=False,
                available_cpus=8,
                table=profitable,
            )
            == "pool"
        )

    def test_no_profitable_row_never_pool(self):
        unprofitable = {
            "thresholds": {"pool_cpu_floor": 2},
            "break_even": {
                "rows": [
                    {
                        "participants": 16,
                        "epochs": 8,
                        "model": "784x10",
                        "speedup_pool": 0.8,
                    }
                ]
            },
        }
        assert (
            select_backend(
                n_clients=20,
                participants=16,
                epochs=8,
                n_features=784,
                vectorizable=False,
                available_cpus=8,
                table=unprofitable,
            )
            == "sequential"
        )

    def test_trainer_resolves_auto_once(self):
        clients = build_clients(_PARTITIONS, _CONFIG)
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=1,
                participants_per_round=2,
                local_epochs=1,
                backend=AUTO_BACKEND,
            ),
            train_eval=_TRAIN,
            test_eval=_TEST,
        )
        assert trainer.resolved_backend == "batched"
        trainer.close()


class TestStackCacheBytes:
    def test_byte_bound_evicts_oldest(self):
        cache = StackCache(capacity=32, max_bytes=100)
        a = np.zeros(5, dtype=np.float64)  # 40 bytes each
        cache.store((1,), a)
        cache.store((2,), a)
        assert cache.total_bytes == 80
        cache.store((3,), a)  # 120 > 100: (1,) evicted
        assert cache.lookup((1,)) is None
        assert cache.lookup((3,)) is not None
        assert cache.total_bytes == 80

    def test_oversized_entry_not_cached(self):
        cache = StackCache(capacity=32, max_bytes=100)
        cache.store((1,), np.zeros(64, dtype=np.float64))  # 512 bytes
        assert len(cache) == 0
        assert cache.total_bytes == 0


class TestSharedStoreFromPopulation:
    def test_matches_object_list_constructor(self):
        state = PopulationState.from_datasets(_PARTITIONS, _CONFIG)
        from_objects = SharedDatasetStore(list(_PARTITIONS))
        from_state = SharedDatasetStore.from_population(state)
        try:
            ref, ref_handles = attach_datasets(from_objects.spec)
            new, new_handles = attach_datasets(from_state.spec)
            assert from_state.spec.row_offsets == from_objects.spec.row_offsets
            for d_ref, d_new in zip(ref, new):
                np.testing.assert_array_equal(d_ref.features, d_new.features)
                np.testing.assert_array_equal(d_ref.labels, d_new.labels)
            for handle in (*ref_handles, *new_handles):
                handle.close()
        finally:
            from_objects.close()
            from_state.close()
