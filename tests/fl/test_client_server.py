"""Unit tests for the edge-server client and the coordinator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.model import LogisticRegressionConfig, LogisticRegressionModel
from repro.fl.server import Coordinator, aggregate_mean, aggregate_weighted
from repro.fl.sgd import SGDConfig

_CONFIG = LogisticRegressionConfig(n_features=4, n_classes=3)


def _dataset(n: int = 30, seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    return Dataset(rng.normal(size=(n, 4)), rng.integers(0, 3, size=n), 3)


def _update(params: np.ndarray, n_samples: int = 10, cid: int = 0) -> LocalUpdate:
    return LocalUpdate(
        client_id=cid,
        parameters=params,
        n_samples=n_samples,
        epochs=1,
        gradient_steps=1,
        final_local_loss=0.0,
    )


class TestClient:
    def test_train_returns_update(self) -> None:
        client = EdgeServerClient(0, _dataset(), _CONFIG)
        update = client.train(np.zeros(_CONFIG.n_parameters), epochs=3, learning_rate=0.1)
        assert update.client_id == 0
        assert update.epochs == 3
        assert update.gradient_steps == 3  # full batch: one step per epoch
        assert update.n_samples == 30
        assert update.parameters.shape == (_CONFIG.n_parameters,)

    def test_training_reduces_local_loss(self) -> None:
        client = EdgeServerClient(0, _dataset(100), _CONFIG)
        start = np.zeros(_CONFIG.n_parameters)
        update = client.train(start, epochs=20, learning_rate=0.5)
        assert update.final_local_loss < client.local_loss(start)

    def test_minibatch_steps_counted(self) -> None:
        client = EdgeServerClient(0, _dataset(30), _CONFIG)
        update = client.train(
            np.zeros(_CONFIG.n_parameters),
            epochs=2,
            learning_rate=0.1,
            sgd=SGDConfig(batch_size=10),
        )
        assert update.gradient_steps == 6  # 3 batches x 2 epochs

    def test_does_not_mutate_global_parameters(self) -> None:
        client = EdgeServerClient(0, _dataset(), _CONFIG)
        global_params = np.zeros(_CONFIG.n_parameters)
        client.train(global_params, epochs=1, learning_rate=0.1)
        assert np.all(global_params == 0.0)

    def test_local_gradient_matches_model(self) -> None:
        dataset = _dataset(20, seed=3)
        client = EdgeServerClient(0, dataset, _CONFIG)
        params = np.random.default_rng(4).normal(size=_CONFIG.n_parameters)
        model = LogisticRegressionModel(_CONFIG)
        model.set_parameters(params)
        expected = model.gradient_flat(dataset.features, dataset.labels)
        np.testing.assert_allclose(client.local_gradient(params), expected)

    def test_rejects_empty_dataset(self) -> None:
        empty = Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int), 3)
        with pytest.raises(ValueError, match="empty dataset"):
            EdgeServerClient(0, empty, _CONFIG)

    def test_rejects_feature_mismatch(self) -> None:
        with pytest.raises(ValueError, match="features"):
            EdgeServerClient(
                0, _dataset(), LogisticRegressionConfig(n_features=9, n_classes=3)
            )

    @pytest.mark.parametrize("epochs,lr", [(0, 0.1), (1, 0.0), (1, -1.0)])
    def test_rejects_invalid_train_args(self, epochs: int, lr: float) -> None:
        client = EdgeServerClient(0, _dataset(), _CONFIG)
        with pytest.raises(ValueError):
            client.train(np.zeros(_CONFIG.n_parameters), epochs=epochs, learning_rate=lr)


class TestAggregation:
    def test_mean_is_elementwise_average(self) -> None:
        a = _update(np.full(_CONFIG.n_parameters, 1.0))
        b = _update(np.full(_CONFIG.n_parameters, 3.0))
        np.testing.assert_allclose(aggregate_mean([a, b]), 2.0)

    def test_weighted_uses_sample_counts(self) -> None:
        a = _update(np.full(_CONFIG.n_parameters, 0.0), n_samples=10)
        b = _update(np.full(_CONFIG.n_parameters, 4.0), n_samples=30)
        np.testing.assert_allclose(aggregate_weighted([a, b]), 3.0)

    def test_mean_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="empty"):
            aggregate_mean([])

    def test_weighted_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="empty"):
            aggregate_weighted([])

    def test_single_update_is_identity(self) -> None:
        params = np.arange(_CONFIG.n_parameters, dtype=float)
        np.testing.assert_array_equal(aggregate_mean([_update(params)]), params)
        np.testing.assert_array_equal(aggregate_weighted([_update(params)]), params)


class TestCoordinator:
    def test_initial_parameters_zero(self) -> None:
        coord = Coordinator(_CONFIG)
        assert np.all(coord.global_parameters == 0.0)
        assert coord.rounds_completed == 0

    def test_custom_initial_parameters(self) -> None:
        init = np.ones(_CONFIG.n_parameters)
        coord = Coordinator(_CONFIG, initial_parameters=init)
        np.testing.assert_array_equal(coord.global_parameters, init)

    def test_initial_parameters_copied(self) -> None:
        init = np.ones(_CONFIG.n_parameters)
        coord = Coordinator(_CONFIG, initial_parameters=init)
        init[0] = 99.0
        assert coord.global_parameters[0] == 1.0

    def test_aggregate_advances_round(self) -> None:
        coord = Coordinator(_CONFIG)
        coord.aggregate([_update(np.ones(_CONFIG.n_parameters))])
        assert coord.rounds_completed == 1
        np.testing.assert_allclose(coord.global_parameters, 1.0)

    def test_weighted_mode(self) -> None:
        coord = Coordinator(_CONFIG, aggregation="weighted")
        coord.aggregate(
            [
                _update(np.full(_CONFIG.n_parameters, 0.0), n_samples=10),
                _update(np.full(_CONFIG.n_parameters, 4.0), n_samples=30),
            ]
        )
        np.testing.assert_allclose(coord.global_parameters, 3.0)

    def test_global_model_reflects_parameters(self) -> None:
        coord = Coordinator(_CONFIG)
        coord.aggregate([_update(np.full(_CONFIG.n_parameters, 0.5))])
        model = coord.global_model()
        np.testing.assert_allclose(model.get_parameters(), 0.5)

    def test_rejects_unknown_aggregation(self) -> None:
        with pytest.raises(ValueError, match="aggregation"):
            Coordinator(_CONFIG, aggregation="median")

    def test_rejects_bad_initial_shape(self) -> None:
        with pytest.raises(ValueError, match="initial_parameters"):
            Coordinator(_CONFIG, initial_parameters=np.zeros(3))
