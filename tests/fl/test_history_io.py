"""Unit tests for training-history JSON persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.history_io import (
    history_from_json,
    history_to_json,
    load_history_json,
    save_history_json,
)
from repro.fl.metrics import RoundRecord, TrainingHistory


def _history(n: int = 5) -> TrainingHistory:
    history = TrainingHistory()
    for t in range(n):
        history.append(
            RoundRecord(
                round_index=t,
                train_loss=2.0 / (t + 1),
                test_accuracy=0.5 + 0.05 * t,
                participants=(0, 1, 2),
                local_epochs=10,
                learning_rate=0.01 * 0.99**t,
                aggregated=(0, 2),
            )
        )
    return history


class TestRoundTrip:
    def test_preserves_all_fields(self) -> None:
        original = _history()
        restored = history_from_json(history_to_json(original))
        assert len(restored) == len(original)
        for a, b in zip(original.records, restored.records):
            assert a == b

    def test_preserves_derived_queries(self) -> None:
        original = _history(10)
        restored = history_from_json(history_to_json(original))
        np.testing.assert_allclose(restored.losses, original.losses)
        assert restored.rounds_to_accuracy(0.7) == original.rounds_to_accuracy(0.7)

    def test_file_roundtrip(self, tmp_path) -> None:
        original = _history()
        path = tmp_path / "history.json"
        save_history_json(original, path)
        restored = load_history_json(path)
        assert restored.records == original.records

    def test_empty_history_roundtrips(self) -> None:
        restored = history_from_json(history_to_json(TrainingHistory()))
        assert len(restored) == 0

    def test_default_aggregated_backfilled(self) -> None:
        # Documents without the aggregated key (older captures) fall back
        # to participants.
        history = TrainingHistory()
        history.append(
            RoundRecord(0, 1.0, 0.5, (0, 1), 5, 0.01)
        )
        text = history_to_json(history).replace('"aggregated": [0, 1],', "")
        import json

        document = json.loads(history_to_json(history))
        del document["records"][0]["aggregated"]
        restored = history_from_json(json.dumps(document))
        assert restored[0].aggregated == (0, 1)


class TestValidation:
    def test_rejects_invalid_json(self) -> None:
        with pytest.raises(ValueError, match="invalid JSON"):
            history_from_json("{not json")

    def test_rejects_wrong_schema(self) -> None:
        with pytest.raises(ValueError, match="schema"):
            history_from_json('{"schema": "other/9", "records": []}')

    def test_rejects_malformed_record(self) -> None:
        text = (
            '{"schema": "repro.training-history/1", '
            '"records": [{"round_index": 0}]}'
        )
        with pytest.raises(ValueError, match="malformed record"):
            history_from_json(text)
