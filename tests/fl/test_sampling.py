"""Unit tests for client-sampling strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.sampling import FixedSampler, RoundRobinSampler, UniformSampler


class TestUniform:
    def test_selects_k_distinct_sorted(self) -> None:
        sampler = UniformSampler(20, 5, np.random.default_rng(0))
        for t in range(20):
            chosen = sampler.select(t)
            assert len(chosen) == 5
            assert len(set(chosen.tolist())) == 5
            assert np.all(np.diff(chosen) > 0)
            assert chosen.min() >= 0 and chosen.max() < 20

    def test_covers_all_clients_eventually(self) -> None:
        sampler = UniformSampler(10, 3, np.random.default_rng(1))
        seen: set[int] = set()
        for t in range(100):
            seen.update(sampler.select(t).tolist())
        assert seen == set(range(10))

    def test_k_equals_n_selects_everyone(self) -> None:
        sampler = UniformSampler(6, 6, np.random.default_rng(2))
        np.testing.assert_array_equal(sampler.select(0), np.arange(6))

    @pytest.mark.parametrize("n,k", [(0, 1), (5, 0), (5, 6)])
    def test_rejects_invalid_sizes(self, n: int, k: int) -> None:
        with pytest.raises(ValueError):
            UniformSampler(n, k, np.random.default_rng(0))


class TestRoundRobin:
    def test_rotates_fairly(self) -> None:
        sampler = RoundRobinSampler(6, 2)
        rounds = [sampler.select(t).tolist() for t in range(3)]
        assert rounds == [[0, 1], [2, 3], [4, 5]]

    def test_wraps_around(self) -> None:
        sampler = RoundRobinSampler(5, 2)
        assert sampler.select(2).tolist() == [0, 4]

    def test_every_client_equally_often(self) -> None:
        sampler = RoundRobinSampler(6, 3)
        counts = np.zeros(6, dtype=int)
        for t in range(12):
            counts[sampler.select(t)] += 1
        assert counts.min() == counts.max()

    def test_rejects_negative_round(self) -> None:
        with pytest.raises(ValueError, match="round_index"):
            RoundRobinSampler(5, 2).select(-1)


class TestFixed:
    def test_always_same_subset(self) -> None:
        sampler = FixedSampler(10, [7, 2, 4])
        for t in range(5):
            assert sampler.select(t).tolist() == [2, 4, 7]

    def test_k_is_subset_size(self) -> None:
        assert FixedSampler(10, [1, 2]).k == 2

    def test_rejects_duplicates(self) -> None:
        with pytest.raises(ValueError, match="duplicates"):
            FixedSampler(10, [1, 1, 2])

    def test_rejects_out_of_range(self) -> None:
        with pytest.raises(ValueError, match="client_ids"):
            FixedSampler(5, [4, 5])

    def test_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="non-empty"):
            FixedSampler(5, [])

    def test_returns_copy(self) -> None:
        sampler = FixedSampler(5, [1, 2])
        first = sampler.select(0)
        first[0] = 4
        assert sampler.select(1).tolist() == [1, 2]
