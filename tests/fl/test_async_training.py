"""Unit + integration tests for asynchronous federated training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.async_training import (
    AsyncConfig,
    AsyncFederatedTrainer,
    AsyncResult,
)
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import build_clients

_CONFIG = LogisticRegressionConfig(n_features=6, n_classes=3)


def _task(n: int, seed: int = 0) -> Dataset:
    projection = np.random.default_rng(77).normal(size=(6, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 6))
    labels = np.argmax(features @ projection, axis=1)
    return Dataset(features, labels, 3)


def _trainer(
    n_clients: int = 4,
    duration_fn=None,
    **config_kwargs,
) -> AsyncFederatedTrainer:
    train = _task(400)
    test = _task(150, seed=5)
    partitions = partition_iid(train, n_clients, np.random.default_rng(1))
    clients = build_clients(partitions, _CONFIG)
    defaults = dict(
        max_updates=40,
        local_epochs=2,
        sgd=SGDConfig(learning_rate=0.5, decay=1.0),
    )
    defaults.update(config_kwargs)
    return AsyncFederatedTrainer(
        clients=clients,
        config=AsyncConfig(**defaults),
        train_eval=train,
        test_eval=test,
        duration_fn=duration_fn or (lambda cid: 1.0 + 0.1 * cid),
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_updates": 0},
            {"local_epochs": 0},
            {"mixing_alpha": 0.0},
            {"mixing_alpha": 1.5},
            {"staleness_beta": -0.1},
            {"eval_every": 0},
            {"target_accuracy": 0.0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        defaults = dict(max_updates=10, local_epochs=1)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            AsyncConfig(**defaults)


class TestAsyncRun:
    def test_runs_exactly_max_updates(self) -> None:
        result = _trainer(max_updates=25).run()
        assert result.updates == 25
        assert len(result.records) == 25

    def test_update_times_increase(self) -> None:
        result = _trainer().run()
        times = [r.time_s for r in result.records]
        assert times == sorted(times)
        assert result.wall_clock_s >= times[-1]

    def test_learning_happens(self) -> None:
        result = _trainer(max_updates=60).run()
        first_eval = next(r.train_loss for r in result.records if r.train_loss)
        assert result.final_loss < first_eval
        assert result.final_accuracy > 0.6

    def test_fast_clients_contribute_more(self) -> None:
        # Client 0 is 4x faster than client 3.
        result = _trainer(
            duration_fn=lambda cid: 1.0 + 3.0 * (cid == 3), max_updates=60
        ).run()
        counts = np.bincount([r.client_id for r in result.records], minlength=4)
        assert counts[0] > counts[3]

    def test_staleness_observed_with_heterogeneous_speeds(self) -> None:
        result = _trainer(
            duration_fn=lambda cid: 1.0 + cid, max_updates=60
        ).run()
        assert max(r.staleness for r in result.records) >= 1

    def test_staleness_discount_applied(self) -> None:
        result = _trainer(
            duration_fn=lambda cid: 1.0 + cid,
            max_updates=60,
            mixing_alpha=0.8,
            staleness_beta=1.0,
        ).run()
        for record in result.records:
            expected = 0.8 * (1.0 + record.staleness) ** -1.0
            assert record.mixing_weight == pytest.approx(expected)

    def test_beta_zero_means_no_discount(self) -> None:
        result = _trainer(max_updates=20, staleness_beta=0.0).run()
        assert all(r.mixing_weight == pytest.approx(0.6) for r in result.records)

    def test_eval_every_thins_evaluations(self) -> None:
        result = _trainer(max_updates=40, eval_every=10).run()
        evaluated = [r for r in result.records if r.test_accuracy is not None]
        assert 4 <= len(evaluated) <= 5

    def test_target_accuracy_stops_early(self) -> None:
        result = _trainer(max_updates=500, target_accuracy=0.55).run()
        assert result.reached_target
        assert result.updates < 500

    def test_time_to_accuracy_query(self) -> None:
        result = _trainer(max_updates=80).run()
        t = result.time_to_accuracy(0.5)
        if t is not None:
            assert result.accuracy_at_time(t) >= 0.5
        assert result.time_to_accuracy(1.01) is None

    def test_deterministic(self) -> None:
        a = _trainer(max_updates=30).run()
        b = _trainer(max_updates=30).run()
        assert a.final_loss == b.final_loss
        assert [r.client_id for r in a.records] == [r.client_id for r in b.records]

    def test_rejects_empty_clients(self) -> None:
        with pytest.raises(ValueError, match="at least one client"):
            AsyncFederatedTrainer(
                clients=[],
                config=AsyncConfig(max_updates=1, local_epochs=1),
                train_eval=_task(10),
                test_eval=_task(10),
                duration_fn=lambda cid: 1.0,
            )


class TestPrototypeAsync:
    def test_run_async_on_testbed(self) -> None:
        from repro.data.synthetic_mnist import load_synthetic_mnist
        from repro.hardware.prototype import HardwarePrototype, PrototypeConfig

        train, test = load_synthetic_mnist(400, 100, seed=0)
        prototype = HardwarePrototype(train, test, PrototypeConfig(n_servers=4))
        result, energy = prototype.run_async(max_updates=20, epochs=5, eval_every=5)
        assert result.updates == 20
        assert energy > 0
        assert result.wall_clock_s > 0

    def test_async_beats_sync_wall_clock_on_jittery_fleet(self) -> None:
        from repro.data.synthetic_mnist import load_synthetic_mnist
        from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
        from repro.hardware.raspberry_pi import PiTimingConfig

        train, test = load_synthetic_mnist(400, 100, seed=0)
        config = PrototypeConfig(
            n_servers=4, timing=PiTimingConfig(jitter_fraction=0.3), seed=0
        )
        prototype = HardwarePrototype(train, test, config)
        async_result, _ = prototype.run_async(
            max_updates=20, epochs=5, eval_every=20
        )
        sync_result = prototype.run(participants=4, epochs=5, n_rounds=5)
        # Same 20 local jobs: async needs no round barrier (and no
        # waiting phase), so it finishes sooner.
        assert async_result.wall_clock_s < sync_result.wall_clock_s
