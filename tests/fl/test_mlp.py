"""Unit + integration tests for the MLP extension model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.mlp import MLPConfig, MLPModel
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.net.messages import model_download_message

_CONFIG = MLPConfig(n_features=6, n_hidden=8, n_classes=3, init_seed=7)


def _xor_like_task(n: int, seed: int = 0) -> Dataset:
    """A task logistic regression cannot solve but a small MLP can."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 6))
    labels = ((features[:, 0] > 0) ^ (features[:, 1] > 0)).astype(int) + (
        features[:, 2] > 1.0
    ).astype(int)
    return Dataset(features, labels, 3)


class TestConfig:
    def test_parameter_count(self) -> None:
        config = MLPConfig(n_features=784, n_hidden=64, n_classes=10)
        assert config.n_parameters == 784 * 64 + 64 + 64 * 10 + 10

    def test_parameter_bytes_for_messages(self) -> None:
        config = MLPConfig(n_features=10, n_hidden=4, n_classes=2)
        message = model_download_message(config)
        assert message.payload_bytes == config.n_parameters * 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_features": 0},
            {"n_hidden": 0},
            {"n_classes": 1},
            {"l2": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            MLPConfig(**kwargs)


class TestDeterministicInit:
    def test_build_is_reproducible(self) -> None:
        a = _CONFIG.build().get_parameters()
        b = _CONFIG.build().get_parameters()
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_init(self) -> None:
        other = MLPConfig(n_features=6, n_hidden=8, n_classes=3, init_seed=8)
        assert not np.array_equal(
            _CONFIG.build().get_parameters(), other.build().get_parameters()
        )

    def test_init_is_nonzero(self) -> None:
        # A zero-initialised MLP cannot break symmetry.
        assert np.abs(_CONFIG.build().get_parameters()).max() > 0


class TestParameters:
    def test_roundtrip(self) -> None:
        model = _CONFIG.build()
        flat = np.arange(_CONFIG.n_parameters, dtype=float) / 100.0
        model.set_parameters(flat)
        np.testing.assert_allclose(model.get_parameters(), flat)

    def test_set_rejects_wrong_shape(self) -> None:
        with pytest.raises(ValueError, match="parameters"):
            _CONFIG.build().set_parameters(np.zeros(3))

    def test_clone_independent(self) -> None:
        model = _CONFIG.build()
        clone = model.clone()
        clone.w1[0, 0] += 1.0
        assert model.w1[0, 0] != clone.w1[0, 0]


class TestGradient:
    def test_matches_finite_differences(self) -> None:
        rng = np.random.default_rng(0)
        config = MLPConfig(n_features=4, n_hidden=3, n_classes=3, l2=0.05, init_seed=1)
        model = config.build()
        features = rng.normal(size=(6, 4))
        # Keep pre-activations away from the ReLU kink for the check.
        labels = rng.integers(0, 3, size=6)
        analytic = model.gradient_flat(features, labels)
        base = model.get_parameters()
        eps = 1e-6
        numeric = np.zeros_like(analytic)
        for i in range(len(base)):
            plus, minus = base.copy(), base.copy()
            plus[i] += eps
            minus[i] -= eps
            model.set_parameters(plus)
            up = model.loss(features, labels)
            model.set_parameters(minus)
            down = model.loss(features, labels)
            numeric[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_sgd_step_decreases_loss(self) -> None:
        dataset = _xor_like_task(100)
        model = _CONFIG.build()
        before = model.loss(dataset.features, dataset.labels)
        for _ in range(10):
            model.sgd_step(dataset.features, dataset.labels, 0.5)
        assert model.loss(dataset.features, dataset.labels) < before


class TestExpressiveness:
    def test_mlp_solves_nonlinear_task(self) -> None:
        dataset = _xor_like_task(600)
        model = _CONFIG.build()
        for _ in range(800):
            model.sgd_step(dataset.features, dataset.labels, 0.5)
        assert model.accuracy(dataset.features, dataset.labels) > 0.85

    def test_probabilities_normalised(self) -> None:
        model = _CONFIG.build()
        probs = model.predict_proba(np.random.default_rng(0).normal(size=(5, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)


class TestFederatedIntegration:
    def test_fedavg_trains_mlp(self) -> None:
        train = _xor_like_task(600)
        test = _xor_like_task(200, seed=9)
        partitions = partition_iid(train, 4, np.random.default_rng(1))
        clients = build_clients(partitions, _CONFIG)
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=60,
                participants_per_round=4,
                local_epochs=5,
                sgd=SGDConfig(learning_rate=0.5, decay=1.0),
            ),
            train_eval=train,
            test_eval=test,
        )
        history = trainer.run()
        assert history.final_loss() < history.losses[0]
        assert history.final_accuracy() > 0.7

    def test_coordinator_initialises_from_factory(self) -> None:
        from repro.fl.server import Coordinator

        coordinator = Coordinator(_CONFIG)
        np.testing.assert_array_equal(
            coordinator.global_parameters, _CONFIG.build().get_parameters()
        )
