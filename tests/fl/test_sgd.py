"""Unit tests for the SGD configuration and schedule."""

from __future__ import annotations

import pytest

from repro.fl.sgd import LearningRateSchedule, SGDConfig


class TestSGDConfig:
    def test_defaults_match_paper(self) -> None:
        config = SGDConfig()
        assert config.learning_rate == 0.01
        assert config.decay == 0.99
        assert config.batch_size is None  # full batch, as in the paper

    def test_rate_at_round(self) -> None:
        config = SGDConfig(learning_rate=0.1, decay=0.5)
        assert config.rate_at_round(0) == pytest.approx(0.1)
        assert config.rate_at_round(1) == pytest.approx(0.05)
        assert config.rate_at_round(3) == pytest.approx(0.0125)

    def test_no_decay(self) -> None:
        config = SGDConfig(learning_rate=0.1, decay=1.0)
        assert config.rate_at_round(100) == pytest.approx(0.1)

    def test_rejects_negative_round(self) -> None:
        with pytest.raises(ValueError, match="round_index"):
            SGDConfig().rate_at_round(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"learning_rate": -0.1},
            {"decay": 0.0},
            {"decay": 1.0001},
            {"batch_size": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            SGDConfig(**kwargs)


class TestSchedule:
    def test_advance_applies_decay(self) -> None:
        schedule = LearningRateSchedule(SGDConfig(learning_rate=1.0, decay=0.9))
        assert schedule.current_rate == pytest.approx(1.0)
        schedule.advance()
        assert schedule.current_rate == pytest.approx(0.9)
        schedule.advance()
        assert schedule.current_rate == pytest.approx(0.81)
        assert schedule.round_index == 2

    def test_reset(self) -> None:
        schedule = LearningRateSchedule(SGDConfig(learning_rate=1.0, decay=0.9))
        schedule.advance()
        schedule.advance()
        schedule.reset()
        assert schedule.round_index == 0
        assert schedule.current_rate == pytest.approx(1.0)

    def test_matches_config_rate(self) -> None:
        config = SGDConfig(learning_rate=0.02, decay=0.95)
        schedule = LearningRateSchedule(config)
        for t in range(10):
            assert schedule.current_rate == pytest.approx(config.rate_at_round(t))
            schedule.advance()
