"""Unit tests for the dataset partitioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.partition import (
    partition_by_shards,
    partition_dirichlet,
    partition_iid,
)


def _dataset(n: int = 200, n_classes: int = 5) -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(
        rng.normal(size=(n, 3)),
        np.repeat(np.arange(n_classes), n // n_classes),
        n_classes,
    )


def _covers_everything(dataset: Dataset, parts: list[Dataset]) -> bool:
    total = sum(len(p) for p in parts)
    if total != len(dataset):
        return False
    # Feature-sum as a cheap multiset fingerprint.
    part_sum = sum(float(p.features.sum()) for p in parts)
    return np.isclose(part_sum, float(dataset.features.sum()))


class TestIID:
    def test_partition_sizes_balanced(self) -> None:
        parts = partition_iid(_dataset(200), 7, np.random.default_rng(1))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 200

    def test_covers_everything(self) -> None:
        ds = _dataset(100)
        parts = partition_iid(ds, 4, np.random.default_rng(2))
        assert _covers_everything(ds, parts)

    def test_partitions_have_mixed_labels(self) -> None:
        parts = partition_iid(_dataset(500), 5, np.random.default_rng(3))
        for part in parts:
            # An iid shard of 100 samples over 5 classes should have >= 4
            # distinct classes with overwhelming probability.
            assert np.count_nonzero(part.class_counts()) >= 4

    def test_rejects_more_partitions_than_samples(self) -> None:
        with pytest.raises(ValueError, match="cannot split"):
            partition_iid(_dataset(5), 6, np.random.default_rng(0))

    def test_rejects_nonpositive_partitions(self) -> None:
        with pytest.raises(ValueError, match="n_partitions"):
            partition_iid(_dataset(), 0, np.random.default_rng(0))


class TestShards:
    def test_covers_everything(self) -> None:
        ds = _dataset(200)
        parts = partition_by_shards(ds, 10, 2, np.random.default_rng(4))
        assert _covers_everything(ds, parts)

    def test_label_concentration(self) -> None:
        # 2 shards per partition from label-sorted data: each partition
        # should see at most ~3 of the 5 classes (shards can straddle a
        # class boundary).
        parts = partition_by_shards(_dataset(500), 10, 2, np.random.default_rng(5))
        for part in parts:
            assert np.count_nonzero(part.class_counts()) <= 3

    def test_rejects_too_many_shards(self) -> None:
        with pytest.raises(ValueError, match="shards"):
            partition_by_shards(_dataset(10), 5, 4, np.random.default_rng(0))

    def test_rejects_nonpositive_shards(self) -> None:
        with pytest.raises(ValueError, match="shards_per_partition"):
            partition_by_shards(_dataset(), 5, 0, np.random.default_rng(0))


class TestDirichlet:
    def test_covers_everything(self) -> None:
        ds = _dataset(300)
        parts = partition_dirichlet(ds, 6, alpha=0.5, rng=np.random.default_rng(6))
        assert _covers_everything(ds, parts)

    def test_all_partitions_nonempty(self) -> None:
        parts = partition_dirichlet(
            _dataset(100), 10, alpha=0.05, rng=np.random.default_rng(7)
        )
        assert all(len(p) > 0 for p in parts)

    def test_small_alpha_is_skewed(self) -> None:
        ds = _dataset(1000, n_classes=5)
        skewed = partition_dirichlet(ds, 5, alpha=0.05, rng=np.random.default_rng(8))
        uniform = partition_dirichlet(ds, 5, alpha=100.0, rng=np.random.default_rng(8))

        def mean_label_entropy(parts: list[Dataset]) -> float:
            entropies = []
            for part in parts:
                p = part.class_counts() / len(part)
                p = p[p > 0]
                entropies.append(float(-(p * np.log(p)).sum()))
            return float(np.mean(entropies))

        assert mean_label_entropy(skewed) < mean_label_entropy(uniform)

    def test_rejects_nonpositive_alpha(self) -> None:
        with pytest.raises(ValueError, match="alpha"):
            partition_dirichlet(_dataset(), 5, alpha=0.0, rng=np.random.default_rng(0))
