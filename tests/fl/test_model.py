"""Unit tests for the logistic-regression model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.model import (
    LogisticRegressionConfig,
    LogisticRegressionModel,
    softmax,
)


def _toy_batch(n: int = 20, seed: int = 0, config: LogisticRegressionConfig | None = None):
    config = config or LogisticRegressionConfig(n_features=6, n_classes=3)
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, config.n_features))
    labels = rng.integers(0, config.n_classes, size=n)
    return config, features, labels


class TestSoftmax:
    def test_rows_sum_to_one(self) -> None:
        logits = np.random.default_rng(0).normal(size=(5, 4))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self) -> None:
        probs = softmax(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs[0], [1.0, 0.0], atol=1e-12)

    def test_shift_invariant(self) -> None:
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


class TestConfig:
    def test_n_parameters(self) -> None:
        config = LogisticRegressionConfig(n_features=784, n_classes=10)
        assert config.n_parameters == 784 * 10 + 10

    def test_parameter_bytes(self) -> None:
        config = LogisticRegressionConfig(n_features=784, n_classes=10)
        assert config.parameter_bytes(4) == (784 * 10 + 10) * 4
        assert config.parameter_bytes(8) == (784 * 10 + 10) * 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_features": 0},
            {"n_classes": 1},
            {"activation": "relu"},
            {"l2": -1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            LogisticRegressionConfig(**kwargs)


class TestParameters:
    def test_roundtrip(self) -> None:
        config, _, _ = _toy_batch()
        model = LogisticRegressionModel(config)
        flat = np.arange(config.n_parameters, dtype=float)
        model.set_parameters(flat)
        np.testing.assert_array_equal(model.get_parameters(), flat)

    def test_get_returns_copy(self) -> None:
        config, _, _ = _toy_batch()
        model = LogisticRegressionModel(config)
        flat = model.get_parameters()
        flat[0] = 99.0
        assert model.get_parameters()[0] == 0.0

    def test_set_rejects_wrong_shape(self) -> None:
        config, _, _ = _toy_batch()
        model = LogisticRegressionModel(config)
        with pytest.raises(ValueError, match="flat vector"):
            model.set_parameters(np.zeros(3))

    def test_clone_is_independent(self) -> None:
        config, _, _ = _toy_batch()
        model = LogisticRegressionModel(config)
        clone = model.clone()
        clone.weights[0, 0] = 5.0
        assert model.weights[0, 0] == 0.0

    def test_random_init_requires_rng(self) -> None:
        config, _, _ = _toy_batch()
        with pytest.raises(ValueError, match="requires an rng"):
            LogisticRegressionModel(config, init_scale=0.1)


class TestGradient:
    def test_gradient_matches_finite_differences(self) -> None:
        config, features, labels = _toy_batch(n=12)
        model = LogisticRegressionModel(config)
        rng = np.random.default_rng(1)
        model.set_parameters(rng.normal(0, 0.1, size=config.n_parameters))
        analytic = model.gradient_flat(features, labels)
        numeric = np.zeros_like(analytic)
        base = model.get_parameters()
        eps = 1e-6
        for i in range(len(base)):
            for sign in (+1, -1):
                perturbed = base.copy()
                perturbed[i] += sign * eps
                model.set_parameters(perturbed)
                numeric[i] += sign * model.loss(features, labels)
        numeric /= 2 * eps
        model.set_parameters(base)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_gradient_with_l2_matches_finite_differences(self) -> None:
        config = LogisticRegressionConfig(n_features=5, n_classes=3, l2=0.1)
        rng = np.random.default_rng(2)
        features = rng.normal(size=(10, 5))
        labels = rng.integers(0, 3, size=10)
        model = LogisticRegressionModel(config)
        model.set_parameters(rng.normal(0, 0.1, size=config.n_parameters))
        analytic = model.gradient_flat(features, labels)
        base = model.get_parameters()
        numeric = np.zeros_like(analytic)
        eps = 1e-6
        for i in range(len(base)):
            plus, minus = base.copy(), base.copy()
            plus[i] += eps
            minus[i] -= eps
            model.set_parameters(plus)
            up = model.loss(features, labels)
            model.set_parameters(minus)
            down = model.loss(features, labels)
            numeric[i] = (up - down) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_sgd_step_decreases_loss(self) -> None:
        config, features, labels = _toy_batch(n=50)
        model = LogisticRegressionModel(config)
        before = model.loss(features, labels)
        model.sgd_step(features, labels, learning_rate=0.5)
        assert model.loss(features, labels) < before


class TestPredictions:
    def test_zero_model_is_uniform(self) -> None:
        config, features, _ = _toy_batch()
        model = LogisticRegressionModel(config)
        probs = model.predict_proba(features)
        np.testing.assert_allclose(probs, 1.0 / config.n_classes)

    def test_zero_model_loss_is_log_classes(self) -> None:
        config, features, labels = _toy_batch()
        model = LogisticRegressionModel(config)
        assert model.loss(features, labels) == pytest.approx(
            np.log(config.n_classes), rel=1e-6
        )

    def test_sigmoid_head_probabilities_normalised(self) -> None:
        config = LogisticRegressionConfig(
            n_features=6, n_classes=3, activation="sigmoid"
        )
        rng = np.random.default_rng(3)
        model = LogisticRegressionModel(config)
        model.set_parameters(rng.normal(size=config.n_parameters))
        probs = model.predict_proba(rng.normal(size=(7, 6)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_sigmoid_training_learns(self) -> None:
        config = LogisticRegressionConfig(
            n_features=6, n_classes=3, activation="sigmoid"
        )
        rng = np.random.default_rng(4)
        features = rng.normal(size=(200, 6))
        labels = (features[:, 0] > 0).astype(int) + (features[:, 1] > 0).astype(int)
        model = LogisticRegressionModel(config)
        for _ in range(100):
            model.sgd_step(features, labels, 0.5)
        assert model.accuracy(features, labels) > 0.7

    def test_accuracy_on_learnable_task(self) -> None:
        config = LogisticRegressionConfig(n_features=4, n_classes=2)
        rng = np.random.default_rng(5)
        features = rng.normal(size=(300, 4))
        labels = (features @ np.array([1.0, -2.0, 0.5, 0.0]) > 0).astype(int)
        model = LogisticRegressionModel(config)
        for _ in range(200):
            model.sgd_step(features, labels, 0.5)
        assert model.accuracy(features, labels) > 0.95
