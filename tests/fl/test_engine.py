"""Execution-engine equivalence suite (ISSUE 3 acceptance tests).

Every backend must be a drop-in replacement for the sequential
reference: ``batched`` within ``atol=1e-10`` (bit-identical in
practice), ``pool`` bit-identical regardless of worker count.  The
suite sweeps seeds, K, E, FedProx, dropout, over-selection, and an
active fault plan with resilience policies, comparing final
parameters, full histories, resilience reports, and prototype energy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.models import make_demo_plan
from repro.faults.policies import ResilienceConfig, RetryPolicy
from repro.fl.engine import (
    BACKENDS,
    BatchedEngine,
    SequentialEngine,
    create_engine,
)
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.obs.observer import Observer

pytestmark = pytest.mark.perf_smoke

_CONFIG = LogisticRegressionConfig(n_features=8, n_classes=3)
_N_CLIENTS = 8


def _linear_task(n: int, seed: int = 0) -> Dataset:
    projection = np.random.default_rng(424242).normal(size=(8, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 8))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, 3)


# 317 samples over 8 clients -> two distinct partition sizes, so the
# batched engine exercises its size-grouping path every round.
_TRAIN = _linear_task(317)
_TEST = _linear_task(100, seed=99)
_PARTITIONS = partition_iid(_TRAIN, _N_CLIENTS, np.random.default_rng(1))


def _run(
    backend: str,
    with_faults: bool = False,
    observer: Observer | None = None,
    model_config: LogisticRegressionConfig = _CONFIG,
    **config_kwargs,
):
    """Train with ``backend`` and return (final_params, history, reports)."""
    defaults = dict(
        n_rounds=8,
        participants_per_round=3,
        local_epochs=2,
        sgd=SGDConfig(learning_rate=0.5, decay=0.99),
        backend=backend,
        pool_workers=2,
    )
    defaults.update(config_kwargs)
    clients = build_clients(_PARTITIONS, model_config)
    kwargs = {}
    if with_faults:
        plan = make_demo_plan(
            _N_CLIENTS,
            seed=13,
            crash_fraction=0.25,
            loss_fraction=0.3,
            loss_bad=0.95,
        )
        kwargs["fault_injector"] = FaultInjector(plan, _N_CLIENTS)
        kwargs["resilience"] = ResilienceConfig(
            retry=RetryPolicy(max_retries=1), min_quorum=1
        )
    trainer = FederatedTrainer(
        clients=clients,
        config=FederatedConfig(**defaults),
        train_eval=_TRAIN,
        test_eval=_TEST,
        observer=observer,
        **kwargs,
    )
    try:
        trainer.run()
    finally:
        trainer.close()
    return (
        trainer.coordinator.global_parameters,
        trainer.history,
        list(trainer.resilience_log),
    )


def _assert_equivalent(reference, candidate, exact: bool) -> None:
    params_ref, history_ref, reports_ref = reference
    params_new, history_new, reports_new = candidate
    if exact:
        np.testing.assert_array_equal(params_ref, params_new)
    else:
        np.testing.assert_allclose(params_new, params_ref, rtol=0, atol=1e-10)
    assert len(history_ref) == len(history_new)
    for rec_ref, rec_new in zip(history_ref.records, history_new.records):
        if exact:
            assert rec_ref == rec_new
        else:
            assert rec_ref.round_index == rec_new.round_index
            assert rec_ref.participants == rec_new.participants
            assert rec_ref.aggregated == rec_new.aggregated
            assert rec_ref.degraded == rec_new.degraded
            assert rec_ref.train_loss == pytest.approx(
                rec_new.train_loss, abs=1e-10
            )
            assert rec_ref.test_accuracy == rec_new.test_accuracy
    assert reports_ref == reports_new


class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("participants,epochs", [(1, 1), (3, 4), (5, 1)])
    def test_plain_fedavg(self, seed: int, participants: int, epochs: int):
        reference = _run(
            "sequential",
            seed=seed,
            participants_per_round=participants,
            local_epochs=epochs,
        )
        for backend in ("batched", "pool"):
            candidate = _run(
                backend,
                seed=seed,
                participants_per_round=participants,
                local_epochs=epochs,
            )
            _assert_equivalent(reference, candidate, exact=backend == "pool")

    @pytest.mark.parametrize("backend", ["batched", "pool"])
    def test_fedprox_and_l2(self, backend: str):
        regularised = LogisticRegressionConfig(n_features=8, n_classes=3, l2=0.01)
        kwargs = dict(
            proximal_mu=0.05,
            model_config=regularised,
            sgd=SGDConfig(learning_rate=0.4),
        )
        reference = _run("sequential", **kwargs)
        candidate = _run(backend, **kwargs)
        _assert_equivalent(reference, candidate, exact=backend == "pool")

    @pytest.mark.parametrize("backend", ["batched", "pool"])
    def test_dropout_and_overselection(self, backend: str):
        kwargs = dict(dropout_probability=0.3, overselection=2, seed=3)
        reference = _run("sequential", **kwargs)
        candidate = _run(backend, **kwargs)
        _assert_equivalent(reference, candidate, exact=backend == "pool")

    @pytest.mark.parametrize("backend", ["batched", "pool"])
    def test_active_fault_plan(self, backend: str):
        reference = _run("sequential", with_faults=True, n_rounds=10, seed=5)
        candidate = _run(backend, with_faults=True, n_rounds=10, seed=5)
        _assert_equivalent(reference, candidate, exact=backend == "pool")
        assert candidate[2], "fault plan produced no resilience reports"

    def test_pool_worker_count_invariant(self):
        one = _run("pool", pool_workers=1)
        three = _run("pool", pool_workers=3)
        _assert_equivalent(one, three, exact=True)

    def test_pool_minibatch_bit_identical(self):
        kwargs = dict(sgd=SGDConfig(learning_rate=0.3, batch_size=16))
        reference = _run("sequential", **kwargs)
        candidate = _run("pool", **kwargs)
        _assert_equivalent(reference, candidate, exact=True)


class TestBatchedFallback:
    def test_minibatch_falls_back_to_sequential(self):
        """Minibatch SGD is not vectorizable; results must still match."""
        kwargs = dict(sgd=SGDConfig(learning_rate=0.3, batch_size=16))
        reference = _run("sequential", **kwargs)
        observer = Observer()
        candidate = _run("batched", observer=observer, **kwargs)
        _assert_equivalent(reference, candidate, exact=True)
        # The fallback path never increments the batched-round counter.
        with pytest.raises(KeyError):
            observer.metrics.value("engine.batched_rounds")

    def test_batched_rounds_counted(self):
        observer = Observer()
        _run("batched", observer=observer, n_rounds=6)
        assert observer.metrics.value("engine.batched_rounds") == 6

    def test_stack_cache_hits(self):
        observer = Observer()
        _run(
            "batched",
            observer=observer,
            n_rounds=8,
            participants_per_round=_N_CLIENTS,
        )
        # All 8 clients participate every round: after round 1 every
        # stacked group comes from the cache.
        assert observer.metrics.value("engine.cache_hits", cache="stack") > 0

    def test_pool_chunks_and_tasks_counted(self):
        observer = Observer()
        _run(
            "pool",
            observer=observer,
            n_rounds=4,
            participants_per_round=3,
            pool_workers=2,
        )
        # 3 participants over 2 workers -> one chunked submission of 2
        # IPC tasks per round, covering all 3 clients.
        assert observer.metrics.value("engine.pool_chunks") == 8
        assert observer.metrics.value("engine.pool_tasks") == 12


class TestEvalCache:
    def test_degraded_rounds_hit_eval_cache(self):
        """A skipped round leaves parameters untouched -> cached eval."""
        clients = build_clients(_PARTITIONS, _CONFIG)
        observer = Observer()
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=5, participants_per_round=2, local_epochs=1
            ),
            train_eval=_TRAIN,
            test_eval=_TEST,
            observer=observer,
            resilience=ResilienceConfig(min_quorum=5),  # unreachable quorum
        )
        trainer.run()
        trainer.close()
        assert all(record.degraded for record in trainer.history.records)
        assert trainer.coordinator.parameters_version == 0
        # First degraded round evaluates version 0; rounds 2..5 hit.
        assert observer.metrics.value("engine.cache_hits", cache="eval") == 4
        losses = trainer.history.losses
        assert all(loss == losses[0] for loss in losses)

    def test_parameters_version_tracks_aggregation(self):
        clients = build_clients(_PARTITIONS, _CONFIG)
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=4, participants_per_round=2, local_epochs=1
            ),
            train_eval=_TRAIN,
            test_eval=_TEST,
        )
        trainer.run()
        trainer.close()
        assert trainer.coordinator.parameters_version == 4


class TestEngineLifecycle:
    def test_backends_tuple(self):
        assert BACKENDS == ("sequential", "batched", "pool", "population")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            FederatedConfig(
                n_rounds=1,
                participants_per_round=1,
                local_epochs=1,
                backend="gpu",
            )
        clients = build_clients(_PARTITIONS, _CONFIG)
        config = FederatedConfig(
            n_rounds=1, participants_per_round=1, local_epochs=1
        )
        with pytest.raises(ValueError, match="backend must be one of"):
            create_engine("gpu", clients, config, None)

    def test_pool_workers_validated(self):
        with pytest.raises(ValueError, match="pool_workers"):
            FederatedConfig(
                n_rounds=1,
                participants_per_round=1,
                local_epochs=1,
                pool_workers=0,
            )

    def test_close_is_idempotent(self):
        clients = build_clients(_PARTITIONS, _CONFIG)
        config = FederatedConfig(
            n_rounds=2,
            participants_per_round=2,
            local_epochs=1,
            backend="pool",
            pool_workers=2,
        )
        trainer = FederatedTrainer(
            clients=clients,
            config=config,
            train_eval=_TRAIN,
            test_eval=_TEST,
        )
        trainer.run()
        trainer.close()
        trainer.close()

    def test_engine_factory_types(self):
        clients = build_clients(_PARTITIONS, _CONFIG)
        config = FederatedConfig(
            n_rounds=1, participants_per_round=1, local_epochs=1
        )
        assert isinstance(
            create_engine("sequential", clients, config, None), SequentialEngine
        )
        assert isinstance(
            create_engine("batched", clients, config, None), BatchedEngine
        )


class TestPrototypeBackends:
    @pytest.mark.parametrize("backend", ["batched", "pool"])
    def test_prototype_energy_identical(self, backend: str):
        """The measured-energy pipeline is backend-independent."""

        def measure(chosen: str):
            prototype = HardwarePrototype(
                _TRAIN,
                _TEST,
                PrototypeConfig(
                    n_servers=6,
                    model=_CONFIG,
                    sgd=SGDConfig(learning_rate=0.5, decay=0.99),
                    backend=chosen,
                ),
            )
            return prototype.run(participants=3, epochs=2, n_rounds=4)

        reference = measure("sequential")
        candidate = measure(backend)
        assert candidate.total_energy_j == pytest.approx(
            reference.total_energy_j, rel=1e-12
        )
        assert candidate.rounds == reference.rounds
        np.testing.assert_allclose(
            [r.train_loss for r in candidate.history.records],
            [r.train_loss for r in reference.history.records],
            rtol=0,
            atol=1e-10,
        )
