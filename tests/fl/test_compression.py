"""Unit + integration tests for update compression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.compression import (
    ErrorFeedback,
    NoCompression,
    TopKCompressor,
    UniformQuantizer,
)
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients


class TestNoCompression:
    def test_identity_reconstruction(self) -> None:
        update = np.array([1.0, -2.0, 3.0])
        result = NoCompression().compress(update)
        np.testing.assert_array_equal(result.dense, update)

    def test_bytes_are_dense_plus_header(self) -> None:
        assert NoCompression().compressed_bytes(100) == 400 + 16

    def test_ratio_below_one_due_to_header(self) -> None:
        assert NoCompression().compression_ratio(100) < 1.0


class TestTopK:
    def test_keeps_largest_magnitudes(self) -> None:
        update = np.array([0.1, -5.0, 0.2, 4.0, -0.3])
        result = TopKCompressor(0.4).compress(update)  # k = 2
        np.testing.assert_array_equal(
            result.dense, [0.0, -5.0, 0.0, 4.0, 0.0]
        )

    def test_fraction_one_is_lossless(self) -> None:
        update = np.random.default_rng(0).normal(size=50)
        result = TopKCompressor(1.0).compress(update)
        np.testing.assert_array_equal(result.dense, update)

    def test_bytes_scale_with_fraction(self) -> None:
        small = TopKCompressor(0.01).compressed_bytes(10_000)
        large = TopKCompressor(0.5).compressed_bytes(10_000)
        assert small < large

    def test_ratio_beats_dense_for_sparse(self) -> None:
        assert TopKCompressor(0.05).compression_ratio(10_000) > 5.0

    def test_at_least_one_coordinate(self) -> None:
        result = TopKCompressor(0.001).compress(np.array([1.0, 2.0]))
        assert np.count_nonzero(result.dense) == 1

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_bad_fraction(self, bad: float) -> None:
        with pytest.raises(ValueError, match="fraction"):
            TopKCompressor(bad)


class TestQuantizer:
    def test_reconstruction_error_bounded(self) -> None:
        rng = np.random.default_rng(0)
        update = rng.normal(size=1000)
        result = UniformQuantizer(8).compress(update)
        scale = np.abs(update).max()
        levels = 2**7 - 1
        assert np.abs(result.dense - update).max() <= scale / levels + 1e-12

    def test_more_bits_less_error(self) -> None:
        update = np.random.default_rng(1).normal(size=500)
        coarse = UniformQuantizer(2).compress(update)
        fine = UniformQuantizer(12).compress(update)
        assert np.abs(fine.dense - update).sum() < np.abs(coarse.dense - update).sum()

    def test_zero_update_is_exact(self) -> None:
        result = UniformQuantizer(4).compress(np.zeros(10))
        np.testing.assert_array_equal(result.dense, 0.0)

    def test_bytes_scale_with_bits(self) -> None:
        assert UniformQuantizer(4).compressed_bytes(1000) < UniformQuantizer(
            8
        ).compressed_bytes(1000)
        # 8-bit: 1000 bytes + header; 4x smaller than float32.
        assert UniformQuantizer(8).compression_ratio(1000) > 3.5

    @pytest.mark.parametrize("bad", [0, 17, -1])
    def test_rejects_bad_bits(self, bad: int) -> None:
        with pytest.raises(ValueError, match="bits"):
            UniformQuantizer(bad)


class TestErrorFeedback:
    def test_residual_carried_forward(self) -> None:
        wrapper = ErrorFeedback(TopKCompressor(0.5))
        update = np.array([3.0, 1.0])  # top-1 keeps the 3.0
        first = wrapper.compress(0, update)
        np.testing.assert_array_equal(first.dense, [3.0, 0.0])
        assert wrapper.residual_norm(0) == pytest.approx(1.0)
        # A zero second update releases the stored residual.
        second = wrapper.compress(0, np.zeros(2))
        np.testing.assert_array_equal(second.dense, [0.0, 1.0])
        assert wrapper.residual_norm(0) == pytest.approx(0.0)

    def test_residuals_per_client(self) -> None:
        wrapper = ErrorFeedback(TopKCompressor(0.5))
        wrapper.compress(0, np.array([3.0, 1.0]))
        assert wrapper.residual_norm(0) > 0
        assert wrapper.residual_norm(1) == 0.0

    def test_mass_conservation_over_rounds(self) -> None:
        # Sum of transmitted mass + pending residual equals sum of inputs.
        rng = np.random.default_rng(2)
        wrapper = ErrorFeedback(TopKCompressor(0.2))
        total_in = np.zeros(20)
        total_out = np.zeros(20)
        for _ in range(30):
            update = rng.normal(size=20)
            total_in += update
            total_out += wrapper.compress(7, update).dense
        residual = total_in - total_out
        assert np.linalg.norm(residual) == pytest.approx(
            wrapper.residual_norm(7), rel=1e-9
        )

    def test_reset_clears_state(self) -> None:
        wrapper = ErrorFeedback(TopKCompressor(0.5))
        wrapper.compress(0, np.array([3.0, 1.0]))
        wrapper.reset()
        assert wrapper.residual_norm(0) == 0.0

    def test_rejects_nesting(self) -> None:
        with pytest.raises(ValueError, match="nest"):
            ErrorFeedback(ErrorFeedback(NoCompression()))


class TestTrainerIntegration:
    _CONFIG = LogisticRegressionConfig(n_features=6, n_classes=3)

    def _trainer(self, compressor=None) -> FederatedTrainer:
        projection = np.random.default_rng(11).normal(size=(6, 3))
        rng = np.random.default_rng(0)
        features = rng.normal(size=(400, 6))
        labels = np.argmax(features @ projection, axis=1)
        train = Dataset(features, labels, 3)
        partitions = partition_iid(train, 4, np.random.default_rng(1))
        clients = build_clients(partitions, self._CONFIG)
        return FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=25,
                participants_per_round=4,
                local_epochs=2,
                sgd=SGDConfig(learning_rate=0.5, decay=1.0),
            ),
            train_eval=train,
            test_eval=train,
            update_compressor=compressor,
        )

    def test_upload_bytes_counted_dense(self) -> None:
        trainer = self._trainer()
        trainer.run()
        expected = 25 * 4 * self._CONFIG.n_parameters * 4
        assert trainer.total_upload_bytes == expected

    def test_compression_reduces_upload_bytes(self) -> None:
        dense = self._trainer()
        dense.run()
        sparse = self._trainer(ErrorFeedback(TopKCompressor(0.05)))
        sparse.run()
        # The toy model has only 21 parameters, so the fixed header caps
        # the achievable ratio; at the paper's model size the 5% top-k
        # upload is ~10x smaller.
        assert sparse.total_upload_bytes < 0.5 * dense.total_upload_bytes
        paper_params = 784 * 10 + 10
        assert (
            TopKCompressor(0.05).compressed_bytes(paper_params)
            < 0.15 * paper_params * 4
        )

    def test_topk_with_error_feedback_still_learns(self) -> None:
        trainer = self._trainer(ErrorFeedback(TopKCompressor(0.1)))
        history = trainer.run()
        assert history.final_accuracy() > 0.75

    def test_quantized_training_close_to_dense(self) -> None:
        dense = self._trainer().run()
        quantized = self._trainer(UniformQuantizer(8)).run()
        assert quantized.final_accuracy() > dense.final_accuracy() - 0.05
