"""Tests for over-selection (straggler mitigation) in the trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.fl.metrics import RoundRecord
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

_CONFIG = LogisticRegressionConfig(n_features=6, n_classes=3)


def _task(n: int, seed: int = 0) -> Dataset:
    projection = np.random.default_rng(99).normal(size=(6, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 6))
    labels = np.argmax(features @ projection, axis=1)
    return Dataset(features, labels, 3)


def _trainer(overselection: int, ranker=None, n_clients: int = 8):
    train = _task(400)
    partitions = partition_iid(train, n_clients, np.random.default_rng(1))
    clients = build_clients(partitions, _CONFIG)
    return FederatedTrainer(
        clients=clients,
        config=FederatedConfig(
            n_rounds=5,
            participants_per_round=3,
            local_epochs=2,
            overselection=overselection,
            sgd=SGDConfig(learning_rate=0.5, decay=1.0),
        ),
        train_eval=train,
        test_eval=train,
        completion_ranker=ranker,
    )


class TestOverselection:
    def test_selects_k_plus_m_aggregates_k(self) -> None:
        trainer = _trainer(overselection=2)
        trainer.run()
        for record in trainer.history.records:
            assert len(record.participants) == 5
            assert len(record.aggregated) == 3
            assert set(record.aggregated) <= set(record.participants)

    def test_zero_overselection_aggregates_everyone(self) -> None:
        trainer = _trainer(overselection=0)
        trainer.run()
        for record in trainer.history.records:
            assert record.aggregated == record.participants

    def test_ranker_determines_winners(self) -> None:
        # A ranker that always puts the highest ids first.
        def ranker(round_index: int, selected: list[int]) -> list[int]:
            return sorted(selected, reverse=True)

        trainer = _trainer(overselection=2, ranker=ranker)
        trainer.run()
        for record in trainer.history.records:
            expected = tuple(sorted(sorted(record.participants, reverse=True)[:3]))
            assert record.aggregated == expected

    def test_stragglers_still_burn_gradient_steps(self) -> None:
        plain = _trainer(overselection=0)
        plain.run()
        over = _trainer(overselection=2)
        over.run()
        # 5 rounds x (3 vs 5 clients) x 2 epochs.
        assert plain.total_gradient_steps == 5 * 3 * 2
        assert over.total_gradient_steps == 5 * 5 * 2

    def test_training_still_converges(self) -> None:
        trainer = _trainer(overselection=2)
        history = trainer.run()
        assert history.final_loss() < history.losses[0]

    def test_rejects_overselection_beyond_population(self) -> None:
        with pytest.raises(ValueError, match="exceeds"):
            _trainer(overselection=10)

    def test_rejects_negative_overselection(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            FederatedConfig(
                n_rounds=1,
                participants_per_round=1,
                local_epochs=1,
                overselection=-1,
            )

    def test_record_rejects_foreign_aggregated_ids(self) -> None:
        with pytest.raises(ValueError, match="subset"):
            RoundRecord(
                round_index=0,
                train_loss=1.0,
                test_accuracy=0.5,
                participants=(0, 1),
                local_epochs=1,
                learning_rate=0.1,
                aggregated=(2,),
            )

    def test_dropout_interacts_with_overselection(self) -> None:
        train = _task(400)
        partitions = partition_iid(train, 8, np.random.default_rng(1))
        clients = build_clients(partitions, _CONFIG)
        trainer = FederatedTrainer(
            clients=clients,
            config=FederatedConfig(
                n_rounds=10,
                participants_per_round=3,
                local_epochs=1,
                overselection=2,
                dropout_probability=0.4,
                seed=3,
            ),
            train_eval=train,
            test_eval=train,
        )
        trainer.run()
        # Aggregated counts can fall below K when dropouts eat into the
        # over-provisioned pool, but never exceed K.
        sizes = [len(r.aggregated) for r in trainer.history.records]
        assert max(sizes) <= 3
        assert min(sizes) >= 0
