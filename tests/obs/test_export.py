"""Standard-format exports: OpenMetrics text and Chrome trace JSON.

No prometheus_client or perfetto in the container, so these tests parse
the exports by hand against the format rules a real scraper/viewer
enforces: ``# TYPE`` before samples, cumulative monotone ``_bucket``
series ending in ``+Inf``, ``# EOF`` termination, escaped label values;
trace documents must be plain JSON with microsecond ``"X"`` events.
"""

from __future__ import annotations

import json
import math
import re

import pytest

from repro.obs import (
    MetricsRegistry,
    Observer,
    to_chrome_trace,
    to_openmetrics,
    write_chrome_trace,
    write_openmetrics,
)

pytestmark = pytest.mark.telemetry_smoke

_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-Inf|NaN|[-+0-9.e]+)$"
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("energy.joules", phase="training").inc(2.5)
    registry.counter("energy.joules", phase="uploading").inc(1.5)
    registry.gauge("queue.depth").set(3)
    histogram = registry.histogram(
        "round.duration_s", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.7, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestOpenMetrics:
    def test_every_line_is_type_comment_sample_or_eof(self):
        text = to_openmetrics(_sample_registry())
        assert text.endswith("# EOF\n")
        for line in text.splitlines()[:-1]:
            assert line.startswith("# TYPE ") or _SAMPLE.match(line), line

    def test_type_line_precedes_its_family_and_names_are_sanitized(self):
        lines = to_openmetrics(_sample_registry()).splitlines()
        type_index = lines.index("# TYPE energy_joules counter")
        samples = [
            line for line in lines if line.startswith("energy_joules{")
        ]
        assert samples
        assert all(lines.index(s) > type_index for s in samples)
        assert 'phase="training"' in "\n".join(samples)
        # The dotted internal name never leaks.
        assert "energy.joules" not in "\n".join(lines)

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        lines = to_openmetrics(_sample_registry()).splitlines()
        buckets = [
            line
            for line in lines
            if line.startswith("round_duration_s_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert 'le="+Inf"' in buckets[-1]
        # +Inf bucket equals _count equals total observations.
        count_line = next(
            line for line in lines if line.startswith("round_duration_s_count")
        )
        assert int(count_line.rsplit(" ", 1)[1]) == 5
        assert counts[-1] == 5
        sum_line = next(
            line for line in lines if line.startswith("round_duration_s_sum")
        )
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(56.25)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("weird", note='say "hi"\nback\\slash').inc()
        text = to_openmetrics(registry)
        assert r'note="say \"hi\"\nback\\slash"' in text

    def test_non_finite_values_render_per_spec(self):
        registry = MetricsRegistry()
        registry.gauge("inf").set(math.inf)
        registry.gauge("nan").set(math.nan)
        text = to_openmetrics(registry)
        assert "inf +Inf" in text
        assert "nan NaN" in text

    def test_mixed_kind_family_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("clash.metric").inc()
        registry.gauge("clash_metric").set(1)  # sanitizes to the same family
        with pytest.raises(ValueError, match="mixes kinds"):
            to_openmetrics(registry)

    def test_write_creates_parents(self, tmp_path):
        path = write_openmetrics(
            _sample_registry(), tmp_path / "deep" / "m.txt"
        )
        assert path.read_text().endswith("# EOF\n")


class TestChromeTrace:
    def _traced_observer(self) -> Observer:
        observer = Observer()
        with observer.span("unit", unit="u1") as outer:
            outer.set_attribute("worker", 41)
            with observer.span("round", round=0):
                pass
        with observer.span("unit", unit="u2") as other:
            other.set_attribute("worker", 42)
        return observer

    def test_document_shape_and_complete_events(self, tmp_path):
        observer = self._traced_observer()
        path = write_chrome_trace(observer.tracer, tmp_path / "t.json")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in spans} == {"unit", "round"}
        for event in spans:
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float)
        # Span attributes survive as args.
        round_event = next(e for e in spans if e["name"] == "round")
        assert round_event["args"]["round"] == 0

    def test_workers_land_on_separate_named_tracks(self):
        document = to_chrome_trace(self._traced_observer().tracer)
        units = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "unit"
        ]
        assert len({e["tid"] for e in units}) == 2
        thread_names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert thread_names == {"worker 41", "worker 42"}
        assert any(
            e.get("name") == "process_name" for e in document["traceEvents"]
        )

    def test_unfinished_span_is_clamped_not_dropped(self):
        from repro.obs import Span

        observer = Observer()
        # A worker killed mid-region leaves a root with no end time.
        span = Span("stuck", {}, 0.0)
        observer.tracer.roots.append(span)
        with observer.span("done"):
            pass
        document = to_chrome_trace(observer.tracer)
        stuck = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "stuck"
        )
        assert stuck["dur"] >= 0
        assert span.finished is False
