"""Telemetry spool transport: crash-safe writes, tail-and-merge reads.

The spool protocol's one load-bearing promise is the *readable prefix*:
because every record is one complete flushed line, a worker killed at
any instant leaves a file whose complete lines parse and whose (at most
one) partial line is silently deferred.  These tests pin that promise
from both ends — the writer (:class:`TelemetrySpool`/:class:`SpoolObserver`)
and the readers (:func:`read_spool_records`/:class:`TelemetryCollector`).
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Observer,
    SpoolObserver,
    TelemetryCollector,
    TelemetrySpool,
    clear_spool_context,
    get_spool_context,
    read_spool_records,
    set_spool_context,
)

pytestmark = pytest.mark.telemetry_smoke


class TestTelemetrySpool:
    def test_meta_line_is_first_and_identifies_the_writer(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "u.jsonl", unit="u1", worker=42)
        spool.close()
        records, _ = read_spool_records(spool.path)
        assert records[0] == {
            "kind": "meta",
            "unit": "u1",
            "worker": 42,
            "role": "unit",
        }

    def test_every_record_is_one_flushed_line(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "u.jsonl", unit="u1")
        spool.append("event", event={"category": "x"})
        # No close, no flush call: the contract is flush-per-append, so
        # the bytes must already be on disk.
        raw = (tmp_path / "u.jsonl").read_text()
        assert raw.endswith("\n")
        assert len(raw.splitlines()) == 2
        spool.close()

    def test_finish_seals_and_further_appends_are_noops(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "u.jsonl", unit="u1")
        spool.finish(status="ok", duration_s=1.5)
        spool.append("event", event={"category": "late"})
        records, _ = read_spool_records(spool.path)
        assert records[-1]["kind"] == "end"
        assert records[-1]["duration_s"] == 1.5


class TestReadSpoolRecords:
    def test_partial_trailing_line_is_deferred_not_lost(self, tmp_path):
        path = tmp_path / "u.jsonl"
        spool = TelemetrySpool(path, unit="u1")
        spool.append("event", event={"category": "round.end"})
        spool.close()
        # Simulate a crash mid-write: a dangling half record.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "ev')
        records, offset = read_spool_records(path)
        assert [r["kind"] for r in records] == ["meta", "event"]
        # Later the line completes — the remembered offset picks up
        # exactly the finished record, nothing twice.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('ent": {"category": "late"}}\n')
        more, _ = read_spool_records(path, offset)
        assert [r["kind"] for r in more] == ["event"]
        assert more[0]["event"]["category"] == "late"

    def test_corrupt_complete_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "u.jsonl"
        spool = TelemetrySpool(path, unit="u1")
        spool.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage not json\n")
            handle.write(json.dumps({"kind": "end", "status": "ok"}) + "\n")
        records, _ = read_spool_records(path)
        assert [r["kind"] for r in records] == ["meta", "end"]


class TestSpoolObserver:
    def test_events_tee_live_and_finalize_dumps_state(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "u.jsonl", unit="u1")
        observer = SpoolObserver(spool)
        observer.emit("round.end", round=0)
        # Live: the event is on disk before finalize.
        records, _ = read_spool_records(spool.path)
        assert [r["kind"] for r in records] == ["meta", "event"]
        observer.counter("energy.joules", phase="training").inc(2.5)
        with observer.span("round", round=0):
            pass
        observer.finalize(duration_s=0.25)
        records, _ = read_spool_records(spool.path)
        kinds = [r["kind"] for r in records]
        assert kinds == ["meta", "event", "metrics", "spans", "end"]
        # finalize is idempotent on a sealed spool.
        observer.finalize()
        again, _ = read_spool_records(spool.path)
        assert len(again) == len(records)


class TestTelemetryCollector:
    def _spool(self, tmp_path, name, unit, worker, joules):
        spool = TelemetrySpool(
            tmp_path / name, unit=unit, worker=worker
        )
        observer = SpoolObserver(spool)
        observer.emit("round.end", round=0)
        observer.counter("energy.joules", phase="training").inc(joules)
        observer.finalize()
        return observer

    def test_merged_metrics_keep_worker_identity_yet_sum(self, tmp_path):
        self._spool(tmp_path, "a.jsonl", "unit-a", 100, 1.25)
        self._spool(tmp_path, "b.jsonl", "unit-b", 200, 2.5)
        parent = Observer()
        collector = TelemetryCollector(tmp_path, observer=parent)
        assert collector.poll() > 0
        # Distinct per worker...
        assert parent.metrics.value(
            "energy.joules", phase="training", unit="unit-a", worker=100
        ) == pytest.approx(1.25)
        # ...and summing to the campaign total.
        assert parent.metrics.sum_values("energy.joules") == pytest.approx(
            3.75
        )

    def test_merged_events_carry_unit_and_source_clock(self, tmp_path):
        self._spool(tmp_path, "a.jsonl", "unit-a", 100, 1.0)
        parent = Observer()
        TelemetryCollector(tmp_path, observer=parent).poll()
        round_events = [
            e for e in parent.events if e.category == "round.end"
        ]
        assert len(round_events) == 1
        assert round_events[0].fields["unit"] == "unit-a"
        assert round_events[0].fields["worker"] == 100
        assert "src_wall_s" in round_events[0].fields
        # The sealed spool surfaces as a spool.end marker.
        assert any(e.category == "spool.end" for e in parent.events)

    def test_poll_is_incremental(self, tmp_path):
        self._spool(tmp_path, "a.jsonl", "unit-a", 100, 1.0)
        parent = Observer()
        collector = TelemetryCollector(tmp_path, observer=parent)
        first = collector.poll()
        assert first > 0
        assert collector.poll() == 0
        assert parent.metrics.sum_values("energy.joules") == pytest.approx(
            1.0
        )

    def test_counter_deltas_accumulate_across_partial_dumps(self, tmp_path):
        spool = TelemetrySpool(tmp_path / "a.jsonl", unit="u", worker=7)
        parent = Observer()
        collector = TelemetryCollector(tmp_path, observer=parent)
        for _ in range(3):
            # Each dump is a fresh delta registry, the engine-worker
            # pattern: merged counters must add, not overwrite.
            from repro.obs import MetricsRegistry

            delta = MetricsRegistry()
            delta.counter("engine.pool_chunks_trained").inc(1)
            spool.record_metrics(delta)
            collector.poll()
        assert parent.metrics.sum_values(
            "engine.pool_chunks_trained"
        ) == pytest.approx(3)
        spool.close()

    def test_missing_directory_is_zero_not_error(self, tmp_path):
        collector = TelemetryCollector(tmp_path / "nope", observer=Observer())
        assert collector.poll() == 0


class TestSpoolContext:
    def test_set_get_clear_roundtrip(self, tmp_path):
        clear_spool_context()
        assert get_spool_context() is None
        set_spool_context(tmp_path, "unit-x")
        assert get_spool_context() == (str(tmp_path), "unit-x")
        clear_spool_context()
        assert get_spool_context() is None
