"""Unit tests for the structured event log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.events import EventLog, ObsEvent


class TestEmit:
    def test_events_keep_emission_order_and_sequence(self) -> None:
        log = EventLog()
        log.emit("round.start", round=0)
        log.emit("client.train", client=3)
        log.emit("round.end", round=0)
        assert [e.category for e in log] == [
            "round.start",
            "client.train",
            "round.end",
        ]
        assert [e.sequence for e in log] == [0, 1, 2]

    def test_wall_time_is_monotonic(self) -> None:
        ticks = iter([0.0, 1.0, 2.5, 2.5])
        log = EventLog(clock=lambda: next(ticks))
        first = log.emit("a")
        second = log.emit("b")
        third = log.emit("c")
        assert first.wall_time_s == 1.0  # relative to the log's epoch
        assert second.wall_time_s == 2.5
        assert third.wall_time_s == 2.5

    def test_sim_time_recorded_separately(self) -> None:
        log = EventLog()
        event = log.emit("sim.event", sim_time=42.5, label="round-start")
        assert event.sim_time_s == 42.5
        assert log.emit("round.start").sim_time_s is None

    def test_fields_captured(self) -> None:
        log = EventLog()
        event = log.emit("client.train", client=3, gradient_steps=20)
        assert event.fields == {"client": 3, "gradient_steps": 20}

    def test_empty_category_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-empty"):
            EventLog().emit("")


class TestQueries:
    def test_categories_counts(self) -> None:
        log = EventLog()
        log.emit("round.start")
        log.emit("client.train")
        log.emit("client.train")
        assert log.categories() == {"round.start": 1, "client.train": 2}

    def test_filter_matches_exact_and_children(self) -> None:
        log = EventLog()
        log.emit("client.train")
        log.emit("client.upload")
        log.emit("client")
        log.emit("clients.other")
        assert [e.category for e in log.filter("client")] == [
            "client.train",
            "client.upload",
            "client",
        ]

    def test_len_and_indexing(self) -> None:
        log = EventLog()
        log.emit("a")
        log.emit("b")
        assert len(log) == 2
        assert log[1].category == "b"


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self) -> None:
        log = EventLog()
        log.emit("round.start", round=0, selected=[1, 2])
        log.emit("sim.event", sim_time=3.25, label="round-start")
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert len(restored) == len(log)
        for original, loaded in zip(log, restored):
            assert loaded.sequence == original.sequence
            assert loaded.category == original.category
            assert loaded.wall_time_s == original.wall_time_s
            assert loaded.sim_time_s == original.sim_time_s
        assert restored[0].fields == {"round": 0, "selected": [1, 2]}

    def test_numpy_fields_serialise(self) -> None:
        log = EventLog()
        log.emit(
            "round.end",
            loss=np.float64(0.25),
            participants=np.array([1, 2]),
            round=np.int64(3),
        )
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert restored[0].fields == {
            "loss": 0.25,
            "participants": [1, 2],
            "round": 3,
        }

    def test_save_and_load_file(self, tmp_path) -> None:
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y="text")
        path = tmp_path / "events.jsonl"
        log.save_jsonl(path)
        assert len(path.read_text().strip().splitlines()) == 2
        restored = EventLog.load_jsonl(path)
        assert [e.category for e in restored] == ["a", "b"]

    def test_empty_log_round_trips(self, tmp_path) -> None:
        path = tmp_path / "empty.jsonl"
        EventLog().save_jsonl(path)
        assert len(EventLog.load_jsonl(path)) == 0

    def test_emission_continues_after_load(self) -> None:
        log = EventLog()
        log.emit("a")
        log.emit("b")
        restored = EventLog.from_jsonl(log.to_jsonl())
        assert restored.emit("c").sequence == 2

    def test_invalid_json_rejected(self) -> None:
        with pytest.raises(ValueError, match="invalid JSON"):
            EventLog.from_jsonl("not json")

    def test_malformed_record_rejected(self) -> None:
        with pytest.raises(ValueError, match="malformed event"):
            ObsEvent.from_dict({"category": "x"})
