"""Unit tests for the span tracer."""

from __future__ import annotations

import pytest

from repro.obs.tracing import NULL_SPAN, NullTracer, Tracer


def _ticking_clock(step: float = 1.0):
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


class TestSpanNesting:
    def test_children_nest_under_parent(self) -> None:
        tracer = Tracer()
        with tracer.span("round", round=0) as round_span:
            with tracer.span("client.train", client=1):
                pass
            with tracer.span("client.train", client=2):
                pass
        assert len(tracer.roots) == 1
        assert [c.name for c in round_span.children] == [
            "client.train",
            "client.train",
        ]
        assert [c.attributes["client"] for c in round_span.children] == [1, 2]

    def test_sibling_roots(self) -> None:
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_current_tracks_stack(self) -> None:
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
                assert tracer.depth == 2
            assert tracer.current is outer
        assert tracer.current is None

    def test_span_closed_on_exception(self) -> None:
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        assert tracer.roots[0].finished
        assert tracer.current is None

    def test_empty_name_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-empty"):
            with Tracer().span(""):
                pass


class TestDurations:
    def test_duration_from_clock(self) -> None:
        tracer = Tracer(clock=_ticking_clock())
        with tracer.span("outer"):  # start 1
            with tracer.span("inner"):  # start 2, end 3
                pass
        # outer: start 1, end 4.
        assert tracer.roots[0].duration_s == 3.0
        assert tracer.roots[0].children[0].duration_s == 1.0

    def test_unfinished_duration_raises(self) -> None:
        tracer = Tracer()
        with tracer.span("open") as span:
            with pytest.raises(ValueError, match="not finished"):
                _ = span.duration_s


class TestExport:
    def test_to_dict_recursive(self) -> None:
        tracer = Tracer(clock=_ticking_clock())
        with tracer.span("round", round=7):
            with tracer.span("aggregate"):
                pass
        tree = tracer.to_dicts()[0]
        assert tree["name"] == "round"
        assert tree["attributes"] == {"round": 7}
        assert tree["duration_s"] == 3.0
        assert tree["children"][0]["name"] == "aggregate"
        assert tree["children"][0]["children"] == []

    def test_iter_and_find(self) -> None:
        tracer = Tracer()
        with tracer.span("round"):
            with tracer.span("client.train"):
                pass
        with tracer.span("round"):
            pass
        assert [s.name for s in tracer.iter_spans()] == [
            "round",
            "client.train",
            "round",
        ]
        assert len(tracer.find("round")) == 2

    def test_render_text(self) -> None:
        tracer = Tracer()
        with tracer.span("round", round=0):
            with tracer.span("inner"):
                pass
        text = tracer.render_text()
        assert "round" in text
        assert "  inner" in text
        assert "(no spans" in Tracer().render_text()


class TestNullTracer:
    def test_records_nothing(self) -> None:
        tracer = NullTracer()
        with tracer.span("round", round=0) as span:
            assert span is NULL_SPAN
            with tracer.span("inner"):
                pass
        assert tracer.roots == []

    def test_null_span_is_safe(self) -> None:
        NULL_SPAN.set_attribute("ignored", 1)
        assert NULL_SPAN.duration_s == 0.0
