"""Unit tests for the hot-path profiler."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import HotPathProfiler, _NOOP_TIMER


def _ticking_clock(step: float = 1.0):
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


class TestEnabledProfiler:
    def test_timer_observes_clock_delta(self) -> None:
        registry = MetricsRegistry()
        profiler = HotPathProfiler(registry, clock=_ticking_clock(0.5))
        with profiler.timer("profile.step_s"):
            pass
        histogram = registry.histogram("profile.step_s")
        assert histogram.count == 1
        assert histogram.sum == 0.5

    def test_bound_timer_reusable_in_loop(self) -> None:
        registry = MetricsRegistry()
        profiler = HotPathProfiler(registry, clock=_ticking_clock(1.0))
        timer = profiler.bind("profile.epoch_s")
        for _ in range(3):
            with timer:
                pass
        histogram = registry.histogram("profile.epoch_s")
        assert histogram.count == 3
        assert histogram.sum == 3.0

    def test_labels_route_to_separate_histograms(self) -> None:
        registry = MetricsRegistry()
        profiler = HotPathProfiler(registry, clock=_ticking_clock(1.0))
        with profiler.timer("profile.phase_s", phase="train"):
            pass
        with profiler.timer("profile.phase_s", phase="upload"):
            pass
        assert registry.histogram("profile.phase_s", phase="train").count == 1
        assert registry.histogram("profile.phase_s", phase="upload").count == 1

    def test_observe_records_external_duration(self) -> None:
        registry = MetricsRegistry()
        profiler = HotPathProfiler(registry)
        profiler.observe("profile.aggregate_s", 0.125)
        assert registry.histogram("profile.aggregate_s").sum == 0.125


class TestDisabledProfiler:
    def test_disabled_timer_is_shared_noop(self) -> None:
        registry = MetricsRegistry()
        profiler = HotPathProfiler(registry, enabled=False)
        assert profiler.timer("profile.step_s") is _NOOP_TIMER
        assert profiler.bind("profile.step_s") is _NOOP_TIMER
        with profiler.timer("profile.step_s"):
            pass
        profiler.observe("profile.step_s", 1.0)
        assert len(registry) == 0
