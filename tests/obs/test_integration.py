"""End-to-end observability: instrumented runs reconcile with ground truth.

These are the acceptance tests of the ``repro.obs`` subsystem: a
:class:`FederatedTrainer` run, a :class:`Simulator` run, and a full
:class:`HardwarePrototype` run each produce an event log and a metrics
snapshot whose counters match the quantities the code under test reports
itself — and with no observer attached, every public API behaves
unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acs import ACSSolver
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.obs import NULL_OBSERVER, EventLog, NullObserver, Observer
from repro.sim.engine import Simulator

_CONFIG = LogisticRegressionConfig(n_features=8, n_classes=3)


def _linear_task(n: int, seed: int = 0) -> Dataset:
    projection = np.random.default_rng(424242).normal(size=(8, 3))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 8))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, 3)


def _observed_trainer(observer: Observer | None, **config_kwargs) -> FederatedTrainer:
    train = _linear_task(240)
    test = _linear_task(80, seed=99)
    partitions = partition_iid(train, 5, np.random.default_rng(1))
    clients = build_clients(partitions, _CONFIG)
    defaults = dict(
        n_rounds=6,
        participants_per_round=2,
        local_epochs=3,
        sgd=SGDConfig(learning_rate=0.5, decay=1.0),
    )
    defaults.update(config_kwargs)
    return FederatedTrainer(
        clients=clients,
        config=FederatedConfig(**defaults),
        train_eval=train,
        test_eval=test,
        observer=observer,
    )


@pytest.mark.telemetry_smoke
class TestTrainerTelemetry:
    def test_counters_reconcile_with_trainer_totals(self) -> None:
        observer = Observer()
        trainer = _observed_trainer(observer)
        trainer.run()
        metrics = observer.metrics
        assert metrics.value("fl.gradient_steps") == trainer.total_gradient_steps
        assert metrics.value("fl.upload_bytes") == trainer.total_upload_bytes
        assert metrics.value("fl.uploads") == trainer.total_uploads
        assert metrics.value("fl.rounds") == len(trainer.history)
        assert metrics.value("fl.aggregations") == len(trainer.history)

    def test_event_stream_ordered_per_round(self) -> None:
        observer = Observer()
        trainer = _observed_trainer(observer, n_rounds=3)
        trainer.run()
        categories = [e.category for e in observer.events]
        per_round = [
            "round.start",
            "client.train",
            "client.upload",
            "client.train",
            "client.upload",
            "server.aggregate",
            "round.end",
        ]
        assert categories == per_round * 3
        rounds = [e.fields["round"] for e in observer.events.filter("round.start")]
        assert rounds == [0, 1, 2]

    def test_round_end_payload_matches_history_records(self) -> None:
        observer = Observer()
        trainer = _observed_trainer(observer, n_rounds=4)
        trainer.run()
        ends = observer.events.filter("round.end")
        records = trainer.history.to_records()
        for event, record in zip(ends, records):
            payload = {k: v for k, v in event.fields.items() if k != "duration_s"}
            assert payload == record

    def test_span_tree_nests_rounds(self) -> None:
        observer = Observer()
        _observed_trainer(observer, n_rounds=2).run()
        rounds = observer.tracer.find("round")
        assert len(rounds) == 2
        assert all(span.finished for span in rounds)
        assert [span.attributes["round"] for span in rounds] == [0, 1]

    def test_dropout_events_flagged_and_uploads_reconcile(self) -> None:
        observer = Observer()
        trainer = _observed_trainer(
            observer, n_rounds=8, dropout_probability=0.5, seed=3
        )
        trainer.run()
        trains = observer.events.filter("client.train")
        uploads = observer.events.filter("client.upload")
        dropped = sum(1 for e in trains if e.fields["dropped"])
        assert len(uploads) == len(trains) - dropped
        assert observer.metrics.value("fl.uploads") == trainer.total_uploads

    def test_profiling_opt_in(self) -> None:
        plain = Observer()
        _observed_trainer(plain, n_rounds=2).run()
        assert "profile.client_train_s" not in plain.metrics.snapshot()

        profiled = Observer(profile_hot_paths=True)
        trainer = _observed_trainer(profiled, n_rounds=2)
        trainer.run()
        histogram = profiled.metrics.histogram("profile.client_train_s")
        assert histogram.count == 2 * trainer.config.participants_per_round
        assert profiled.metrics.histogram("profile.aggregate_s").count == 2


@pytest.mark.telemetry_smoke
class TestSimulatorTelemetry:
    def test_events_processed_counter_reconciles(self) -> None:
        observer = Observer()
        sim = Simulator(observer=observer)
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda s: None, label="tick")
        sim.run()
        assert observer.metrics.value("sim.events_processed") == 3
        assert sim.events_processed == 3

    def test_trace_labels_bridged_with_sim_time(self) -> None:
        observer = Observer()
        sim = Simulator(observer=observer)
        sim.schedule(1.5, lambda s: None, label="round-start")
        sim.schedule(2.0, lambda s: None)  # unlabelled: counted, not logged
        sim.run()
        bridged = observer.events.filter("sim.event")
        assert [(e.sim_time_s, e.fields["label"]) for e in bridged] == [
            (1.5, "round-start")
        ]
        assert observer.metrics.value("sim.events_processed") == 2
        assert sim.trace == [(1.5, "round-start")]

    def test_cancelled_events_not_counted(self) -> None:
        observer = Observer()
        sim = Simulator(observer=observer)
        keep = sim.schedule(1.0, lambda s: None, label="keep")
        drop = sim.schedule(0.5, lambda s: None, label="drop")
        sim.cancel(drop)
        sim.run()
        assert observer.metrics.value("sim.events_processed") == 1
        assert [e.fields["label"] for e in observer.events.filter("sim.event")] == [
            "keep"
        ]


@pytest.mark.telemetry_smoke
class TestPrototypeTelemetry:
    @pytest.fixture(scope="class")
    def observed_run(self):
        train = generate_synthetic_mnist(240, seed=3)
        test = generate_synthetic_mnist(60, seed=4)
        observer = Observer()
        prototype = HardwarePrototype(
            train, test, PrototypeConfig(n_servers=4), observer=observer
        )
        result = prototype.run(participants=2, epochs=3, n_rounds=5)
        return observer, prototype, result

    def test_phase_energy_counters_reconcile(self, observed_run) -> None:
        observer, _, result = observed_run
        assert observer.metrics.sum_values("energy.joules") == pytest.approx(
            result.total_energy_j, abs=1e-9
        )
        snapshot = observer.metrics.snapshot()
        for phase in ("downloading", "training", "uploading"):
            assert snapshot[f"energy.joules{{phase={phase}}}"] > 0

    def test_full_stack_event_log(self, observed_run) -> None:
        observer, _, result = observed_run
        categories = observer.events.categories()
        assert categories["round.start"] == result.rounds
        assert categories["prototype.round"] == result.rounds
        assert categories["sim.event"] == result.rounds + 1  # + final-upload
        assert categories["client.train"] == 2 * result.rounds

    def test_per_round_energy_in_events(self, observed_run) -> None:
        observer, _, result = observed_run
        per_round = [
            e.fields["energy_j"] for e in observer.events.filter("prototype.round")
        ]
        np.testing.assert_allclose(per_round, result.energy_per_round_j)

    def test_jsonl_dump_round_trips(self, observed_run, tmp_path) -> None:
        observer, _, _ = observed_run
        path = tmp_path / "telemetry.jsonl"
        n_before = len(observer.events)
        observer.dump_jsonl(path)
        restored = EventLog.load_jsonl(path)
        assert len(restored) == n_before + 1  # + metrics.snapshot line
        assert restored[-1].category == "metrics.snapshot"
        assert "energy.joules{phase=training}" in restored[-1].fields["metrics"]


class TestACSTelemetry:
    def test_iteration_events_match_iterates(self, default_objective) -> None:
        observer = Observer()
        solver = ACSSolver(default_objective, observer=observer)
        result = solver.solve()
        events = observer.events.filter("acs.iteration")
        assert len(events) == result.n_iterations
        np.testing.assert_allclose(
            [e.fields["objective"] for e in events],
            [it.objective_value for it in result.iterates],
        )
        assert observer.metrics.value("acs.objective") == pytest.approx(
            result.objective_value
        )
        solve_events = observer.events.filter("acs.solve")
        assert len(solve_events) == 1
        assert solve_events[0].fields["converged"] == result.converged


class TestDisabledObservability:
    """With no observer (or a null one) every public API works unchanged."""

    @pytest.mark.parametrize("observer", [None, NULL_OBSERVER, NullObserver()])
    def test_trainer_identical_without_observer(self, observer) -> None:
        baseline = _observed_trainer(None, n_rounds=3).run()
        observed = _observed_trainer(observer, n_rounds=3).run()
        np.testing.assert_array_equal(baseline.losses, observed.losses)
        np.testing.assert_array_equal(baseline.accuracies, observed.accuracies)

    def test_observed_trainer_matches_unobserved(self) -> None:
        baseline = _observed_trainer(None, n_rounds=3).run()
        observed = _observed_trainer(Observer(), n_rounds=3).run()
        np.testing.assert_array_equal(baseline.losses, observed.losses)

    def test_null_observer_records_nothing(self) -> None:
        observer = NullObserver()
        trainer = _observed_trainer(observer, n_rounds=2)
        trainer.run()
        assert len(observer.events) == 0
        assert len(observer.metrics) == 0
        assert observer.tracer.roots == []

    def test_observed_prototype_energy_identical(self) -> None:
        train = generate_synthetic_mnist(160, seed=3)
        test = generate_synthetic_mnist(40, seed=4)
        config = PrototypeConfig(n_servers=4)
        plain = HardwarePrototype(train, test, config).run(
            participants=2, epochs=2, n_rounds=3
        )
        observed = HardwarePrototype(
            train, test, config, observer=Observer()
        ).run(participants=2, epochs=2, n_rounds=3)
        assert plain.total_energy_j == observed.total_energy_j
        assert plain.wall_clock_s == observed.wall_clock_s
