"""Unit tests for counters, gauges, histograms, and the registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_DURATION_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    render_metric_name,
)


class TestCounter:
    def test_accumulates(self) -> None:
        registry = MetricsRegistry()
        counter = registry.counter("fl.gradient_steps")
        counter.inc()
        counter.inc(4)
        assert registry.value("fl.gradient_steps") == 5.0

    def test_get_or_create_returns_same_instrument(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_separate_instruments(self) -> None:
        registry = MetricsRegistry()
        registry.counter("energy.joules", phase="train").inc(2.0)
        registry.counter("energy.joules", phase="upload").inc(0.5)
        assert registry.value("energy.joules", phase="train") == 2.0
        assert registry.value("energy.joules", phase="upload") == 0.5
        assert registry.sum_values("energy.joules") == 2.5

    def test_negative_increment_rejected(self) -> None:
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("x").inc(-1)

    def test_kind_conflict_rejected(self) -> None:
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")


class TestGauge:
    def test_set_and_adjust(self) -> None:
        registry = MetricsRegistry()
        gauge = registry.gauge("acs.objective")
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(0.5)
        assert registry.value("acs.objective") == 11.5


class TestHistogram:
    def test_bucket_edges_inclusive_upper(self) -> None:
        histogram = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 99.0):
            histogram.observe(value)
        # value <= bound lands in that bound's bucket.
        assert histogram.counts == [2, 2, 2, 1]
        assert histogram.count == 7
        assert histogram.min == 0.5
        assert histogram.max == 99.0
        assert histogram.sum == pytest.approx(111.0)
        assert histogram.mean == pytest.approx(111.0 / 7)

    def test_default_buckets_used(self) -> None:
        registry = MetricsRegistry()
        histogram = registry.histogram("round.duration_s")
        assert histogram.buckets == DEFAULT_DURATION_BUCKETS_S

    def test_conflicting_buckets_rejected(self) -> None:
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered with buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_non_increasing_buckets_rejected(self) -> None:
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", (), buckets=(1.0, 1.0))

    def test_empty_mean_raises(self) -> None:
        with pytest.raises(ValueError, match="no observations"):
            _ = Histogram("h", (), buckets=(1.0,)).mean


class TestRegistryViews:
    def test_snapshot_shape(self) -> None:
        registry = MetricsRegistry()
        registry.counter("fl.rounds").inc(3)
        registry.gauge("acs.objective").set(1.5)
        registry.histogram("round.duration_s", buckets=(1.0, 10.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["fl.rounds"] == 3.0
        assert snapshot["acs.objective"] == 1.5
        histogram = snapshot["round.duration_s"]
        assert histogram["type"] == "histogram"
        assert histogram["counts"] == [1, 0, 0]
        assert histogram["count"] == 1

    def test_snapshot_is_sorted_and_label_rendered(self) -> None:
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", phase="z", device="0").inc()
        keys = list(registry.snapshot())
        assert keys == ["a{device=0,phase=z}", "b"]

    def test_render_text_contains_every_metric(self) -> None:
        registry = MetricsRegistry()
        registry.counter("fl.rounds").inc(2)
        registry.histogram("d_s", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "fl.rounds" in text
        assert "counter" in text
        assert "histogram" in text

    def test_render_text_empty(self) -> None:
        assert "no metrics" in MetricsRegistry().render_text()

    def test_sum_values_missing_raises(self) -> None:
        with pytest.raises(KeyError):
            MetricsRegistry().sum_values("nope")

    def test_render_metric_name(self) -> None:
        assert render_metric_name("x", {}) == "x"
        assert render_metric_name("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"
