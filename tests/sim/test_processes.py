"""Unit tests for step processes (piecewise-constant power signals)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.processes import Segment, StepProcess


def _two_step() -> StepProcess:
    process = StepProcess()
    process.append(1.0, 3.6, "waiting")
    process.append(0.5, 5.553, "training")
    return process


class TestSegment:
    def test_duration(self) -> None:
        assert Segment(1.0, 3.0, 5.0).duration == 2.0

    def test_rejects_empty_interval(self) -> None:
        with pytest.raises(ValueError, match="positive duration"):
            Segment(1.0, 1.0, 5.0)


class TestAppend:
    def test_segments_contiguous(self) -> None:
        process = _two_step()
        assert process.segments[0].end == process.segments[1].start
        assert process.duration == pytest.approx(1.5)
        assert process.end_time == pytest.approx(1.5)

    def test_custom_start_time(self) -> None:
        process = StepProcess(start_time=10.0)
        process.append(1.0, 2.0)
        assert process.segments[0].start == 10.0
        assert process.end_time == 11.0

    def test_rejects_nonpositive_duration(self) -> None:
        with pytest.raises(ValueError, match="positive"):
            StepProcess().append(0.0, 1.0)

    def test_extend_concatenates(self) -> None:
        a = _two_step()
        b = StepProcess()
        b.append(2.0, 4.0, "other")
        a.extend(b)
        assert a.duration == pytest.approx(3.5)
        assert a.segments[-1].label == "other"


class TestEvaluation:
    def test_value_at_interior(self) -> None:
        process = _two_step()
        assert process.value_at(0.5) == 3.6
        assert process.value_at(1.2) == 5.553

    def test_right_open_boundary(self) -> None:
        process = _two_step()
        assert process.value_at(1.0) == 5.553  # second segment starts at 1.0

    def test_end_time_returns_last_value(self) -> None:
        assert _two_step().value_at(1.5) == 5.553

    def test_out_of_span_raises(self) -> None:
        process = _two_step()
        with pytest.raises(ValueError, match="outside"):
            process.value_at(-0.1)
        with pytest.raises(ValueError, match="outside"):
            process.value_at(1.6)

    def test_empty_process_raises(self) -> None:
        with pytest.raises(ValueError, match="no segments"):
            StepProcess().value_at(0.0)

    def test_vectorised_matches_scalar(self) -> None:
        process = _two_step()
        times = np.linspace(0.0, 1.5, 31)
        vectorised = process.values_at(times)
        scalar = np.array([process.value_at(float(t)) for t in times])
        np.testing.assert_array_equal(vectorised, scalar)

    def test_vectorised_out_of_span_raises(self) -> None:
        with pytest.raises(ValueError, match="outside"):
            _two_step().values_at(np.array([0.5, 2.0]))


class TestIntegral:
    def test_full_span(self) -> None:
        assert _two_step().integral() == pytest.approx(1.0 * 3.6 + 0.5 * 5.553)

    def test_partial_span(self) -> None:
        process = _two_step()
        assert process.integral(0.5, 1.25) == pytest.approx(0.5 * 3.6 + 0.25 * 5.553)

    def test_outside_span_contributes_nothing(self) -> None:
        process = _two_step()
        assert process.integral(-5.0, 20.0) == pytest.approx(process.integral())

    def test_empty_process_is_zero(self) -> None:
        assert StepProcess().integral() == 0.0

    def test_inverted_range_raises(self) -> None:
        with pytest.raises(ValueError, match="empty integration"):
            _two_step().integral(1.0, 0.5)


class TestLabelledSpans:
    def test_spans_accumulate_per_label(self) -> None:
        process = _two_step()
        process.append(0.5, 3.6, "waiting")
        spans = process.labelled_spans()
        assert spans["waiting"] == pytest.approx(1.5)
        assert spans["training"] == pytest.approx(0.5)
