"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self) -> None:
        sim = Simulator()
        order: list[str] = []
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.events_processed == 3

    def test_ties_broken_by_priority_then_insertion(self) -> None:
        sim = Simulator()
        order: list[str] = []
        sim.schedule(1.0, lambda s: order.append("late"), priority=5)
        sim.schedule(1.0, lambda s: order.append("early"), priority=0)
        sim.schedule(1.0, lambda s: order.append("early2"), priority=0)
        sim.run()
        assert order == ["early", "early2", "late"]

    def test_actions_can_schedule_more_events(self) -> None:
        sim = Simulator()
        ticks: list[float] = []

        def tick(s: Simulator) -> None:
            ticks.append(s.now)
            if len(ticks) < 4:
                s.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert ticks == [0.0, 1.0, 2.0, 3.0]

    def test_schedule_at_absolute_time(self) -> None:
        sim = Simulator()
        hit: list[float] = []
        sim.schedule(1.0, lambda s: s.schedule_at(5.0, lambda s2: hit.append(s2.now)))
        sim.run()
        assert hit == [5.0]

    def test_schedule_in_past_raises(self) -> None:
        sim = Simulator()
        sim.schedule(2.0, lambda s: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(1.0, lambda s: None)

    def test_negative_delay_raises(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().schedule(-1.0, lambda s: None)


class TestRunControl:
    def test_run_until_stops_clock(self) -> None:
        sim = Simulator()
        hits: list[float] = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda s: hits.append(s.now))
        sim.run(until=2.5)
        assert hits == [1.0, 2.0]
        assert sim.now == 2.5
        assert sim.pending == 1

    def test_run_until_advances_idle_clock(self) -> None:
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events(self) -> None:
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda s: None)
        sim.run(max_events=2)
        assert sim.events_processed == 2
        assert sim.pending == 3

    def test_step_returns_false_when_empty(self) -> None:
        assert not Simulator().step()

    def test_max_events_ignores_cancelled_events(self) -> None:
        # Regression: the run() budget is unified on events_processed, so
        # cancelled events drained on the way never consume budget.
        sim = Simulator()
        hits: list[float] = []
        cancelled = [
            sim.schedule(0.5, lambda s: None),
            sim.schedule(1.5, lambda s: None),
        ]
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda s: hits.append(s.now))
        for event in cancelled:
            sim.cancel(event)
        sim.run(max_events=2)
        assert hits == [1.0, 2.0]
        assert sim.events_processed == 2
        sim.run(max_events=1)
        assert hits == [1.0, 2.0, 3.0]
        assert sim.events_processed == 3

    def test_max_events_budget_is_per_call(self) -> None:
        sim = Simulator()
        for t in range(4):
            sim.schedule(float(t), lambda s: None)
        sim.run(max_events=2)
        assert sim.events_processed == 2
        # A fresh call gets a fresh budget measured from the current count.
        sim.run(max_events=2)
        assert sim.events_processed == 4

    def test_negative_max_events_rejected(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            Simulator().run(max_events=-1)

    def test_until_ignores_cancelled_head(self) -> None:
        # A cancelled event with an early timestamp must not let a
        # later-than-until real event slip through the time bound.
        sim = Simulator()
        hits: list[float] = []
        early = sim.schedule(1.0, lambda s: hits.append(s.now))
        sim.schedule(5.0, lambda s: hits.append(s.now))
        sim.cancel(early)
        sim.run(until=2.0)
        assert hits == []
        assert sim.now == 2.0
        assert sim.pending == 1


class TestCancel:
    def test_cancelled_event_skipped(self) -> None:
        sim = Simulator()
        hits: list[str] = []
        event = sim.schedule(1.0, lambda s: hits.append("cancelled"))
        sim.schedule(2.0, lambda s: hits.append("kept"))
        sim.cancel(event)
        sim.run()
        assert hits == ["kept"]

    def test_cancel_after_run_is_noop(self) -> None:
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        sim.run()
        sim.cancel(event)  # must not raise


class TestTrace:
    def test_labelled_events_traced(self) -> None:
        sim = Simulator()
        sim.schedule(1.0, lambda s: None, label="round-start")
        sim.schedule(2.0, lambda s: None)  # unlabelled: not traced
        sim.schedule(3.0, lambda s: None, label="round-end")
        sim.run()
        assert sim.trace == [(1.0, "round-start"), (3.0, "round-end")]

    def test_trace_returns_copy(self) -> None:
        sim = Simulator()
        sim.schedule(1.0, lambda s: None, label="x")
        sim.run()
        sim.trace.append((9.0, "bogus"))
        assert len(sim.trace) == 1
