"""Unit tests for the CLI experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.runner import SCALES, build_parser, main


class TestParser:
    def test_parses_experiment_and_scale(self) -> None:
        args = build_parser().parse_args(["fig5", "--scale", "test"])
        assert args.experiment == "fig5"
        assert args.scale == "test"

    def test_default_scale_is_tiny(self) -> None:
        args = build_parser().parse_args(["table1"])
        assert args.scale == "tiny"

    def test_rejects_unknown_experiment(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig7"])

    def test_rejects_unknown_scale(self) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--scale", "huge"])

    def test_all_is_accepted(self) -> None:
        assert build_parser().parse_args(["all"]).experiment == "all"


class TestScales:
    def test_three_scales_registered(self) -> None:
        assert set(SCALES) == {"tiny", "test", "paper"}

    def test_scales_ordered_by_size(self) -> None:
        assert (
            SCALES["tiny"].n_train
            < SCALES["test"].n_train
            < SCALES["paper"].n_train
        )


class TestMain:
    def test_table1_runs_and_prints(self, capsys: pytest.CaptureFixture) -> None:
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "c0" in out

    def test_fig3_runs_and_prints(self, capsys: pytest.CaptureFixture) -> None:
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "training" in out

    def test_plan_runs_at_tiny_scale(self, capsys: pytest.CaptureFixture) -> None:
        assert main(["plan", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "EE-FEI plan" in out
        assert "Calibrated constants" in out

    def test_frontier_runs_at_tiny_scale(self, capsys: pytest.CaptureFixture) -> None:
        assert main(["frontier", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "deadline" in out

    def test_sensitivity_runs_at_tiny_scale(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        assert main(["sensitivity", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "regret" in out

    def test_calibration_cached_across_invocations(
        self, capsys: pytest.CaptureFixture
    ) -> None:
        # The previous test calibrated 'tiny'; a second plan run must
        # reuse the cache (same object identity).
        before = runner._CALIBRATION_CACHE.get("tiny")
        assert main(["plan", "--scale", "tiny"]) == 0
        after = runner._CALIBRATION_CACHE.get("tiny")
        if before is not None:
            assert after is before


@pytest.mark.telemetry_smoke
class TestTelemetry:
    def test_telemetry_flag_writes_jsonl(
        self, tmp_path, capsys: pytest.CaptureFixture
    ) -> None:
        from repro.obs import EventLog

        out = tmp_path / "telemetry.jsonl"
        assert main(["fig3", "--telemetry", str(out)]) == 0
        captured = capsys.readouterr()
        assert "Fig. 3" in captured.out
        assert "telemetry:" in captured.err
        assert "experiment.duration_s" in captured.err

        log = EventLog.load_jsonl(out)
        categories = log.categories()
        assert categories["experiment.start"] == 1
        assert categories["experiment.end"] == 1
        assert log[-1].category == "metrics.snapshot"
        end = log.filter("experiment.end")[0]
        assert end.fields["experiment"] == "fig3"
        assert end.fields["duration_s"] > 0

    def test_no_telemetry_leaves_observer_unset(self) -> None:
        assert main(["table1"]) == 0
        assert runner._ACTIVE_OBSERVER is None
