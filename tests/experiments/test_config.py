"""Unit tests for the experiment configuration."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    PAPER_SCALE,
    TEST_SCALE,
    ExperimentScale,
    table_ii_rows,
)


class TestTableII:
    def test_rows_match_paper(self) -> None:
        rows = dict(table_ii_rows())
        assert rows["Model Type"] == "Multinomial Logistic Regression"
        assert rows["Input Size"] == "784*1"
        assert rows["Output Size"] == "10*1"
        assert "0.01" in rows["Optimizer"]
        assert "0.99" in rows["Optimizer"]


class TestScales:
    def test_paper_scale_matches_prototype(self) -> None:
        assert PAPER_SCALE.n_train == 60_000
        assert PAPER_SCALE.n_test == 10_000
        assert PAPER_SCALE.n_servers == 20
        assert PAPER_SCALE.samples_per_server == 3000
        assert PAPER_SCALE.target_accuracy == 0.92

    def test_test_scale_is_small(self) -> None:
        assert TEST_SCALE.n_train < PAPER_SCALE.n_train
        assert TEST_SCALE.n_servers == PAPER_SCALE.n_servers

    def test_model_config_dimensions(self) -> None:
        config = PAPER_SCALE.model_config()
        assert config.n_features == 784
        assert config.n_classes == 10
        assert config.l2 == PAPER_SCALE.l2

    def test_sgd_config_matches_table_ii(self) -> None:
        sgd = PAPER_SCALE.sgd_config()
        assert sgd.learning_rate == 0.01
        assert sgd.decay == 0.99
        assert sgd.batch_size is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_train": 5, "n_servers": 10},
            {"target_accuracy": 0.0},
            {"target_accuracy": 1.5},
            {"max_rounds": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        defaults = dict(
            name="x",
            n_train=100,
            n_test=10,
            n_servers=5,
            max_rounds=10,
            target_accuracy=0.8,
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            ExperimentScale(**defaults)
