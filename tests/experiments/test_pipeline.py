"""End-to-end pipeline tests: calibration + Figs. 4-6 at a tiny scale.

These are the slowest tests in the suite (~30 s total); they validate the
full paper pipeline — calibrate constants from the simulated testbed,
solve the biconvex program, and check the shape criteria of DESIGN.md on
both theory and measured energy curves.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.calibrate import CalibratedSystem, calibrate_system
from repro.experiments.config import ExperimentScale
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6

TINY = ExperimentScale(
    name="tiny",
    n_train=800,
    n_test=200,
    n_servers=8,
    max_rounds=80,
    target_accuracy=0.75,
    seed=0,
)


@pytest.fixture(scope="module")
def system() -> CalibratedSystem:
    return calibrate_system(TINY)


class TestCalibration:
    def test_energy_constants_recovered(self, system: CalibratedSystem) -> None:
        # c0/c1 are regenerated from the simulated Table-I grid, so they
        # must match the paper's constants closely.
        assert system.energy_params.c0 == pytest.approx(7.79e-5, rel=0.01)
        assert system.energy_params.e_upload > 0
        assert system.energy_params.n_samples == TINY.samples_per_server

    def test_bound_constants_valid(self, system: CalibratedSystem) -> None:
        assert system.bound.a0 > 0
        assert system.bound.a1 >= 0
        assert system.bound.a2 >= 0

    def test_epsilon_feasible_at_full_participation(
        self, system: CalibratedSystem
    ) -> None:
        assert system.objective().is_feasible(TINY.n_servers, 1)

    def test_f_star_below_observed_losses(self, system: CalibratedSystem) -> None:
        assert system.f_star < system.epsilon + system.f_star

    def test_planner_produces_plan(self, system: CalibratedSystem) -> None:
        plan = system.planner().plan(system.epsilon)
        assert 1 <= plan.participants <= TINY.n_servers
        assert plan.epochs >= 1
        assert plan.predicted_energy > 0

    def test_bound_predicts_measured_rounds_within_factor(
        self, system: CalibratedSystem
    ) -> None:
        # The calibrated T*(K, E) must land within ~3x of a fresh
        # measured run at an operating point not in the pilot set.
        k, e = max(1, TINY.n_servers // 2), 10
        run = system.prototype.run(
            participants=k,
            epochs=e,
            n_rounds=TINY.max_rounds,
            target_accuracy=TINY.target_accuracy,
        )
        if not run.reached_target or not system.objective().is_feasible(k, e):
            pytest.skip("operating point infeasible at this tiny scale")
        predicted = system.bound.required_rounds(system.epsilon, e, k)
        assert predicted == pytest.approx(run.rounds, rel=2.0)


class TestFig4Shape:
    @pytest.fixture(scope="class")
    def fig4(self, system: CalibratedSystem):
        return run_fig4(
            system.prototype,
            k_values=(1, 4, 8),
            e_values=(5, 20, 60),
            fixed_e=20,
            fixed_k=4,
            max_rounds=60,
            loose_target=0.60,
            strict_target=0.72,
        )

    def test_all_runs_recorded(self, fig4) -> None:
        assert set(fig4.fixed_e_histories) == {1, 4, 8}
        assert set(fig4.fixed_k_histories) == {5, 20, 60}

    def test_loss_decreases_over_rounds(self, fig4) -> None:
        for history in fig4.fixed_e_histories.values():
            assert history.final_loss() < history.losses[0]

    def test_more_epochs_converges_in_fewer_rounds(self, fig4) -> None:
        rounds = fig4.rounds_vs_e(0.72)
        reached = {e: t for e, t in rounds.items() if t is not None}
        if len(reached) >= 2:
            es = sorted(reached)
            assert reached[es[-1]] <= reached[es[0]]

    def test_report_renders(self, fig4) -> None:
        report = fig4.report()
        assert "Fig. 4(a)/(b)" in report
        assert "Fig. 4(c)/(d)" in report


class TestFig5Shape:
    @pytest.fixture(scope="class")
    def fig5(self, system: CalibratedSystem):
        return run_fig5(system, epochs=20, k_values=(1, 2, 4, 8))

    def test_measured_optimum_is_smallest_k(self, fig5) -> None:
        # DESIGN.md shape criterion: iid data => K* = 1 on real traces.
        assert fig5.k_star_measured == 1

    def test_measured_energy_increases_with_k(self, fig5) -> None:
        measured = [v for v in fig5.measured_energy.values() if v is not None]
        assert len(measured) >= 3
        assert measured == sorted(measured)

    def test_theory_tracks_measured_trend(self, fig5) -> None:
        pairs = [
            (t, m)
            for t, m in zip(
                fig5.theory_energy.values(), fig5.measured_energy.values()
            )
            if t is not None and m is not None
        ]
        if len(pairs) >= 3:
            theory = [p[0] for p in pairs]
            measured = [p[1] for p in pairs]
            corr = np.corrcoef(theory, measured)[0, 1]
            assert corr > 0.8

    def test_report_renders(self, fig5) -> None:
        assert "Fig. 5" in fig5.report()


class TestFig6Shape:
    @pytest.fixture(scope="class")
    def fig6(self, system: CalibratedSystem):
        return run_fig6(system, participants=1, e_values=(1, 5, 10, 20, 40, 80))

    def test_interior_measured_optimum(self, fig6) -> None:
        # DESIGN.md shape criterion: an interior E* exists.
        measured = {e: v for e, v in fig6.measured_energy.items() if v is not None}
        assert len(measured) >= 3
        assert fig6.e_star_measured not in (min(measured), max(measured)) or (
            fig6.e_star_measured != min(fig6.measured_energy)
        )

    def test_substantial_savings_vs_baseline(self, fig6) -> None:
        # Paper headline: 49.8 % saving vs the naive baseline.  At this
        # tiny scale we accept anything above 25 %.
        assert fig6.savings_measured is not None
        assert fig6.savings_measured > 0.25

    def test_theory_has_finite_argmin(self, fig6) -> None:
        assert fig6.theory_argmin() is not None

    def test_report_renders(self, fig6) -> None:
        report = fig6.report()
        assert "Fig. 6" in report
        assert "49.8%" in report
