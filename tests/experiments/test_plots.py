"""Unit tests for the ASCII chart renderer."""

from __future__ import annotations

import math

import pytest

from repro.experiments.plots import Series, line_chart


def _series(label: str = "s", n: int = 10) -> Series:
    return Series(label, [(float(i), float(i * i)) for i in range(n)])


class TestSeries:
    def test_clean_drops_none_and_nonfinite(self) -> None:
        series = Series(
            "s", [(0.0, 1.0), (1.0, None), (2.0, math.nan), (3.0, math.inf), (4.0, 2.0)]
        )
        assert series.clean() == [(0.0, 1.0), (4.0, 2.0)]


class TestLineChart:
    def test_contains_title_labels_and_legend(self) -> None:
        chart = line_chart(
            [_series("alpha"), _series("beta")],
            title="My Chart",
            x_label="rounds",
            y_label="joules",
        )
        assert "My Chart" in chart
        assert "rounds" in chart
        assert "joules" in chart
        assert "* alpha" in chart
        assert "o beta" in chart

    def test_markers_present_per_series(self) -> None:
        low = Series("a", [(float(i), float(i)) for i in range(10)])
        high = Series("b", [(float(i), float(i + 20)) for i in range(10)])
        chart = line_chart([low, high])
        body = chart.split("\n      +")[0]
        assert "*" in body
        assert "o" in body

    def test_extremes_on_axis_rows(self) -> None:
        series = Series("s", [(0.0, 0.0), (10.0, 100.0)])
        chart = line_chart([series], height=10)
        lines = [l for l in chart.splitlines() if "|" in l]
        # Max value appears on the top plot row, min on the bottom row.
        assert "*" in lines[0]
        assert "*" in lines[-1]

    def test_y_tick_labels_cover_range(self) -> None:
        series = Series("s", [(0.0, 0.0), (1.0, 50.0)])
        chart = line_chart([series])
        assert "50" in chart
        assert " 0 |" in chart or "0 |" in chart

    def test_log_x_axis_labels(self) -> None:
        series = Series("s", [(1.0, 1.0), (10.0, 2.0), (100.0, 3.0)])
        chart = line_chart([series], log_x=True)
        assert "[log]" in chart
        assert "100" in chart

    def test_log_x_rejects_nonpositive(self) -> None:
        series = Series("s", [(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(ValueError, match="positive x"):
            line_chart([series], log_x=True)

    def test_constant_series_renders(self) -> None:
        series = Series("s", [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)])
        chart = line_chart([series])
        assert "*" in chart

    def test_single_point_renders(self) -> None:
        chart = line_chart([Series("s", [(1.0, 2.0)])])
        assert "*" in chart

    def test_all_empty_raises(self) -> None:
        with pytest.raises(ValueError, match="nothing to plot"):
            line_chart([Series("s", [(1.0, None)])])

    def test_too_small_canvas_rejected(self) -> None:
        with pytest.raises(ValueError, match="at least"):
            line_chart([_series()], width=5, height=2)

    def test_deterministic(self) -> None:
        a = line_chart([_series("a"), _series("b")])
        b = line_chart([_series("a"), _series("b")])
        assert a == b

    def test_width_respected(self) -> None:
        chart = line_chart([_series()], width=30)
        plot_rows = [l for l in chart.splitlines() if "|" in l and "legend" not in l]
        for row in plot_rows:
            after_bar = row.split("|", 1)[1]
            assert len(after_bar) <= 30

    def test_interpolation_connects_points(self) -> None:
        # Two distant points must be joined by '.' interpolation dots.
        series = Series("s", [(0.0, 0.0), (10.0, 10.0)])
        chart = line_chart([series], width=40, height=12)
        assert "." in chart
