"""Reproduction tests for Table I and Fig. 3 (fast, deterministic)."""

from __future__ import annotations

import pytest

from repro.core import constants
from repro.experiments.fig3 import run_fig3
from repro.experiments.table1 import run_table1
from repro.hardware.power_model import RoundPhase


class TestTable1:
    def test_grid_matches_paper_shape(self) -> None:
        result = run_table1()
        assert set(result.durations) == set(result.paper_durations)
        # Shape criterion from DESIGN.md: every simulated duration within
        # 6 % of the paper's measurement.
        assert result.max_relative_error() < 0.06

    def test_fit_recovers_c0(self) -> None:
        result = run_table1()
        assert result.fit.c0 == pytest.approx(
            constants.C0_JOULES_PER_SAMPLE_EPOCH, rel=0.01
        )

    def test_rows_ordering(self) -> None:
        rows = run_table1().rows()
        assert len(rows) == 12
        assert rows[0][:2] == (10, 100)
        assert rows[-1][:2] == (40, 2000)

    def test_report_contains_fit_line(self) -> None:
        report = run_table1().report()
        assert "Table I" in report
        assert "c0" in report and "c1" in report


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(epochs=10, n_rounds=2)

    def test_all_phases_recovered(self, result) -> None:
        for phase in RoundPhase:
            assert result.measured_powers[phase] == pytest.approx(
                result.expected_powers[phase], abs=0.05
            )

    def test_max_error_small(self, result) -> None:
        assert result.max_power_error_w() < 0.05

    def test_trace_samples_at_1khz(self, result) -> None:
        assert result.trace.sample_rate == pytest.approx(1000.0, rel=0.01)

    def test_power_pattern_repeats_per_round(self, result) -> None:
        # Two rounds: the training plateau must appear twice.
        plateaus = result.trace.detect_plateaus(tolerance_w=0.3)
        training = [p for p in plateaus if abs(p[2] - 5.553) < 0.3]
        assert len(training) == 2

    def test_report_mentions_phases(self, result) -> None:
        report = result.report()
        for phase in RoundPhase:
            assert phase.value in report
