"""Unit tests for the multi-seed statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.stats import SeedSummary, repeat_over_seeds, summarize


class TestSummarize:
    def test_mean_and_std(self) -> None:
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary.n == 4

    def test_ci_contains_mean(self) -> None:
        summary = summarize([10.0, 12.0, 11.0, 13.0, 9.0])
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_higher_confidence_wider_interval(self) -> None:
        values = [10.0, 12.0, 11.0, 13.0, 9.0]
        narrow = summarize(values, confidence=0.80)
        wide = summarize(values, confidence=0.99)
        assert wide.half_width() > narrow.half_width()

    def test_single_value_degenerate(self) -> None:
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_ci_shrinks_with_more_samples(self) -> None:
        rng = np.random.default_rng(0)
        few = summarize(rng.normal(10, 1, 5).tolist())
        many = summarize(rng.normal(10, 1, 100).tolist())
        assert many.half_width() < few.half_width()

    def test_t_interval_matches_scipy(self) -> None:
        from scipy import stats as scipy_stats

        values = [3.1, 2.9, 3.3, 3.0, 3.2]
        summary = summarize(values, confidence=0.95)
        lo, hi = scipy_stats.t.interval(
            0.95,
            df=len(values) - 1,
            loc=np.mean(values),
            scale=scipy_stats.sem(values),
        )
        assert summary.ci_low == pytest.approx(lo)
        assert summary.ci_high == pytest.approx(hi)

    def test_formatted_output(self) -> None:
        text = summarize([10.0, 12.0], confidence=0.95).formatted("J")
        assert "±" in text
        assert "J" in text
        assert "n=2" in text

    def test_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="no values"):
            summarize([])

    def test_rejects_nan(self) -> None:
        with pytest.raises(ValueError, match="non-finite"):
            summarize([1.0, float("nan")])

    def test_rejects_bad_confidence(self) -> None:
        with pytest.raises(ValueError, match="confidence"):
            summarize([1.0], confidence=1.0)


class TestRepeatOverSeeds:
    def test_runs_every_seed(self) -> None:
        calls: list[int] = []

        def experiment(seed: int) -> float:
            calls.append(seed)
            return float(seed)

        summary = repeat_over_seeds(experiment, [1, 2, 3])
        assert calls == [1, 2, 3]
        assert summary.mean == pytest.approx(2.0)

    def test_failures_propagate_by_default(self) -> None:
        def experiment(seed: int) -> float:
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            repeat_over_seeds(experiment, [1, 2])

    def test_skip_failures_drops_bad_runs(self) -> None:
        def experiment(seed: int) -> float:
            if seed == 2:
                raise RuntimeError("did not converge")
            return float(seed)

        summary = repeat_over_seeds(experiment, [1, 2, 3], skip_failures=True)
        assert summary.values == (1.0, 3.0)

    def test_all_failures_raise(self) -> None:
        def experiment(seed: int) -> float:
            raise RuntimeError("nope")

        with pytest.raises(ValueError, match="every seeded run failed"):
            repeat_over_seeds(experiment, [1, 2], skip_failures=True)

    def test_rejects_duplicate_seeds(self) -> None:
        with pytest.raises(ValueError, match="distinct"):
            repeat_over_seeds(lambda s: 1.0, [1, 1])

    def test_rejects_empty_seeds(self) -> None:
        with pytest.raises(ValueError, match="at least one seed"):
            repeat_over_seeds(lambda s: 1.0, [])
