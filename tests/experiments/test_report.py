"""Unit tests for report rendering."""

from __future__ import annotations

import pytest

from repro.experiments.report import format_percent, render_series, render_table


class TestRenderTable:
    def test_basic_alignment(self) -> None:
        text = render_table(["a", "bee"], [[1, 2.5], [10, 0.333333]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "bee" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self) -> None:
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self) -> None:
        text = render_table(["v"], [[0.333333333]])
        assert "0.3333" in text

    def test_rejects_ragged_rows(self) -> None:
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_rejects_empty_headers(self) -> None:
        with pytest.raises(ValueError, match="headers"):
            render_table([], [])

    def test_empty_rows_ok(self) -> None:
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_two_columns(self) -> None:
        text = render_series("K", "energy", [(1, 10.0), (2, 20.0)])
        assert "K" in text and "energy" in text
        assert "10" in text and "20" in text


class TestFormatPercent:
    def test_paper_headline(self) -> None:
        assert format_percent(0.498) == "49.8%"

    def test_rounding(self) -> None:
        assert format_percent(0.12345) == "12.3%"
        assert format_percent(1.0) == "100.0%"
