"""Meta-tests on the public API surface.

Guards the contract a downstream user relies on: every name in each
package's ``__all__`` is importable, every public callable/class is
documented, and the top-level package re-exports the advertised
entry points.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.campaign",
    "repro.core",
    "repro.data",
    "repro.faults",
    "repro.fl",
    "repro.hardware",
    "repro.iot",
    "repro.net",
    "repro.obs",
    "repro.perf",
    "repro.sim",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", _PACKAGES)
def test_all_names_resolve(package_name: str) -> None:
    module = importlib.import_module(package_name)
    assert hasattr(module, "__all__"), f"{package_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", _PACKAGES)
def test_no_duplicate_all_entries(package_name: str) -> None:
    module = importlib.import_module(package_name)
    assert len(module.__all__) == len(set(module.__all__))


def _public_objects():
    for package_name in _PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield f"{package_name}.{name}", obj


@pytest.mark.parametrize("qualified,obj", list(_public_objects()))
def test_public_objects_documented(qualified: str, obj) -> None:
    assert inspect.getdoc(obj), f"{qualified} has no docstring"


def test_every_module_has_docstring() -> None:
    undocumented = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            undocumented.append(info.name)
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_top_level_exports() -> None:
    # The README quickstart relies on these names.
    from repro import (  # noqa: F401
        ACSSolver,
        ConvergenceBound,
        EnergyObjective,
        EnergyParams,
        EnergyPlan,
        EnergyPlanner,
    )

    assert repro.__version__


def test_repository_surface_exported() -> None:
    # The campaign storage API is part of the top-level contract.
    from repro import (  # noqa: F401
        CampaignRepository,
        StoreHealthReport,
        open_store,
    )

    from repro.campaign import JsonArtifactStore, SqliteArtifactStore

    assert issubclass(JsonArtifactStore, repro.ArtifactStore)
    assert issubclass(SqliteArtifactStore, repro.ArtifactStore)


@pytest.mark.parametrize(
    "name", ["ExperimentScale", "FederatedConfig", "ResilienceConfig"]
)
def test_deprecated_shim_warning_text(name: str) -> None:
    """The shims must say what to use instead *and* when they go away."""
    import warnings

    # Module __getattr__ never caches the attribute, so every access
    # re-warns — no import-state gymnastics needed.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        getattr(repro, name)
    messages = [
        str(w.message)
        for w in caught
        if issubclass(w.category, DeprecationWarning)
    ]
    assert messages, f"repro.{name} did not warn"
    message = messages[0]
    assert f"repro.{name} is deprecated" in message
    assert "will be removed in repro 2.0" in message
    assert "RunSpec" in message  # points at the replacement surface


def test_version_is_semver_like() -> None:
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
