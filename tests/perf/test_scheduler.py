"""Parallel campaign scheduler: cost model, determinism, resume.

The acceptance bar for ``--jobs`` is byte-identity: a parallel campaign
(any worker count, any completion order, killed and resumed or not)
must leave the artifact store — unit files *and* manifest — with
exactly the bytes a sequential run produces.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.campaign import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    RunSpec,
)
from repro.campaign.runner import ParallelUnitError
from repro.obs.observer import Observer
from repro.perf.scheduler import (
    ParallelUnitScheduler,
    estimate_unit_cost,
    order_longest_first,
)

pytestmark = pytest.mark.parallel_smoke


def _store_digest(root: Path) -> dict[str, str]:
    """SHA-256 of every store file by relative path, plus the index.

    The lock file is excluded, and the index file is compared through
    ``index_digest()`` (the canonical key-sorted document) rather than
    raw bytes: a JSON manifest is byte-deterministic, but SQLite page
    layout varies with insertion order even when the indexed content is
    identical — logical identity is the invariant both backends share.
    """
    store = ArtifactStore(root)
    skip = {".lock", store.index_filename}
    digests = {
        str(path.relative_to(root)): hashlib.sha256(
            path.read_bytes()
        ).hexdigest()
        for path in sorted(root.rglob("*"))
        if path.is_file() and path.name not in skip
    }
    digests["<index>"] = store.index_digest()
    return digests


# Module-level scheduler workers (must be picklable).
def _square(payload: int) -> int:
    return payload * payload


def _fail_on_odd(payload: int) -> int:
    if payload % 2:
        raise ValueError(f"odd payload {payload}")
    return payload


class TestCostModel:
    def test_cost_follows_timing_law_factors(self, tiny_spec: RunSpec) -> None:
        # t = E·(τ0·n + τ1) per participant per round → cost scales as
        # rounds · K · E · n; each factor must move the estimate.
        import dataclasses

        base = estimate_unit_cost(tiny_spec)
        assert base == pytest.approx(
            tiny_spec.max_rounds
            * tiny_spec.participants
            * tiny_spec.epochs
            * tiny_spec.n_train
            / tiny_spec.n_servers
        )
        doubled_epochs = dataclasses.replace(
            tiny_spec, epochs=tiny_spec.epochs * 2
        )
        assert estimate_unit_cost(doubled_epochs) == pytest.approx(2 * base)
        doubled_k = dataclasses.replace(
            tiny_spec, participants=tiny_spec.participants * 2
        )
        assert estimate_unit_cost(doubled_k) == pytest.approx(2 * base)

    def test_order_longest_first_is_deterministic(
        self, tiny_campaign: CampaignSpec
    ) -> None:
        units = tiny_campaign.expand()
        order = order_longest_first(units)
        costs = [estimate_unit_cost(u) for u in units]
        assert sorted(order) == list(range(len(units)))
        ordered_costs = [costs[i] for i in order]
        assert ordered_costs == sorted(costs, reverse=True)
        # Ties break on the original index, so the order is stable.
        assert order == order_longest_first(units)


class TestScheduler:
    def test_runs_every_payload_and_keeps_results(self) -> None:
        scheduler = ParallelUnitScheduler(jobs=3)
        outcome = scheduler.run(list(range(8)), _square)
        assert outcome.completed == list(range(8))
        assert outcome.results == {i: i * i for i in range(8)}
        assert not outcome.failed
        assert not outcome.interrupted

    def test_failures_are_reported_not_fatal(self) -> None:
        scheduler = ParallelUnitScheduler(jobs=2)
        outcome = scheduler.run([0, 1, 2, 3], _fail_on_odd)
        assert outcome.completed == [0, 2]
        assert set(outcome.failed) == {1, 3}
        assert "odd payload" in outcome.failed[1]

    def test_costs_must_match_payloads(self) -> None:
        scheduler = ParallelUnitScheduler(jobs=2)
        with pytest.raises(ValueError, match="one-to-one"):
            scheduler.run([1, 2, 3], _square, costs=[1.0])

    def test_rejects_bad_job_counts(self) -> None:
        with pytest.raises(ValueError, match="jobs"):
            ParallelUnitScheduler(jobs=0)

    def test_emits_scheduler_telemetry(self) -> None:
        observer = Observer()
        scheduler = ParallelUnitScheduler(jobs=2, observer=observer)
        scheduler.run([1, 2, 3, 4], _square)
        assert observer.metrics.value("scheduler.units_submitted") == 4
        assert observer.metrics.value("scheduler.units_completed") == 4
        categories = [event.category for event in observer.events]
        assert "scheduler.start" in categories
        assert "scheduler.end" in categories


class TestParallelCampaign:
    def test_parallel_store_is_byte_identical_to_sequential(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        sequential = ArtifactStore(tmp_path / "sequential")
        CampaignRunner(tiny_campaign, sequential).run()

        parallel = ArtifactStore(tmp_path / "parallel")
        summary = CampaignRunner(tiny_campaign, parallel).run(jobs=3)
        assert summary.executed == len(tiny_campaign)
        assert not summary.interrupted

        # Whole-store byte identity: unit files AND the manifest.
        assert _store_digest(parallel.root) == _store_digest(sequential.root)
        assert parallel.verify() == []

    def test_killed_parallel_campaign_resumes_byte_identically(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        sequential = ArtifactStore(tmp_path / "sequential")
        CampaignRunner(tiny_campaign, sequential).run()

        # "Kill" a 4-job run after two units (max_units is the same
        # checkpointed-stop hook the sequential resume tests use)...
        resumed = ArtifactStore(tmp_path / "resumed")
        first = CampaignRunner(tiny_campaign, resumed).run(
            max_units=2, jobs=4
        )
        assert first.interrupted
        assert first.executed == 2
        assert len(resumed.completed_keys()) == 2

        # ... and resume with a fresh parallel runner.
        second = CampaignRunner(tiny_campaign, resumed).run(jobs=4)
        assert not second.interrupted
        assert second.executed == 2
        assert second.skipped == 2

        assert _store_digest(resumed.root) == _store_digest(sequential.root)
        assert resumed.verify() == []

    def test_parallel_resume_skips_completed_units(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(tiny_campaign, store).run(jobs=2)
        again = CampaignRunner(tiny_campaign, store).run(jobs=2)
        assert again.executed == 0
        assert again.skipped == len(tiny_campaign)

    def test_failed_unit_raises_after_drain_with_rest_checkpointed(
        self, tmp_path, tiny_campaign: CampaignSpec, monkeypatch
    ) -> None:
        # Fork-started workers inherit the patched module, so a
        # targeted failure in one unit exercises the drain path: every
        # other unit must land in the store before the error surfaces.
        import repro.campaign.runner as runner_module

        real = runner_module.execute_unit

        def sabotaged(spec, datasets=None, observer=None):
            if spec.epochs == 2 and spec.participants == 2:
                raise RuntimeError("sabotaged unit")
            return real(spec, datasets=datasets, observer=observer)

        monkeypatch.setattr(runner_module, "execute_unit", sabotaged)
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ParallelUnitError, match="sabotaged"):
            CampaignRunner(tiny_campaign, store).run(jobs=2, supervision=None)
        assert len(store.completed_keys()) == len(tiny_campaign) - 1
        assert store.verify() == []

        # Re-running (unsabotaged) retries only the failed unit.
        monkeypatch.setattr(runner_module, "execute_unit", real)
        summary = CampaignRunner(tiny_campaign, store).run(
            jobs=2, supervision=None
        )
        assert summary.executed == 1
        assert summary.skipped == len(tiny_campaign) - 1

    def test_supervised_parallel_pass_quarantines_instead_of_raising(
        self, tmp_path, tiny_campaign: CampaignSpec, monkeypatch
    ) -> None:
        # The same sabotage under default supervision: the pass retries
        # the bad unit, quarantines it at budget exhaustion, and the
        # campaign completes degraded with every healthy unit stored.
        import dataclasses

        import repro.campaign.runner as runner_module
        from repro.campaign.runner import DEFAULT_SUPERVISION

        real = runner_module.execute_unit

        def sabotaged(spec, datasets=None, observer=None):
            if spec.epochs == 2 and spec.participants == 2:
                raise RuntimeError("sabotaged unit")
            return real(spec, datasets=datasets, observer=observer)

        monkeypatch.setattr(runner_module, "execute_unit", sabotaged)
        store = ArtifactStore(tmp_path / "store")
        supervision = dataclasses.replace(
            DEFAULT_SUPERVISION,
            retry=dataclasses.replace(
                DEFAULT_SUPERVISION.retry, max_retries=1, base_backoff_s=0.01
            ),
        )
        summary = CampaignRunner(tiny_campaign, store).run(
            jobs=2, supervision=supervision
        )
        assert summary.degraded
        assert summary.quarantined == 1
        assert summary.executed == len(tiny_campaign) - 1
        assert len(store.completed_keys()) == len(tiny_campaign) - 1
        assert store.verify() == []
        (bad_key,) = store.quarantined_keys()
        records = store.failure_records(bad_key)
        assert len(records) == 2  # first attempt + one retry
        assert records[-1]["quarantined"] is True
        assert "sabotaged unit" in records[-1]["error"]

        # A later pass skips the quarantined unit outright...
        monkeypatch.setattr(runner_module, "execute_unit", real)
        again = CampaignRunner(tiny_campaign, store).run(jobs=2)
        assert again.executed == 0
        assert again.quarantined == 1

        # ... until the operator grants a fresh budget.
        healed = CampaignRunner(tiny_campaign, store).run(
            jobs=2, retry_quarantined=True
        )
        assert healed.executed == 1
        assert not healed.degraded
        assert len(store.completed_keys()) == len(tiny_campaign)
        assert store.quarantined_keys() == set()

    def test_campaign_observer_sees_scheduler_counters(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        observer = Observer()
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(tiny_campaign, store, observer=observer).run(jobs=2)
        units = len(tiny_campaign)
        assert observer.metrics.value("scheduler.units_submitted") == units
        assert observer.metrics.value("scheduler.units_completed") == units
        assert observer.metrics.value("campaign.units_run") == units

    def test_jobs_must_be_positive(
        self, tmp_path, tiny_campaign: CampaignSpec
    ) -> None:
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ValueError, match="jobs"):
            CampaignRunner(tiny_campaign, store).run(jobs=0)
