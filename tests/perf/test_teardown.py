"""Resource teardown on failure paths: no leaked shm, no orphan workers.

The pool engine owns three kinds of OS resources — shared-memory
dataset blocks, a shared parameter block, and worker processes.  These
tests assert all of them are released on *unhappy* paths: a unit that
raises mid-round, and a pool whose construction itself fails partway.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec, RunSpec
from repro.fl.engine import PoolEngine, create_engine
from repro.fl.training import FederatedConfig

pytestmark = pytest.mark.parallel_smoke

_SHM_DIR = "/dev/shm"


def _shm_entries() -> set[str]:
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return set(os.listdir(_SHM_DIR))


def _wait_no_new_children(before: set, timeout_s: float = 5.0) -> set:
    """Child processes beyond ``before``, after a grace period to reap."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        extra = {
            child
            for child in multiprocessing.active_children()
            if child not in before
        }
        if not extra:
            return set()
        time.sleep(0.05)
    return extra


class TestFaultingUnitTeardown:
    def test_faulting_pool_unit_leaks_nothing(
        self, tmp_path, tiny_spec: RunSpec, monkeypatch
    ) -> None:
        # Make the aggregation step blow up mid-run: the pool has been
        # created (workers alive, shm mapped) and must be torn down by
        # the trainer's close path even though the unit raises.
        from repro.fl.server import Coordinator

        calls = {"n": 0}
        real_aggregate = Coordinator.aggregate

        def failing_aggregate(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("injected aggregation fault")
            return real_aggregate(self, *args, **kwargs)

        monkeypatch.setattr(Coordinator, "aggregate", failing_aggregate)

        shm_before = _shm_entries()
        children_before = set(multiprocessing.active_children())
        spec = dataclasses.replace(tiny_spec, backend="pool")
        campaign = CampaignSpec(name="faulting", base=spec)
        store = ArtifactStore(tmp_path / "store")
        runner = CampaignRunner(campaign, store)
        with pytest.raises(RuntimeError, match="injected aggregation fault"):
            runner.run()

        assert _shm_entries() - shm_before == set()
        assert _wait_no_new_children(children_before) == set()
        # Nothing half-finished was checkpointed.
        assert store.completed_keys() == set()

    def test_interrupted_pool_unit_leaks_nothing(
        self, tmp_path, tiny_spec: RunSpec, monkeypatch
    ) -> None:
        # A Ctrl-C mid-round takes the KeyboardInterrupt path through
        # the runner; the engine must still be torn down.
        from repro.fl.server import Coordinator

        calls = {"n": 0}
        real_aggregate = Coordinator.aggregate

        def interrupting_aggregate(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return real_aggregate(self, *args, **kwargs)

        monkeypatch.setattr(Coordinator, "aggregate", interrupting_aggregate)

        shm_before = _shm_entries()
        children_before = set(multiprocessing.active_children())
        spec = dataclasses.replace(tiny_spec, backend="pool")
        campaign = CampaignSpec(name="interrupted", base=spec)
        store = ArtifactStore(tmp_path / "store")
        summary = CampaignRunner(campaign, store).run()

        assert summary.interrupted
        assert _shm_entries() - shm_before == set()
        assert _wait_no_new_children(children_before) == set()


class TestPartialConstructionRollback:
    def test_pool_construction_failure_rolls_back_shared_blocks(
        self, monkeypatch
    ) -> None:
        # Fail *after* the shm blocks exist but *before* the pool runs:
        # _ensure_pool must unlink everything it created, because no
        # finalizer has been registered yet at that point.
        import numpy as np

        import repro.fl.engine as engine_module
        from repro.data.synthetic_mnist import load_synthetic_mnist
        from repro.fl.model import LogisticRegressionConfig
        from repro.fl.partition import partition_iid
        from repro.fl.training import build_clients

        train, _ = load_synthetic_mnist(n_train=80, n_test=40, seed=0)
        model = LogisticRegressionConfig(
            n_features=train.n_features, n_classes=train.n_classes
        )
        shards = partition_iid(train, 4, np.random.default_rng(0))
        clients = build_clients(shards, model)
        config = FederatedConfig(
            n_rounds=3,
            participants_per_round=2,
            local_epochs=1,
            backend="pool",
        )
        engine = create_engine("pool", clients, config)
        assert isinstance(engine, PoolEngine)

        real_mp = engine_module.multiprocessing

        class _ExplodingContext:
            def Pool(self, *args, **kwargs):
                raise RuntimeError("injected pool-start failure")

        class _SabotagedMp:
            @staticmethod
            def get_all_start_methods():
                return real_mp.get_all_start_methods()

            @staticmethod
            def get_context(method):
                return _ExplodingContext()

        monkeypatch.setattr(engine_module, "multiprocessing", _SabotagedMp())

        shm_before = _shm_entries()
        params = np.zeros(model.n_parameters, dtype=np.float64)
        with pytest.raises(RuntimeError, match="injected pool-start failure"):
            engine.train_round([0, 1], params, round_index=0, learning_rate=0.1)

        assert _shm_entries() - shm_before == set()
        # The engine is still usable once the fault clears.
        monkeypatch.setattr(engine_module, "multiprocessing", real_mp)
        results = engine.train_round(
            [0, 1], params, round_index=0, learning_rate=0.1
        )
        assert len(results) == 2
        engine.close()
        assert _shm_entries() - shm_before == set()
