"""Resource teardown on failure paths: no leaked shm, no orphan workers.

The pool engine owns three kinds of OS resources — shared-memory
dataset blocks, a shared parameter block, and worker processes.  These
tests assert all of them are released on *unhappy* paths: a unit that
raises mid-round, and a pool whose construction itself fails partway.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec, RunSpec
from repro.fl.engine import PoolEngine, create_engine
from repro.fl.training import FederatedConfig

pytestmark = pytest.mark.parallel_smoke

_SHM_DIR = "/dev/shm"


def _shm_entries() -> set[str]:
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return set(os.listdir(_SHM_DIR))


def _wait_no_new_children(before: set, timeout_s: float = 5.0) -> set:
    """Child processes beyond ``before``, after a grace period to reap."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        extra = {
            child
            for child in multiprocessing.active_children()
            if child not in before
        }
        if not extra:
            return set()
        time.sleep(0.05)
    return extra


class TestFaultingUnitTeardown:
    def test_faulting_pool_unit_leaks_nothing(
        self, tmp_path, tiny_spec: RunSpec, monkeypatch
    ) -> None:
        # Make the aggregation step blow up mid-run: the pool has been
        # created (workers alive, shm mapped) and must be torn down by
        # the trainer's close path even though the unit raises.
        from repro.fl.server import Coordinator

        calls = {"n": 0}
        real_aggregate = Coordinator.aggregate

        def failing_aggregate(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("injected aggregation fault")
            return real_aggregate(self, *args, **kwargs)

        monkeypatch.setattr(Coordinator, "aggregate", failing_aggregate)

        shm_before = _shm_entries()
        children_before = set(multiprocessing.active_children())
        spec = dataclasses.replace(tiny_spec, backend="pool")
        campaign = CampaignSpec(name="faulting", base=spec)
        store = ArtifactStore(tmp_path / "store")
        runner = CampaignRunner(campaign, store)
        # supervision=None: this test is about the engine's teardown on
        # the raise-through path, not about retries absorbing the fault.
        with pytest.raises(RuntimeError, match="injected aggregation fault"):
            runner.run(supervision=None)

        assert _shm_entries() - shm_before == set()
        assert _wait_no_new_children(children_before) == set()
        # Nothing half-finished was checkpointed.
        assert store.completed_keys() == set()

    def test_faulting_pool_unit_is_quarantined_without_leaks(
        self, tmp_path, tiny_spec: RunSpec, monkeypatch
    ) -> None:
        # Same injected fault under default supervision: every retry
        # tears its engine down, and quarantine ends the pass cleanly.
        from repro.campaign.runner import DEFAULT_SUPERVISION
        from repro.fl.server import Coordinator

        def failing_aggregate(self, *args, **kwargs):
            raise RuntimeError("injected aggregation fault")

        monkeypatch.setattr(Coordinator, "aggregate", failing_aggregate)

        shm_before = _shm_entries()
        children_before = set(multiprocessing.active_children())
        spec = dataclasses.replace(tiny_spec, backend="pool")
        campaign = CampaignSpec(name="faulting-supervised", base=spec)
        store = ArtifactStore(tmp_path / "store")
        supervision = dataclasses.replace(
            DEFAULT_SUPERVISION,
            retry=dataclasses.replace(
                DEFAULT_SUPERVISION.retry, max_retries=1, base_backoff_s=0.01
            ),
        )
        summary = CampaignRunner(campaign, store).run(supervision=supervision)

        assert summary.degraded
        assert summary.quarantined == 1
        assert _shm_entries() - shm_before == set()
        assert _wait_no_new_children(children_before) == set()
        assert store.completed_keys() == set()
        key = campaign.expand()[0].key()
        assert store.attempts_used(key) == 2

    def test_interrupted_pool_unit_leaks_nothing(
        self, tmp_path, tiny_spec: RunSpec, monkeypatch
    ) -> None:
        # A Ctrl-C mid-round takes the KeyboardInterrupt path through
        # the runner; the engine must still be torn down.
        from repro.fl.server import Coordinator

        calls = {"n": 0}
        real_aggregate = Coordinator.aggregate

        def interrupting_aggregate(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            return real_aggregate(self, *args, **kwargs)

        monkeypatch.setattr(Coordinator, "aggregate", interrupting_aggregate)

        shm_before = _shm_entries()
        children_before = set(multiprocessing.active_children())
        spec = dataclasses.replace(tiny_spec, backend="pool")
        campaign = CampaignSpec(name="interrupted", base=spec)
        store = ArtifactStore(tmp_path / "store")
        summary = CampaignRunner(campaign, store).run()

        assert summary.interrupted
        assert _shm_entries() - shm_before == set()
        assert _wait_no_new_children(children_before) == set()


def _hold_shm_and_sleep(marker: str) -> str:
    """Scheduler worker: grab a shm block, signal readiness, then hang.

    The SIGTERM→KeyboardInterrupt initializer must unwind the sleep so
    the ``finally`` releases the block — that is the property the
    double-interrupt hard-cancel path relies on.
    """
    from multiprocessing import shared_memory
    from pathlib import Path

    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        Path(marker).write_text(str(os.getpid()))
        time.sleep(120)
    finally:
        shm.close()
        shm.unlink()
    return marker


class TestDoubleInterrupt:
    def test_second_interrupt_hard_cancels_without_leaking(
        self, tmp_path, monkeypatch
    ) -> None:
        # First Ctrl-C: the scheduler starts its graceful drain (wait
        # for in-flight units).  Second Ctrl-C during that drain: the
        # workers are terminated instead of awaited — but SIGTERM-first,
        # so their finally blocks still release shared memory.
        import repro.perf.scheduler as scheduler_module
        from repro.perf.scheduler import ParallelUnitScheduler

        markers = [tmp_path / "w0.marker", tmp_path / "w1.marker"]

        real_wait = scheduler_module.wait
        state = {"interrupted": False}

        def first_interrupt_wait(fs, timeout=None, return_when=None):
            if not state["interrupted"]:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if all(m.exists() for m in markers):
                        break
                    real_wait(fs, timeout=0.05, return_when=return_when)
                state["interrupted"] = True
                raise KeyboardInterrupt
            return real_wait(fs, timeout=timeout, return_when=return_when)

        monkeypatch.setattr(scheduler_module, "wait", first_interrupt_wait)

        class _SecondInterruptOnDrain:
            """Executor proxy whose graceful drain gets the second Ctrl-C."""

            def __init__(self, executor):
                self._executor = executor
                self._interrupts_left = 1

            def __getattr__(self, name):
                return getattr(self._executor, name)

            def shutdown(self, wait=True, cancel_futures=False):
                if wait and self._interrupts_left:
                    self._interrupts_left -= 1
                    raise KeyboardInterrupt
                return self._executor.shutdown(
                    wait=wait, cancel_futures=cancel_futures
                )

        scheduler = ParallelUnitScheduler(jobs=2)
        real_new_executor = scheduler._new_executor
        monkeypatch.setattr(
            scheduler,
            "_new_executor",
            lambda: _SecondInterruptOnDrain(real_new_executor()),
        )

        shm_before = _shm_entries()
        children_before = set(multiprocessing.active_children())
        started = time.monotonic()
        outcome = scheduler.run(
            [str(marker) for marker in markers], _hold_shm_and_sleep
        )
        elapsed = time.monotonic() - started

        assert outcome.interrupted
        assert outcome.hard_cancelled
        assert not outcome.completed
        # Bounded: nowhere near the workers' 120s sleep — SIGTERM (plus
        # at worst the 5s SIGKILL grace) ended them.
        assert elapsed < 30
        assert _shm_entries() - shm_before == set()
        assert _wait_no_new_children(children_before) == set()


class TestPartialConstructionRollback:
    def test_pool_construction_failure_rolls_back_shared_blocks(
        self, monkeypatch
    ) -> None:
        # Fail *after* the shm blocks exist but *before* the pool runs:
        # _ensure_pool must unlink everything it created, because no
        # finalizer has been registered yet at that point.
        import numpy as np

        import repro.fl.engine as engine_module
        from repro.data.synthetic_mnist import load_synthetic_mnist
        from repro.fl.model import LogisticRegressionConfig
        from repro.fl.partition import partition_iid
        from repro.fl.training import build_clients

        train, _ = load_synthetic_mnist(n_train=80, n_test=40, seed=0)
        model = LogisticRegressionConfig(
            n_features=train.n_features, n_classes=train.n_classes
        )
        shards = partition_iid(train, 4, np.random.default_rng(0))
        clients = build_clients(shards, model)
        config = FederatedConfig(
            n_rounds=3,
            participants_per_round=2,
            local_epochs=1,
            backend="pool",
        )
        engine = create_engine("pool", clients, config)
        assert isinstance(engine, PoolEngine)

        real_mp = engine_module.multiprocessing

        class _ExplodingContext:
            def Pool(self, *args, **kwargs):
                raise RuntimeError("injected pool-start failure")

        class _SabotagedMp:
            @staticmethod
            def get_all_start_methods():
                return real_mp.get_all_start_methods()

            @staticmethod
            def get_context(method):
                return _ExplodingContext()

        monkeypatch.setattr(engine_module, "multiprocessing", _SabotagedMp())

        shm_before = _shm_entries()
        params = np.zeros(model.n_parameters, dtype=np.float64)
        with pytest.raises(RuntimeError, match="injected pool-start failure"):
            engine.train_round([0, 1], params, round_index=0, learning_rate=0.1)

        assert _shm_entries() - shm_before == set()
        # The engine is still usable once the fault clears.
        monkeypatch.setattr(engine_module, "multiprocessing", real_mp)
        results = engine.train_round(
            [0, 1], params, round_index=0, learning_rate=0.1
        )
        assert len(results) == 2
        engine.close()
        assert _shm_entries() - shm_before == set()
