"""Shared fixtures for the parallel-runtime tests: millisecond units."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, RunSpec


@pytest.fixture()
def tiny_spec() -> RunSpec:
    """A fixed-budget unit small enough for byte-level identity tests."""
    return RunSpec(
        name="tiny",
        n_train=160,
        n_test=80,
        n_servers=4,
        participants=2,
        epochs=2,
        max_rounds=3,
        train_to_target=False,
    )


@pytest.fixture()
def tiny_campaign(tiny_spec: RunSpec) -> CampaignSpec:
    """A 2x2 (K, E) grid over the tiny unit — four units total."""
    return CampaignSpec(
        name="tiny-grid",
        base=tiny_spec,
        participants=(1, 2),
        epochs=(1, 2),
    )
