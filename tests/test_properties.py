"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic heart of the paper: the convergence bound, the
biconvex objective, the closed-form optima, and the optimality of the
ACS + integer-refinement pipeline against exhaustive search, across
randomly drawn problem instances.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.acs import ACSSolver
from repro.core.baselines import grid_search
from repro.core.calibration import GapObservation, fit_convergence_constants
from repro.core.closed_form import e_star_unclipped, k_star, k_star_unclipped
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams, total_energy
from repro.core.objective import EnergyObjective
from repro.data.dataset import Dataset
from repro.fl.model import softmax
from repro.fl.partition import partition_dirichlet, partition_iid
from repro.iot.collision import SlottedAlohaModel
from repro.sim.processes import StepProcess

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------

bounds = st.builds(
    ConvergenceBound,
    a0=st.floats(0.1, 100.0),
    a1=st.floats(0.0, 0.5),
    a2=st.floats(0.0, 1e-3),
)

energies = st.builds(
    EnergyParams,
    rho=st.floats(0.0, 0.01),
    c0=st.floats(1e-6, 1e-3),
    c1=st.floats(1e-5, 1e-2),
    e_upload=st.floats(0.0, 5.0),
    n_samples=st.integers(10, 5000),
)


@st.composite
def objectives(draw) -> EnergyObjective:
    bound = draw(bounds)
    energy = draw(energies)
    n_servers = draw(st.integers(2, 30))
    # Choose epsilon above the (E=1, K=N) floor so the problem is feasible.
    floor = bound.asymptotic_gap(1, n_servers)
    epsilon = floor + draw(st.floats(0.01, 1.0))
    return EnergyObjective(
        bound=bound, energy=energy, epsilon=epsilon, n_servers=n_servers
    )


# ----------------------------------------------------------------------
# Convergence bound.
# ----------------------------------------------------------------------


class TestBoundProperties:
    @given(bounds, st.integers(1, 200), st.integers(1, 50), st.integers(1, 40))
    def test_gap_positive_and_monotone_in_rounds(self, bound, t, e, k) -> None:
        gap = bound.loss_gap(t, e, k)
        assert gap > 0
        assert bound.loss_gap(t + 1, e, k) <= gap

    @given(bounds, st.integers(1, 50), st.integers(1, 40), st.floats(0.001, 2.0))
    def test_required_rounds_inverts_gap(self, bound, e, k, margin) -> None:
        epsilon = bound.asymptotic_gap(e, k) + margin
        t_star = bound.required_rounds(epsilon, e, k)
        assert t_star > 0
        assert bound.loss_gap(t_star, e, k) == pytest.approx(epsilon, rel=1e-9)

    @given(bounds, st.integers(1, 50), st.integers(2, 40), st.floats(0.001, 2.0))
    def test_more_participants_never_hurt(self, bound, e, k, margin) -> None:
        epsilon = bound.asymptotic_gap(e, k - 1) + margin
        fewer = bound.required_rounds(epsilon, e, k - 1)
        more = bound.required_rounds(epsilon, e, k)
        assert more <= fewer * (1 + 1e-12)


# ----------------------------------------------------------------------
# Objective: biconvexity and optima.
# ----------------------------------------------------------------------


class TestObjectiveProperties:
    @given(objectives(), st.data())
    @settings(max_examples=60)
    def test_midpoint_convex_in_k(self, objective, data) -> None:
        epochs = data.draw(st.floats(1.0, 20.0))
        try:
            lo, hi = objective.k_domain(epochs)
        except ValueError:
            assume(False)
        assume(hi > lo * 1.001)
        k1 = data.draw(st.floats(lo, hi))
        k2 = data.draw(st.floats(lo, hi))
        mid = 0.5 * (k1 + k2)
        lhs = objective.value(mid, epochs)
        rhs = 0.5 * (objective.value(k1, epochs) + objective.value(k2, epochs))
        assert lhs <= rhs * (1 + 1e-9)

    @given(objectives(), st.data())
    @settings(max_examples=60)
    def test_midpoint_convex_in_e(self, objective, data) -> None:
        participants = data.draw(
            st.integers(1, objective.n_servers).map(float)
        )
        try:
            lo, hi = objective.e_domain(participants)
        except ValueError:
            assume(False)
        hi = min(hi, 500.0)
        assume(hi > lo * 1.001)
        e1 = data.draw(st.floats(lo, hi))
        e2 = data.draw(st.floats(lo, hi))
        mid = 0.5 * (e1 + e2)
        lhs = objective.value(participants, mid)
        rhs = 0.5 * (
            objective.value(participants, e1) + objective.value(participants, e2)
        )
        assert lhs <= rhs * (1 + 1e-9)

    @given(objectives(), st.data())
    @settings(max_examples=60)
    def test_k_star_no_worse_than_random_feasible_k(self, objective, data) -> None:
        epochs = data.draw(st.floats(1.0, 10.0))
        try:
            lo, hi = objective.k_domain(epochs)
        except ValueError:
            assume(False)
        star = k_star(objective, epochs)
        other = data.draw(st.floats(lo, hi))
        assert objective.value(star, epochs) <= objective.value(other, epochs) * (
            1 + 1e-9
        )

    @given(objectives())
    @settings(max_examples=60)
    def test_stationary_k_is_twice_feasibility_edge(self, objective) -> None:
        # K*_unclipped = 2 A1 / (eps - A2(E-1)) is exactly twice the
        # feasibility threshold A1 / (eps - A2(E-1)): the optimum sits at
        # twice the minimum viable participation.
        assume(objective.bound.a1 > 0)
        edge = objective.bound.min_feasible_participants(objective.epsilon, 1.0)
        star = k_star_unclipped(objective, 1.0)
        assert star == pytest.approx(2 * edge, rel=1e-12)


# ----------------------------------------------------------------------
# ACS + integer refinement vs exhaustive search.
# ----------------------------------------------------------------------


class TestACSOptimality:
    @given(objectives())
    @settings(max_examples=25, deadline=None)
    def test_acs_matches_grid_search(self, objective) -> None:
        try:
            result = ACSSolver(objective).solve()
        except ValueError:
            assume(False)
        best = grid_search(objective, max_epochs=800)
        assert result.energy_int is not None
        # ACS + plateau rounding must find the exhaustive-search optimum
        # whenever the optimum's E fits in the grid bound.
        if best.epochs < 800:
            assert result.energy_int <= best.energy * (1 + 1e-9)

    @given(objectives())
    @settings(max_examples=25, deadline=None)
    def test_integer_plan_feasible_and_consistent(self, objective) -> None:
        try:
            result = ACSSolver(objective).solve()
        except ValueError:
            assume(False)
        k, e, t = result.participants_int, result.epochs_int, result.rounds_int
        assert objective.is_feasible(k, e)
        assert t == objective.bound.required_rounds_int(objective.epsilon, e, k)
        assert result.energy_int == pytest.approx(
            t * k * objective.energy.round_energy(e)
        )


# ----------------------------------------------------------------------
# Calibration round trip.
# ----------------------------------------------------------------------


class TestCalibrationProperties:
    @given(
        st.floats(0.5, 50.0),
        st.floats(0.01, 0.5),
        st.floats(1e-5, 1e-3),
    )
    @settings(max_examples=40)
    def test_fit_recovers_exact_constants(self, a0, a1, a2) -> None:
        truth = ConvergenceBound(a0=a0, a1=a1, a2=a2)
        observations = [
            GapObservation(t, e, k, truth.loss_gap(t, e, k))
            for t in (3, 17, 71)
            for e in (1, 8, 33)
            for k in (1, 4, 16)
        ]
        fitted = fit_convergence_constants(observations)
        assert fitted.a0 == pytest.approx(a0, rel=1e-4)
        assert fitted.a1 == pytest.approx(a1, rel=1e-4)
        assert fitted.a2 == pytest.approx(a2, rel=1e-3)


# ----------------------------------------------------------------------
# Energy model.
# ----------------------------------------------------------------------


class TestEnergyProperties:
    @given(energies, st.integers(1, 100), st.integers(1, 30), st.integers(1, 500))
    def test_total_energy_additive_in_rounds(self, params, e, k, t) -> None:
        one_round = total_energy(params, e, k, 1)
        assert total_energy(params, e, k, t) == pytest.approx(t * one_round)

    @given(energies, st.integers(1, 100), st.integers(1, 30))
    def test_round_energy_decomposes(self, params, e, k) -> None:
        per_server = params.round_energy(e)
        assert per_server == pytest.approx(
            params.rho * params.n_samples
            + params.c0 * e * params.n_samples
            + params.c1 * e
            + params.e_upload
        )


# ----------------------------------------------------------------------
# Substrate invariants.
# ----------------------------------------------------------------------


class TestSubstrateProperties:
    @given(st.integers(2, 40), st.integers(1, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_iid_partition_is_exact_cover(self, n_per, n_parts, seed) -> None:
        n = n_per * n_parts
        rng = np.random.default_rng(seed)
        dataset = Dataset(
            np.arange(n, dtype=float).reshape(n, 1),
            np.zeros(n, dtype=np.int64),
            2,
        )
        parts = partition_iid(dataset, n_parts, rng)
        values = sorted(
            float(v) for part in parts for v in part.features.ravel()
        )
        assert values == [float(i) for i in range(n)]

    @given(
        st.integers(2, 8),
        st.floats(0.05, 10.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30)
    def test_dirichlet_partition_nonempty_cover(self, n_parts, alpha, seed) -> None:
        rng = np.random.default_rng(seed)
        n = 40 * n_parts
        dataset = Dataset(
            np.arange(n, dtype=float).reshape(n, 1),
            np.tile(np.arange(4), n // 4).astype(np.int64),
            4,
        )
        parts = partition_dirichlet(dataset, n_parts, alpha, rng)
        assert all(len(p) > 0 for p in parts)
        assert sum(len(p) for p in parts) == n

    @given(
        st.lists(
            st.tuples(st.floats(0.01, 10.0), st.floats(0.1, 10.0)),
            min_size=1,
            max_size=10,
        )
    )
    def test_step_process_integral_additivity(self, segments) -> None:
        process = StepProcess()
        for duration, value in segments:
            process.append(duration, value)
        mid = process.start_time + process.duration / 2
        left = process.integral(process.start_time, mid)
        right = process.integral(mid, process.end_time)
        assert left + right == pytest.approx(process.integral(), rel=1e-9)

    @given(st.integers(1, 200), st.floats(0.001, 0.5))
    def test_aloha_success_probability_in_unit_interval(self, m, q) -> None:
        model = SlottedAlohaModel(m, q)
        assert 0.0 < model.success_probability <= 1.0
        assert model.energy_inflation_factor() >= 1.0

    def test_aloha_underflow_raises_cleanly(self) -> None:
        # A hopelessly congested cell: success probability underflows and
        # the inflation factor refuses to return inf.
        model = SlottedAlohaModel(n_devices=100_000, transmit_probability=0.99)
        assert model.success_probability == 0.0
        with pytest.raises(ValueError, match="too congested"):
            model.energy_inflation_factor()

    @given(
        st.integers(1, 20),
        st.integers(2, 10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30)
    def test_softmax_is_distribution(self, rows, classes, seed) -> None:
        logits = np.random.default_rng(seed).normal(0, 10, size=(rows, classes))
        probs = softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
