"""Unit tests for the baseline policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    fixed_policy,
    grid_search,
    optimize_e_only,
    optimize_k_only,
    random_search,
)
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective


@pytest.fixture()
def objective() -> EnergyObjective:
    return EnergyObjective(
        bound=ConvergenceBound(a0=5.0, a1=0.02, a2=1e-4),
        energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
        epsilon=0.05,
        n_servers=20,
    )


class TestFixedPolicy:
    def test_baseline_k1_e1(self, objective: EnergyObjective) -> None:
        result = fixed_policy(objective, 1, 1)
        assert result.participants == 1
        assert result.epochs == 1
        assert result.energy == pytest.approx(objective.value_integer(1, 1))
        assert result.rounds == objective.bound.required_rounds_int(0.05, 1, 1)

    def test_custom_name(self, objective: EnergyObjective) -> None:
        assert fixed_policy(objective, 2, 3, name="mine").name == "mine"

    def test_infeasible_raises(self, objective: EnergyObjective) -> None:
        bad = EnergyObjective(
            bound=ConvergenceBound(a0=5.0, a1=0.5, a2=0.0),
            energy=objective.energy,
            epsilon=0.05,
            n_servers=20,
        )
        with pytest.raises(ValueError, match="infeasible"):
            fixed_policy(bad, 1, 1)

    def test_savings_vs(self, objective: EnergyObjective) -> None:
        expensive = fixed_policy(objective, 1, 1)
        cheap = grid_search(objective, max_epochs=500)
        saving = cheap.savings_vs(expensive)
        assert 0.0 < saving < 1.0

    def test_savings_vs_rejects_zero_reference(self, objective) -> None:
        result = fixed_policy(objective, 1, 1)
        zero = fixed_policy(objective, 1, 1)
        object.__setattr__(zero, "energy", 0.0)
        with pytest.raises(ValueError, match="positive"):
            result.savings_vs(zero)


class TestGridSearch:
    def test_finds_global_integer_minimum(self, objective: EnergyObjective) -> None:
        best = grid_search(objective, max_epochs=300)
        # Verify against a direct scan.
        values = []
        for k in range(1, 21):
            for e in range(1, 301):
                if objective.is_feasible(k, e):
                    values.append(objective.value_integer(k, e))
        assert best.energy == pytest.approx(min(values))

    def test_counts_evaluations(self, objective: EnergyObjective) -> None:
        best = grid_search(objective, max_epochs=50)
        assert best.evaluations > 0

    def test_infeasible_everywhere_raises(self) -> None:
        objective = EnergyObjective(
            bound=ConvergenceBound(a0=5.0, a1=5.0, a2=0.0),
            energy=EnergyParams(rho=0.0),
            epsilon=0.05,
            n_servers=20,
        )
        with pytest.raises(ValueError, match="no feasible"):
            grid_search(objective)


class TestRandomSearch:
    def test_finds_feasible_plan(self, objective: EnergyObjective) -> None:
        result = random_search(objective, 200, np.random.default_rng(0), max_epochs=300)
        assert objective.is_feasible(result.participants, result.epochs)

    def test_never_beats_grid(self, objective: EnergyObjective) -> None:
        grid = grid_search(objective, max_epochs=300)
        rand = random_search(objective, 500, np.random.default_rng(1), max_epochs=300)
        assert rand.energy >= grid.energy - 1e-12

    def test_more_trials_no_worse(self, objective: EnergyObjective) -> None:
        few = random_search(objective, 20, np.random.default_rng(2), max_epochs=300)
        many = random_search(objective, 2000, np.random.default_rng(2), max_epochs=300)
        assert many.energy <= few.energy + 1e-12

    def test_rejects_nonpositive_trials(self, objective: EnergyObjective) -> None:
        with pytest.raises(ValueError, match="n_trials"):
            random_search(objective, 0, np.random.default_rng(0))


class TestSingleParameter:
    def test_k_only_feasible_and_integer(self, objective: EnergyObjective) -> None:
        result = optimize_k_only(objective, epochs=2)
        assert result.epochs == 2
        assert objective.is_feasible(result.participants, 2)

    def test_e_only_feasible_and_integer(self, objective: EnergyObjective) -> None:
        result = optimize_e_only(objective, participants=3)
        assert result.participants == 3
        assert objective.is_feasible(3, result.epochs)

    def test_joint_beats_or_ties_single_parameter(
        self, objective: EnergyObjective
    ) -> None:
        # The paper's core argument: joint (K, E) optimisation dominates
        # single-parameter tuning.
        joint = grid_search(objective, max_epochs=300)
        k_only = optimize_k_only(objective, epochs=1)
        e_only = optimize_e_only(objective, participants=1)
        assert joint.energy <= k_only.energy + 1e-12
        assert joint.energy <= e_only.energy + 1e-12

    def test_k_only_near_closed_form(self, objective: EnergyObjective) -> None:
        from repro.core.closed_form import k_star

        result = optimize_k_only(objective, epochs=2)
        continuous = k_star(objective, 2)
        assert abs(result.participants - continuous) <= 1.0
