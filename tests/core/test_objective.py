"""Unit tests for the reduced energy objective (eqs. 12-13, Lemmas 1-2)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective


def _objective(
    a0: float = 5.0,
    a1: float = 0.02,
    a2: float = 1e-4,
    epsilon: float = 0.05,
    n_servers: int = 20,
) -> EnergyObjective:
    return EnergyObjective(
        bound=ConvergenceBound(a0=a0, a1=a1, a2=a2),
        energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
        epsilon=epsilon,
        n_servers=n_servers,
    )


class TestValue:
    def test_matches_analytic_form(self) -> None:
        obj = _objective()
        k, e = 5.0, 3.0
        b0, b1 = obj.energy.b0, obj.energy.b1
        denom = (obj.epsilon * k - obj.bound.a1 - obj.bound.a2 * k * (e - 1)) * e
        expected = obj.bound.a0 * k**2 * (b0 * e + b1) / denom
        assert obj.value(k, e) == pytest.approx(expected)

    def test_value_is_t_times_round_cost(self) -> None:
        obj = _objective()
        k, e = 4.0, 2.0
        t_star = obj.rounds(k, e)
        assert obj.value(k, e) == pytest.approx(
            t_star * k * obj.energy.round_energy(e)
        )

    def test_value_rejects_infeasible(self) -> None:
        obj = _objective(a1=0.5, epsilon=0.05)
        with pytest.raises(ValueError, match="infeasible"):
            obj.value(1, 1)  # A1/K = 0.5 > eps

    def test_value_rejects_k_above_n(self) -> None:
        obj = _objective()
        with pytest.raises(ValueError, match="infeasible"):
            obj.value(21, 1)

    def test_value_integer_uses_ceiling(self) -> None:
        obj = _objective()
        t_int = obj.bound.required_rounds_int(obj.epsilon, 2, 5)
        assert obj.value_integer(5, 2) == pytest.approx(
            t_int * 5 * obj.energy.round_energy(2)
        )

    def test_value_integer_at_least_continuous(self) -> None:
        obj = _objective()
        for k in (1, 3, 10, 20):
            for e in (1, 5, 20):
                if obj.is_feasible(k, e):
                    assert obj.value_integer(k, e) >= obj.value(k, e) - 1e-9

    def test_value_integer_rejects_fractional(self) -> None:
        with pytest.raises(ValueError, match="integers"):
            _objective().value_integer(2.5, 1)

    @pytest.mark.parametrize(
        "kwargs", [{"epsilon": 0.0}, {"epsilon": -1.0}, {"n_servers": 0}]
    )
    def test_rejects_invalid_construction(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            _objective(**kwargs)


class TestCurvature:
    def test_d2_dk2_positive_lemma1(self) -> None:
        obj = _objective()
        for e in (1.0, 2.0, 10.0):
            lo, hi = obj.k_domain(e)
            for k in np.linspace(lo, hi, 8):
                assert obj.d2_dk2(float(k), e) > 0

    def test_d2_de2_positive_lemma2(self) -> None:
        obj = _objective()
        for k in (1.0, 5.0, 20.0):
            lo, hi = obj.e_domain(k)
            hi = min(hi, 400.0)
            for e in np.linspace(lo, hi, 8):
                assert obj.d2_de2(k, float(e)) > 0

    def test_d2_dk2_matches_finite_differences(self) -> None:
        obj = _objective()
        k, e, h = 8.0, 4.0, 1e-4
        numeric = (obj.value(k + h, e) - 2 * obj.value(k, e) + obj.value(k - h, e)) / h**2
        assert obj.d2_dk2(k, e) == pytest.approx(numeric, rel=1e-3)

    def test_d2_de2_matches_finite_differences(self) -> None:
        obj = _objective()
        k, e, h = 8.0, 4.0, 1e-4
        numeric = (obj.value(k, e + h) - 2 * obj.value(k, e) + obj.value(k, e - h)) / h**2
        assert obj.d2_de2(k, e) == pytest.approx(numeric, rel=1e-4)

    def test_certificates_hold(self) -> None:
        obj = _objective()
        assert obj.certify_convex_in_k(epochs=3)
        assert obj.certify_convex_in_e(participants=7)

    def test_curvature_rejects_infeasible_point(self) -> None:
        obj = _objective(a1=0.5)
        with pytest.raises(ValueError, match="infeasible"):
            obj.d2_dk2(1, 1)
        with pytest.raises(ValueError, match="infeasible"):
            obj.d2_de2(1, 1)


class TestDomains:
    def test_k_domain_edges_feasible(self) -> None:
        obj = _objective(a1=0.5, epsilon=0.05)  # lower edge above 1
        lo, hi = obj.k_domain(1.0)
        assert lo > 1.0
        assert obj.is_feasible(lo, 1.0)
        assert hi == 20.0

    def test_k_domain_raises_when_empty(self) -> None:
        # A1/eps > N: even K = N is infeasible.
        obj = _objective(a1=2.0, epsilon=0.05, n_servers=20)
        with pytest.raises(ValueError, match="no feasible K"):
            obj.k_domain(1.0)

    def test_e_domain_upper_edge(self) -> None:
        obj = _objective()
        lo, hi = obj.e_domain(10.0)
        assert lo == 1.0
        assert obj.is_feasible(10.0, hi)
        assert not obj.is_feasible(10.0, hi * 1.01)

    def test_e_domain_unbounded_without_drift(self) -> None:
        obj = _objective(a2=0.0)
        lo, hi = obj.e_domain(5.0)
        assert math.isinf(hi)

    def test_e_domain_raises_when_empty(self) -> None:
        # Strong drift: even E = 1 barely feasible only for big K; pick
        # K where C4 < A2*K so no E >= 1 fits.
        obj = _objective(a1=0.9, a2=0.04, epsilon=0.05, n_servers=100)
        with pytest.raises(ValueError):
            obj.e_domain(2.0)


class TestMinimumStructure:
    def test_interior_k_minimum_found_by_scan(self) -> None:
        # With a1 sizeable the optimal K is interior; the scan minimum
        # must beat both edges.
        obj = _objective(a1=0.3, epsilon=0.05)
        lo, hi = obj.k_domain(2.0)
        grid = np.linspace(lo, hi, 400)
        values = [obj.value(float(k), 2.0) for k in grid]
        best = int(np.argmin(values))
        assert 0 < best < len(grid) - 1

    def test_interior_e_minimum_found_by_scan(self) -> None:
        obj = _objective(a2=5e-4, epsilon=0.05)
        lo, hi = obj.e_domain(10.0)
        grid = np.linspace(lo, min(hi, 200.0), 400)
        values = [obj.value(10.0, float(e)) for e in grid]
        best = int(np.argmin(values))
        assert 0 < best < len(grid) - 1
