"""Unit tests for the calibration fits (§VI-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants
from repro.core.calibration import (
    GapObservation,
    fit_convergence_constants,
    fit_training_energy,
    fit_training_timing,
    gap_observations_from_history,
)
from repro.core.convergence import ConvergenceBound
from repro.fl.metrics import RoundRecord, TrainingHistory


class TestEnergyFit:
    def test_recovers_paper_constants_from_table1(self) -> None:
        fit = fit_training_energy(
            dict(constants.TABLE_I_DURATIONS), constants.POWER_TRAINING_W
        )
        # The paper reports c0 = 7.79e-5 and c1 = 3.34e-3 from this data.
        # c0 reproduces to <1%; plain least squares on the printed grid
        # gives c1 ~ 2.6e-3 rather than 3.34e-3 (the paper's fit likely
        # used raw traces, not the rounded table), so c1 gets a loose
        # tolerance.
        assert fit.c0 == pytest.approx(constants.C0_JOULES_PER_SAMPLE_EPOCH, rel=0.02)
        assert fit.c1 == pytest.approx(constants.C1_JOULES_PER_EPOCH, rel=0.35)

    def test_exact_recovery_from_synthetic_grid(self) -> None:
        c0, c1, power = 2e-5, 4e-3, 5.0
        durations = {
            (e, n): e * (c0 * n + c1) / power
            for e in (1, 5, 10)
            for n in (50, 500, 5000)
        }
        fit = fit_training_energy(durations, power)
        assert fit.c0 == pytest.approx(c0, rel=1e-10)
        assert fit.c1 == pytest.approx(c1, rel=1e-10)
        assert fit.rmse == pytest.approx(0.0, abs=1e-12)

    def test_noisy_grid_recovers_approximately(self) -> None:
        rng = np.random.default_rng(0)
        c0, c1, power = 7.79e-5, 3.34e-3, 5.553
        durations = {
            (e, n): e * (c0 * n + c1) / power * (1 + rng.normal(0, 0.02))
            for e in (10, 20, 40)
            for n in (100, 500, 1000, 2000)
        }
        fit = fit_training_energy(durations, power)
        assert fit.c0 == pytest.approx(c0, rel=0.1)
        assert fit.rmse > 0

    def test_timing_fit_is_energy_fit_over_power(self) -> None:
        timing = fit_training_timing(dict(constants.TABLE_I_DURATIONS))
        energy = fit_training_energy(
            dict(constants.TABLE_I_DURATIONS), constants.POWER_TRAINING_W
        )
        assert energy.c0 == pytest.approx(
            timing.tau0 * constants.POWER_TRAINING_W, rel=1e-10
        )
        assert energy.c1 == pytest.approx(
            timing.tau1 * constants.POWER_TRAINING_W, rel=1e-10
        )

    def test_rejects_too_few_points(self) -> None:
        with pytest.raises(ValueError, match="at least two"):
            fit_training_energy({(1, 10): 0.5}, 5.0)

    def test_rejects_bad_measurements(self) -> None:
        with pytest.raises(ValueError, match="positive"):
            fit_training_energy({(1, 10): -0.5, (2, 10): 0.5}, 5.0)
        with pytest.raises(ValueError, match="invalid measurement"):
            fit_training_energy({(0, 10): 0.5, (2, 10): 0.5}, 5.0)
        with pytest.raises(ValueError, match="training power"):
            fit_training_energy({(1, 10): 0.5, (2, 10): 0.9}, 0.0)


class TestConvergenceFit:
    def _synthetic_observations(
        self, bound: ConvergenceBound, noise: float = 0.0, seed: int = 0
    ) -> list[GapObservation]:
        rng = np.random.default_rng(seed)
        observations = []
        for k in (1, 2, 5, 10, 20):
            for e in (1, 5, 20, 60):
                for t in (5, 20, 80):
                    gap = bound.loss_gap(t, e, k) * (1 + noise * rng.normal())
                    observations.append(GapObservation(t, e, k, max(gap, 1e-6)))
        return observations

    def test_exact_recovery(self) -> None:
        truth = ConvergenceBound(a0=12.0, a1=0.3, a2=2e-3)
        fitted = fit_convergence_constants(self._synthetic_observations(truth))
        assert fitted.a0 == pytest.approx(truth.a0, rel=1e-6)
        assert fitted.a1 == pytest.approx(truth.a1, rel=1e-6)
        assert fitted.a2 == pytest.approx(truth.a2, rel=1e-6)

    def test_noisy_recovery(self) -> None:
        truth = ConvergenceBound(a0=12.0, a1=0.3, a2=2e-3)
        fitted = fit_convergence_constants(
            self._synthetic_observations(truth, noise=0.05, seed=3)
        )
        assert fitted.a0 == pytest.approx(truth.a0, rel=0.15)
        assert fitted.a1 == pytest.approx(truth.a1, rel=0.15)
        assert fitted.a2 == pytest.approx(truth.a2, rel=0.25)

    def test_absolute_weighting_mode(self) -> None:
        truth = ConvergenceBound(a0=12.0, a1=0.3, a2=2e-3)
        fitted = fit_convergence_constants(
            self._synthetic_observations(truth), weighting="absolute"
        )
        assert fitted.a0 == pytest.approx(truth.a0, rel=1e-6)

    def test_nonnegativity_enforced(self) -> None:
        # Gaps that *grow* with 1/K would want A1 < 0; NNLS clamps it.
        observations = [
            GapObservation(10, 1, 1, 0.1),
            GapObservation(10, 1, 2, 0.2),
            GapObservation(10, 1, 10, 0.9),
            GapObservation(20, 1, 10, 0.8),
        ]
        fitted = fit_convergence_constants(observations)
        assert fitted.a1 >= 0.0
        assert fitted.a2 >= 0.0

    def test_a0_floor_applied(self) -> None:
        # Constant gaps identify no 1/(TE) term; A0 must still be valid.
        observations = [
            GapObservation(t, 1, k, 0.5) for t in (10, 20) for k in (1, 2, 4)
        ]
        fitted = fit_convergence_constants(observations, min_a0=1e-9)
        assert fitted.a0 >= 1e-9

    def test_rejects_too_few(self) -> None:
        with pytest.raises(ValueError, match="at least three"):
            fit_convergence_constants([GapObservation(1, 1, 1, 0.5)] * 2)

    def test_rejects_unknown_weighting(self) -> None:
        obs = [GapObservation(1, 1, 1, 0.5)] * 3
        with pytest.raises(ValueError, match="weighting"):
            fit_convergence_constants(obs, weighting="huber")

    def test_observation_validation(self) -> None:
        with pytest.raises(ValueError, match="gap must be positive"):
            GapObservation(1, 1, 1, 0.0)
        with pytest.raises(ValueError, match=">= 1"):
            GapObservation(0, 1, 1, 0.5)


class TestHistoryConversion:
    def _history(self, losses: list[float], epochs: int = 4) -> TrainingHistory:
        history = TrainingHistory()
        for t, loss in enumerate(losses):
            history.append(
                RoundRecord(
                    round_index=t,
                    train_loss=loss,
                    test_accuracy=0.5,
                    participants=(0,),
                    local_epochs=epochs,
                    learning_rate=0.01,
                )
            )
        return history

    def test_produces_observations(self) -> None:
        history = self._history([2.0, 1.5, 1.2, 1.1])
        obs = gap_observations_from_history(history, participants=3, f_star=1.0)
        assert len(obs) == 4
        assert obs[0].rounds == 1
        assert obs[0].gap == pytest.approx(1.0)
        assert all(o.participants == 3 and o.epochs == 4 for o in obs)

    def test_stride_subsamples(self) -> None:
        history = self._history([2.0, 1.5, 1.2, 1.1, 1.05, 1.01])
        obs = gap_observations_from_history(history, 1, f_star=1.0, stride=2)
        assert [o.rounds for o in obs] == [1, 3, 5]

    def test_burn_in_drops_prefix(self) -> None:
        history = self._history([2.0, 1.5, 1.2, 1.1])
        obs = gap_observations_from_history(history, 1, f_star=1.0, burn_in=2)
        assert [o.rounds for o in obs] == [3, 4]

    def test_non_positive_gaps_dropped(self) -> None:
        history = self._history([2.0, 1.0, 0.5])
        obs = gap_observations_from_history(history, 1, f_star=1.0)
        assert [o.rounds for o in obs] == [1]

    def test_rejects_bad_args(self) -> None:
        history = self._history([2.0])
        with pytest.raises(ValueError, match="stride"):
            gap_observations_from_history(history, 1, 0.0, stride=0)
        with pytest.raises(ValueError, match="burn_in"):
            gap_observations_from_history(history, 1, 0.0, burn_in=-1)
