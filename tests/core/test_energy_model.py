"""Unit tests for the energy-consumption models (eqs. 4-6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import constants
from repro.core.energy_model import (
    EnergyParams,
    HeterogeneousEnergyParams,
    data_collection_energy,
    local_training_energy,
    round_energy_per_server,
    total_energy,
)


class TestEquations:
    def test_data_collection_is_linear(self) -> None:
        # eq. (4): e^I = rho * n.
        assert data_collection_energy(0.5, 10) == pytest.approx(5.0)
        assert data_collection_energy(0.5, 0) == 0.0

    def test_data_collection_rejects_negative_rho(self) -> None:
        with pytest.raises(ValueError, match="rho"):
            data_collection_energy(-0.1, 10)

    def test_local_training_matches_eq5(self) -> None:
        # eq. (5): e^P = c0*E*n + c1*E with the paper's fitted constants.
        c0, c1 = constants.C0_JOULES_PER_SAMPLE_EPOCH, constants.C1_JOULES_PER_EPOCH
        energy = local_training_energy(c0, c1, epochs=10, n_samples=1000)
        assert energy == pytest.approx(10 * (c0 * 1000 + c1))

    def test_local_training_zero_epochs(self) -> None:
        assert local_training_energy(1.0, 1.0, 0, 100) == 0.0

    def test_local_training_rejects_negative(self) -> None:
        with pytest.raises(ValueError):
            local_training_energy(-1.0, 0.0, 1, 1)
        with pytest.raises(ValueError):
            local_training_energy(0.0, 0.0, -1, 1)


class TestEnergyParams:
    def test_b0_b1(self) -> None:
        params = EnergyParams(rho=0.01, c0=1e-4, c1=1e-3, e_upload=0.5, n_samples=1000)
        assert params.b0 == pytest.approx(1e-4 * 1000 + 1e-3)
        assert params.b1 == pytest.approx(0.01 * 1000 + 0.5)

    def test_round_energy(self) -> None:
        params = EnergyParams(rho=0.01, c0=1e-4, c1=1e-3, e_upload=0.5, n_samples=1000)
        assert params.round_energy(5) == pytest.approx(params.b0 * 5 + params.b1)

    def test_round_energy_rejects_zero_epochs(self) -> None:
        with pytest.raises(ValueError, match="epochs"):
            EnergyParams(rho=0.0).round_energy(0)

    def test_defaults_are_paper_constants(self) -> None:
        params = EnergyParams(rho=0.0)
        assert params.c0 == constants.C0_JOULES_PER_SAMPLE_EPOCH
        assert params.c1 == constants.C1_JOULES_PER_EPOCH
        assert params.n_samples == constants.SAMPLES_PER_SERVER

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rho": -1.0},
            {"rho": 0.0, "c0": -1.0},
            {"rho": 0.0, "c1": -1.0},
            {"rho": 0.0, "e_upload": -1.0},
            {"rho": 0.0, "n_samples": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            EnergyParams(**kwargs)


class TestTotalEnergy:
    def test_total_is_product(self) -> None:
        # eq. (6) homogeneous: e = T * K * (B0 E + B1).
        params = EnergyParams(rho=0.01, e_upload=1.0, n_samples=100)
        assert total_energy(params, epochs=4, participants=3, rounds=7) == pytest.approx(
            7 * 3 * params.round_energy(4)
        )

    def test_accepts_continuous_relaxation(self) -> None:
        params = EnergyParams(rho=0.0, n_samples=100)
        value = total_energy(params, epochs=2.5, participants=1.5, rounds=3.7)
        assert value == pytest.approx(3.7 * 1.5 * (params.b0 * 2.5 + params.b1))

    def test_rejects_bad_ranges(self) -> None:
        params = EnergyParams(rho=0.0)
        with pytest.raises(ValueError, match="participants"):
            total_energy(params, 1, 0, 1)
        with pytest.raises(ValueError, match="rounds"):
            total_energy(params, 1, 1, 0)

    def test_round_energy_per_server_alias(self) -> None:
        params = EnergyParams(rho=0.0, n_samples=100)
        assert round_energy_per_server(params, 3) == params.round_energy(3)


class TestHeterogeneous:
    def _params(self) -> HeterogeneousEnergyParams:
        return HeterogeneousEnergyParams(
            rho=np.array([0.1, 0.2, 0.3]),
            c0=np.array([1e-4, 2e-4, 3e-4]),
            c1=np.array([1e-3, 1e-3, 1e-3]),
            e_upload=np.array([0.5, 1.0, 1.5]),
            n_samples=100,
        )

    def test_mean_matches_expectations(self) -> None:
        mean = self._params().mean()
        assert mean.rho == pytest.approx(0.2)
        assert mean.c0 == pytest.approx(2e-4)
        assert mean.e_upload == pytest.approx(1.0)

    def test_for_server_selects_row(self) -> None:
        server1 = self._params().for_server(1)
        assert server1.rho == pytest.approx(0.2)
        assert server1.c0 == pytest.approx(2e-4)

    def test_b0_b1_of_mean_match_eq12(self) -> None:
        # B0 = E[c0] n + E[c1], B1 = E[rho] n + E[e^U].
        het = self._params()
        mean = het.mean()
        assert mean.b0 == pytest.approx(2e-4 * 100 + 1e-3)
        assert mean.b1 == pytest.approx(0.2 * 100 + 1.0)

    def test_n_servers(self) -> None:
        assert self._params().n_servers == 3

    def test_rejects_length_mismatch(self) -> None:
        with pytest.raises(ValueError, match="equal length"):
            HeterogeneousEnergyParams(
                rho=np.zeros(3),
                c0=np.zeros(2),
                c1=np.zeros(3),
                e_upload=np.zeros(3),
                n_samples=10,
            )

    def test_rejects_negative_entries(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            HeterogeneousEnergyParams(
                rho=np.array([-0.1]),
                c0=np.zeros(1),
                c1=np.zeros(1),
                e_upload=np.zeros(1),
                n_samples=10,
            )

    def test_rejects_empty(self) -> None:
        with pytest.raises(ValueError, match="at least one server"):
            HeterogeneousEnergyParams(
                rho=np.zeros(0),
                c0=np.zeros(0),
                c1=np.zeros(0),
                e_upload=np.zeros(0),
                n_samples=10,
            )
