"""Unit tests for the Alternate Convex Search solver (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acs import ACSSolver
from repro.core.baselines import grid_search
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective


def _objective(
    a0: float = 5.0,
    a1: float = 0.02,
    a2: float = 1e-4,
    epsilon: float = 0.05,
    n_servers: int = 20,
    n_samples: int = 3000,
    rho: float = 1e-3,
    e_upload: float = 2.0,
) -> EnergyObjective:
    return EnergyObjective(
        bound=ConvergenceBound(a0=a0, a1=a1, a2=a2),
        energy=EnergyParams(rho=rho, e_upload=e_upload, n_samples=n_samples),
        epsilon=epsilon,
        n_servers=n_servers,
    )


class TestContinuousSolve:
    def test_converges_with_history(self) -> None:
        solver = ACSSolver(_objective())
        result = solver.solve()
        assert result.converged
        assert result.n_iterations >= 2
        assert result.iterates[0].iteration == 0

    def test_objective_monotone_nonincreasing(self) -> None:
        result = ACSSolver(_objective(a1=0.3, a2=5e-4)).solve()
        values = [it.objective_value for it in result.iterates]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_solution_is_partial_optimum(self) -> None:
        # At an ACS fixed point, neither coordinate can improve alone.
        obj = _objective(a1=0.3, a2=5e-4)
        result = ACSSolver(obj).solve()
        k, e = result.participants, result.epochs
        base = obj.value(k, e)
        for dk in (-0.01, 0.01):
            if obj.is_feasible(k + dk, e):
                assert obj.value(k + dk, e) >= base - 1e-9
        for de in (-0.01, 0.01):
            if e + de >= 1 and obj.is_feasible(k, e + de):
                assert obj.value(k, e + de) >= base - 1e-9

    def test_insensitive_to_initial_point(self) -> None:
        obj = _objective(a1=0.3, a2=5e-4)
        from_top = ACSSolver(obj).solve(k0=20.0, e0=1.0)
        lo, hi = obj.e_domain(20.0)
        from_side = ACSSolver(obj).solve(k0=20.0, e0=min(50.0, hi))
        assert from_top.objective_value == pytest.approx(
            from_side.objective_value, rel=1e-6
        )

    def test_infeasible_initial_point_raises(self) -> None:
        obj = _objective(a1=0.5)
        with pytest.raises(ValueError, match="infeasible"):
            ACSSolver(obj).solve(k0=1.0, e0=1.0)

    def test_infeasible_problem_raises(self) -> None:
        # Even K = N cannot meet the target.
        obj = _objective(a1=2.0, epsilon=0.05, n_servers=20)
        with pytest.raises(ValueError, match="no feasible K"):
            ACSSolver(obj).solve()

    @pytest.mark.parametrize(
        "kwargs", [{"residual": 0.0}, {"residual": -1.0}, {"max_iterations": 0}]
    )
    def test_rejects_invalid_solver_config(self, kwargs: dict) -> None:
        with pytest.raises(ValueError):
            ACSSolver(_objective(), **kwargs)


class TestIntegerSolve:
    @pytest.mark.parametrize(
        "objective_kwargs",
        [
            {},  # defaults: interior-ish optimum
            {"a1": 0.3, "a2": 5e-4},  # strongly interior in both axes
            {"a1": 1e-5, "a2": 1e-5},  # K* clipped to 1
            {"a1": 0.9, "epsilon": 0.05},  # K* clipped to N
            {"a2": 0.0},  # no drift: E knee at T* = 1
            {"a2": 0.0, "a1": 0.0},  # pure optimisation term
            {"epsilon": 0.5},  # loose target, T small
        ],
    )
    def test_matches_grid_search(self, objective_kwargs: dict) -> None:
        obj = _objective(**objective_kwargs)
        plan = ACSSolver(obj).solve()
        best = grid_search(obj, max_epochs=1500)
        assert plan.energy_int is not None
        assert plan.energy_int == pytest.approx(best.energy, rel=1e-12)

    def test_integer_fields_populated(self) -> None:
        result = ACSSolver(_objective()).solve()
        assert result.participants_int is not None
        assert result.epochs_int is not None
        assert result.rounds_int is not None
        assert result.rounds_int >= 1
        assert 1 <= result.participants_int <= 20
        assert result.epochs_int >= 1

    def test_rounding_disabled(self) -> None:
        result = ACSSolver(_objective()).solve(round_to_integers=False)
        assert result.participants_int is None
        assert result.epochs_int is None
        assert result.rounds_int is None
        assert result.energy_int is None

    def test_integer_plan_is_feasible(self) -> None:
        obj = _objective(a1=0.3, a2=5e-4)
        result = ACSSolver(obj).solve()
        assert obj.is_feasible(result.participants_int, result.epochs_int)

    def test_integer_energy_close_to_continuous(self) -> None:
        # The integer plan can cost more (ceiling on T) but never less
        # than the continuous lower bound, and shouldn't be absurdly far.
        obj = _objective(a1=0.3, a2=5e-4)
        result = ACSSolver(obj).solve()
        assert result.energy_int >= result.objective_value - 1e-9
        assert result.energy_int <= 3.0 * result.objective_value


class TestSeedEpochs:
    def test_seed_clamps_to_t_equals_one_knee(self) -> None:
        obj = _objective(a2=0.0)
        solver = ACSSolver(obj)
        seed = solver._seed_epochs(1, 1e6)
        # At the seed T* is already 1; one epoch earlier it is above 1.
        assert obj.bound.required_rounds(obj.epsilon, seed, 1) < 1.0
        if seed > 1:
            assert obj.bound.required_rounds(obj.epsilon, seed - 1, 1) >= 1.0

    def test_seed_keeps_small_e(self) -> None:
        obj = _objective()
        solver = ACSSolver(obj)
        assert solver._seed_epochs(5, 3.0) == 3
