"""Unit tests for the convergence bound (eqs. 10-11)."""

from __future__ import annotations

import math

import pytest

from repro.core.convergence import ConvergenceBound


@pytest.fixture()
def bound() -> ConvergenceBound:
    return ConvergenceBound(a0=10.0, a1=0.1, a2=0.001)


class TestLossGap:
    def test_matches_eq10(self, bound: ConvergenceBound) -> None:
        gap = bound.loss_gap(rounds=50, epochs=4, participants=5)
        assert gap == pytest.approx(10.0 / 200 + 0.1 / 5 + 0.001 * 3)

    def test_monotone_decreasing_in_rounds(self, bound: ConvergenceBound) -> None:
        gaps = [bound.loss_gap(t, 4, 5) for t in (1, 10, 100, 1000)]
        assert gaps == sorted(gaps, reverse=True)

    def test_monotone_decreasing_in_participants(self, bound: ConvergenceBound) -> None:
        gaps = [bound.loss_gap(10, 4, k) for k in (1, 2, 5, 20)]
        assert gaps == sorted(gaps, reverse=True)

    def test_epochs_tradeoff(self, bound: ConvergenceBound) -> None:
        # E reduces the optimisation term but inflates the drift term, so
        # at very large E the gap goes back up.
        small = bound.loss_gap(10, 1, 5)
        mid = bound.loss_gap(10, 10, 5)
        huge = bound.loss_gap(10, 100000, 5)
        assert mid < small
        assert huge > mid

    def test_rejects_invalid_ranges(self, bound: ConvergenceBound) -> None:
        with pytest.raises(ValueError):
            bound.loss_gap(0, 1, 1)
        with pytest.raises(ValueError):
            bound.loss_gap(1, 0, 1)
        with pytest.raises(ValueError):
            bound.loss_gap(1, 1, 0)

    @pytest.mark.parametrize(
        "kwargs", [{"a0": 0.0}, {"a0": -1.0}, {"a1": -0.1}, {"a2": -0.1}]
    )
    def test_rejects_invalid_constants(self, kwargs: dict) -> None:
        defaults = dict(a0=1.0, a1=0.0, a2=0.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            ConvergenceBound(**defaults)


class TestAsymptoticGap:
    def test_floor_value(self, bound: ConvergenceBound) -> None:
        assert bound.asymptotic_gap(5, 10) == pytest.approx(0.1 / 10 + 0.001 * 4)

    def test_gap_approaches_floor(self, bound: ConvergenceBound) -> None:
        floor = bound.asymptotic_gap(4, 5)
        assert bound.loss_gap(10**9, 4, 5) == pytest.approx(floor, rel=1e-6)

    def test_feasibility_is_strict(self, bound: ConvergenceBound) -> None:
        floor = bound.asymptotic_gap(4, 5)
        assert not bound.is_feasible(floor, 4, 5)
        assert bound.is_feasible(floor * 1.01, 4, 5)

    def test_is_feasible_rejects_bad_epsilon(self, bound: ConvergenceBound) -> None:
        with pytest.raises(ValueError, match="epsilon"):
            bound.is_feasible(0.0, 1, 1)


class TestRequiredRounds:
    def test_eq11_value(self, bound: ConvergenceBound) -> None:
        eps, e, k = 0.1, 4, 5
        expected = bound.a0 * k / ((eps * k - bound.a1 - bound.a2 * k * (e - 1)) * e)
        assert bound.required_rounds(eps, e, k) == pytest.approx(expected)

    def test_bound_is_tight_at_required_rounds(self, bound: ConvergenceBound) -> None:
        # Plugging T* back into eq. (10) recovers epsilon exactly.
        eps = 0.07
        t_star = bound.required_rounds(eps, 3, 8)
        assert bound.loss_gap(t_star, 3, 8) == pytest.approx(eps)

    def test_infeasible_raises(self, bound: ConvergenceBound) -> None:
        with pytest.raises(ValueError, match="unreachable"):
            bound.required_rounds(0.01, 1, 1)  # A1 = 0.1 > 0.01

    def test_integer_rounds_at_least_one(self, bound: ConvergenceBound) -> None:
        # Very loose target: T* < 1 but the integer plan still needs a round.
        assert bound.required_rounds(50.0, 1, 20) < 1.0
        assert bound.required_rounds_int(50.0, 1, 20) == 1

    def test_integer_rounds_is_ceiling(self, bound: ConvergenceBound) -> None:
        eps = 0.1
        t_star = bound.required_rounds(eps, 4, 5)
        assert bound.required_rounds_int(eps, 4, 5) == math.ceil(t_star)

    def test_more_participants_fewer_rounds(self, bound: ConvergenceBound) -> None:
        rounds = [bound.required_rounds(0.05, 2, k) for k in (3, 5, 10, 20)]
        assert rounds == sorted(rounds, reverse=True)


class TestDomains:
    def test_min_feasible_participants(self, bound: ConvergenceBound) -> None:
        k_min = bound.min_feasible_participants(0.05, 10)
        # Just above the edge must be feasible, just below must not.
        assert bound.is_feasible(0.05, 10, k_min * 1.01)
        assert not bound.is_feasible(0.05, 10, k_min * 0.99)

    def test_min_feasible_participants_drift_dominates(
        self, bound: ConvergenceBound
    ) -> None:
        # eps <= A2 (E-1): no K can help.
        with pytest.raises(ValueError, match="drift floor"):
            bound.min_feasible_participants(0.0005, 10**6)

    def test_max_feasible_epochs(self, bound: ConvergenceBound) -> None:
        e_max = bound.max_feasible_epochs(0.05, 10)
        assert bound.is_feasible(0.05, e_max * 0.99, 10)
        assert not bound.is_feasible(0.05, e_max * 1.01, 10)

    def test_max_feasible_epochs_no_drift(self) -> None:
        no_drift = ConvergenceBound(a0=1.0, a1=0.01, a2=0.0)
        assert math.isinf(no_drift.max_feasible_epochs(0.05, 10))

    def test_max_feasible_epochs_infeasible_k(self, bound: ConvergenceBound) -> None:
        with pytest.raises(ValueError, match="infeasible"):
            bound.max_feasible_epochs(0.01, 1)
