"""Consistency checks on the paper-measured constants."""

from __future__ import annotations

import pytest

from repro.core import constants


class TestPowerOrdering:
    def test_phase_powers_ordered_as_in_fig3(self) -> None:
        # Fig. 3: waiting < downloading < uploading < training.
        assert (
            constants.POWER_WAITING_W
            < constants.POWER_DOWNLOADING_W
            < constants.POWER_UPLOADING_W
            < constants.POWER_TRAINING_W
        )

    def test_exact_paper_values(self) -> None:
        assert constants.POWER_WAITING_W == 3.600
        assert constants.POWER_DOWNLOADING_W == 4.286
        assert constants.POWER_TRAINING_W == 5.553
        assert constants.POWER_UPLOADING_W == 5.015


class TestTimingConstants:
    def test_tau_consistent_with_c_over_power(self) -> None:
        assert constants.TAU0_SECONDS_PER_SAMPLE_EPOCH == pytest.approx(
            constants.C0_JOULES_PER_SAMPLE_EPOCH / constants.POWER_TRAINING_W
        )
        assert constants.TAU1_SECONDS_PER_EPOCH == pytest.approx(
            constants.C1_JOULES_PER_EPOCH / constants.POWER_TRAINING_W
        )

    def test_timing_law_reproduces_table1_within_6_percent(self) -> None:
        for (epochs, n), measured in constants.TABLE_I_DURATIONS.items():
            predicted = epochs * (
                constants.TAU0_SECONDS_PER_SAMPLE_EPOCH * n
                + constants.TAU1_SECONDS_PER_EPOCH
            )
            assert predicted == pytest.approx(measured, rel=0.06), (epochs, n)


class TestTableI:
    def test_full_grid_present(self) -> None:
        assert set(constants.TABLE_I_DURATIONS) == {
            (e, n) for e in (10, 20, 40) for n in (100, 500, 1000, 2000)
        }

    def test_durations_increase_with_epochs(self) -> None:
        for n in (100, 500, 1000, 2000):
            assert (
                constants.TABLE_I_DURATIONS[(10, n)]
                < constants.TABLE_I_DURATIONS[(20, n)]
                < constants.TABLE_I_DURATIONS[(40, n)]
            )

    def test_durations_increase_with_samples(self) -> None:
        for e in (10, 20, 40):
            row = [constants.TABLE_I_DURATIONS[(e, n)] for n in (100, 500, 1000, 2000)]
            assert row == sorted(row)

    def test_mapping_is_readonly(self) -> None:
        with pytest.raises(TypeError):
            constants.TABLE_I_DURATIONS[(10, 100)] = 0.0  # type: ignore[index]


class TestScale:
    def test_prototype_dimensions(self) -> None:
        assert constants.N_EDGE_SERVERS == 20
        assert constants.SAMPLES_PER_SERVER == 3000
        assert constants.POWER_SAMPLE_RATE_HZ == 1000.0

    def test_nbiot_energy_per_byte(self) -> None:
        # §IV-A: 7.74 mWs per byte.
        assert constants.NBIOT_ENERGY_PER_BYTE_J == pytest.approx(7.74e-3)
