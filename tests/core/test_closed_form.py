"""Unit tests for the closed-form optima (eqs. 15 and 17)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.closed_form import (
    e_star,
    e_star_unclipped,
    k_star,
    k_star_unclipped,
)
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective


def _objective(
    a0: float = 5.0,
    a1: float = 0.02,
    a2: float = 1e-4,
    epsilon: float = 0.05,
    n_servers: int = 20,
    rho: float = 1e-3,
    e_upload: float = 2.0,
) -> EnergyObjective:
    return EnergyObjective(
        bound=ConvergenceBound(a0=a0, a1=a1, a2=a2),
        energy=EnergyParams(rho=rho, e_upload=e_upload, n_samples=3000),
        epsilon=epsilon,
        n_servers=n_servers,
    )


class TestKStar:
    def test_unclipped_formula(self) -> None:
        obj = _objective()
        e = 3.0
        expected = 2 * obj.bound.a1 / (obj.epsilon - obj.bound.a2 * (e - 1))
        assert k_star_unclipped(obj, e) == pytest.approx(expected)

    def test_stationary_point_is_first_order_optimal(self) -> None:
        # Derivative of the objective in K vanishes at the unclipped K*.
        obj = _objective(a1=0.3)  # interior optimum
        e = 2.0
        k = k_star_unclipped(obj, e)
        h = 1e-5
        derivative = (obj.value(k + h, e) - obj.value(k - h, e)) / (2 * h)
        assert abs(derivative) < 1e-6 * obj.value(k, e)

    def test_matches_numeric_minimum(self) -> None:
        obj = _objective(a1=0.3)
        e = 2.0
        star = k_star(obj, e)
        lo, hi = obj.k_domain(e)
        grid = np.linspace(lo, hi, 4000)
        numeric = grid[np.argmin([obj.value(float(k), e) for k in grid])]
        assert star == pytest.approx(numeric, abs=(hi - lo) / 1000)

    def test_clipped_to_one(self) -> None:
        # Tiny A1: the variance term is negligible, K* = 1 (the paper's
        # iid conclusion in Fig. 5).
        obj = _objective(a1=1e-4)
        assert k_star(obj, 1.0) == 1.0

    def test_clipped_to_n(self) -> None:
        # Huge A1 relative to eps: K* wants to exceed N.
        obj = _objective(a1=0.9, epsilon=0.05, n_servers=20)
        assert k_star(obj, 1.0) == 20.0

    def test_zero_a1_returns_edge(self) -> None:
        obj = _objective(a1=0.0)
        assert k_star_unclipped(obj, 1.0) == 1.0

    def test_drift_dominated_raises(self) -> None:
        obj = _objective(a2=0.1, epsilon=0.05)
        with pytest.raises(ValueError, match="drift limit"):
            k_star_unclipped(obj, 10.0)

    def test_respects_feasibility_edge(self) -> None:
        # When K* = 1 would be infeasible, the clipped value sits on the
        # feasible edge instead.
        obj = _objective(a1=0.08, epsilon=0.05)  # needs K > 1.6
        star = k_star(obj, 1.0)
        assert obj.is_feasible(star, 1.0)


class TestEStar:
    def test_exact_root_satisfies_first_order_condition(self) -> None:
        obj = _objective(a2=5e-4)
        k = 10.0
        e = e_star_unclipped(obj, k)
        h = 1e-5
        derivative = (obj.value(k, e + h) - obj.value(k, e - h)) / (2 * h)
        assert abs(derivative) < 1e-6 * obj.value(k, e)

    def test_exact_root_solves_quadratic(self) -> None:
        obj = _objective(a2=5e-4)
        k = 10.0
        e = e_star_unclipped(obj, k)
        a1, a2 = obj.bound.a1, obj.bound.a2
        b0, b1 = obj.energy.b0, obj.energy.b1
        c4 = obj.epsilon * k - a1 + a2 * k
        residual = a2 * k * b0 * e**2 + 2 * a2 * k * b1 * e - b1 * c4
        assert residual == pytest.approx(0.0, abs=1e-8)

    def test_matches_numeric_minimum(self) -> None:
        obj = _objective(a2=5e-4)
        k = 10.0
        star = e_star(obj, k)
        lo, hi = obj.e_domain(k)
        grid = np.linspace(lo, hi * 0.999, 8000)
        numeric = grid[np.argmin([obj.value(k, float(e)) for e in grid])]
        assert star == pytest.approx(numeric, abs=(hi - lo) / 2000)

    def test_paper_formula_differs_from_exact(self) -> None:
        # The printed eq. (17) does not satisfy the first-order condition;
        # the repo documents this erratum (DESIGN.md).
        obj = _objective(a2=5e-4)
        exact = e_star_unclipped(obj, 10.0)
        paper = e_star_unclipped(obj, 10.0, paper_formula=True)
        assert exact != pytest.approx(paper, rel=0.01)

    def test_no_drift_returns_capped(self) -> None:
        obj = _objective(a2=0.0)
        assert math.isinf(e_star_unclipped(obj, 5.0))
        assert e_star(obj, 5.0) == 1e6

    def test_clipped_to_one_when_b0_dominates(self) -> None:
        # Expensive computation, cheap communication: E* below 1 clips up.
        obj = _objective(a2=2e-3, rho=0.0, e_upload=1e-4, epsilon=0.05)
        assert e_star(obj, 20.0) == 1.0

    def test_infeasible_k_raises(self) -> None:
        obj = _objective(a1=0.5, epsilon=0.05)
        with pytest.raises(ValueError, match="infeasible"):
            e_star_unclipped(obj, 1.0)

    def test_b0_zero_degenerate_linear(self) -> None:
        obj = EnergyObjective(
            bound=ConvergenceBound(a0=5.0, a1=0.02, a2=1e-4),
            energy=EnergyParams(rho=1e-3, c0=0.0, c1=0.0, e_upload=2.0, n_samples=100),
            epsilon=0.05,
            n_servers=20,
        )
        k = 10.0
        e = e_star_unclipped(obj, k)
        c4 = obj.epsilon * k - obj.bound.a1 + obj.bound.a2 * k
        assert e == pytest.approx(c4 / (2 * obj.bound.a2 * k))


class TestConsistency:
    def test_alternating_optima_decrease_objective(self) -> None:
        obj = _objective(a1=0.3, a2=5e-4)
        k, e = float(obj.n_servers), 1.0
        previous = obj.value(k, e)
        for _ in range(5):
            k = k_star(obj, e)
            e = e_star(obj, k)
            current = obj.value(k, e)
            assert current <= previous + 1e-12
            previous = current
