"""Unit tests for the high-level EnergyPlanner facade."""

from __future__ import annotations

import pytest

from repro.core.baselines import grid_search
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.planner import EnergyPlanner


@pytest.fixture()
def planner() -> EnergyPlanner:
    return EnergyPlanner(
        bound=ConvergenceBound(a0=5.0, a1=0.02, a2=1e-4),
        energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
        n_servers=20,
    )


class TestPlan:
    def test_plan_fields(self, planner: EnergyPlanner) -> None:
        plan = planner.plan(epsilon=0.05)
        assert 1 <= plan.participants <= 20
        assert plan.epochs >= 1
        assert plan.rounds >= 1
        assert plan.predicted_energy > 0
        assert plan.acs.converged

    def test_plan_matches_grid_search(self, planner: EnergyPlanner) -> None:
        plan = planner.plan(epsilon=0.05)
        best = grid_search(planner.objective(0.05), max_epochs=1000)
        assert plan.predicted_energy == pytest.approx(best.energy)
        assert plan.participants == best.participants
        assert plan.epochs == best.epochs

    def test_savings_against_baseline(self, planner: EnergyPlanner) -> None:
        plan = planner.plan(epsilon=0.05)
        assert plan.baseline_energy is not None
        assert plan.savings_fraction is not None
        assert 0.0 < plan.savings_fraction < 1.0

    def test_baseline_none_when_k1e1_infeasible(self) -> None:
        # A1 = 0.5 > eps: (1, 1) cannot reach the target.
        planner = EnergyPlanner(
            bound=ConvergenceBound(a0=5.0, a1=0.5, a2=0.0),
            energy=EnergyParams(rho=1e-3, e_upload=2.0),
            n_servers=20,
        )
        plan = planner.plan(epsilon=0.1)
        assert plan.baseline_energy is None
        assert plan.savings_fraction is None

    def test_describe_mentions_parameters(self, planner: EnergyPlanner) -> None:
        plan = planner.plan(epsilon=0.05)
        text = plan.describe()
        assert f"K={plan.participants}" in text
        assert f"E={plan.epochs}" in text
        assert f"T={plan.rounds}" in text
        assert "Saving" in text

    def test_describe_without_baseline(self) -> None:
        planner = EnergyPlanner(
            bound=ConvergenceBound(a0=5.0, a1=0.5, a2=0.0),
            energy=EnergyParams(rho=1e-3, e_upload=2.0),
            n_servers=20,
        )
        text = planner.plan(epsilon=0.1).describe()
        assert "Saving" not in text

    def test_tighter_target_costs_more(self, planner: EnergyPlanner) -> None:
        loose = planner.plan(epsilon=0.2)
        tight = planner.plan(epsilon=0.02)
        assert tight.predicted_energy > loose.predicted_energy

    def test_infeasible_epsilon_raises(self, planner: EnergyPlanner) -> None:
        with pytest.raises(ValueError):
            planner.plan(epsilon=0.0009)  # below A1/N floor

    def test_objective_factory(self, planner: EnergyPlanner) -> None:
        objective = planner.objective(0.1)
        assert objective.epsilon == 0.1
        assert objective.n_servers == 20
