"""Unit tests for the calibration-sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.core.sensitivity import analyze_sensitivity, _perturbed_objective


@pytest.fixture()
def objective() -> EnergyObjective:
    return EnergyObjective(
        bound=ConvergenceBound(a0=5.0, a1=0.05, a2=2e-4),
        energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
        epsilon=0.05,
        n_servers=20,
    )


class TestPerturbation:
    def test_perturbs_bound_constant(self, objective: EnergyObjective) -> None:
        perturbed = _perturbed_objective(objective, "a1", 2.0)
        assert perturbed.bound.a1 == pytest.approx(2 * objective.bound.a1)
        assert perturbed.bound.a0 == objective.bound.a0
        assert perturbed.energy == objective.energy

    def test_perturbs_energy_constant(self, objective: EnergyObjective) -> None:
        perturbed = _perturbed_objective(objective, "e_upload", 0.5)
        assert perturbed.energy.e_upload == pytest.approx(1.0)
        assert perturbed.bound == objective.bound

    def test_rejects_unknown_constant(self, objective: EnergyObjective) -> None:
        with pytest.raises(ValueError, match="unknown constant"):
            _perturbed_objective(objective, "epsilon", 2.0)

    def test_identity_factor_is_noop(self, objective: EnergyObjective) -> None:
        perturbed = _perturbed_objective(objective, "c0", 1.0)
        assert perturbed.energy.c0 == objective.energy.c0


class TestAnalyze:
    def test_report_structure(self, objective: EnergyObjective) -> None:
        report = analyze_sensitivity(
            objective, constants=("a1", "c0"), factors=(0.5, 2.0)
        )
        assert report.optimal_energy > 0
        assert len(report.results) <= 4
        for result in report.results:
            assert result.constant in ("a1", "c0")
            assert result.factor in (0.5, 2.0)
            assert result.participants >= 1
            assert result.epochs >= 1

    def test_regret_nonnegative(self, objective: EnergyObjective) -> None:
        report = analyze_sensitivity(objective)
        for result in report.results:
            if result.regret is not None:
                # Planning with wrong constants can never beat planning
                # with the truth, priced on the truth.
                assert result.regret >= -1e-9

    def test_a0_scaling_has_tiny_regret(self, objective: EnergyObjective) -> None:
        # A0 is a pure multiplicative factor of the *continuous*
        # objective, so it cannot move the continuous optimum; only the
        # ceil(T*) plateau boundaries shift, so the integer plan's regret
        # stays within a few percent.
        report = analyze_sensitivity(objective, constants=("a0",), factors=(0.5, 2.0))
        for result in report.results:
            assert result.regret is not None
            assert result.regret < 0.05

    def test_worst_regret_and_infeasible_count(self, objective) -> None:
        report = analyze_sensitivity(objective)
        assert report.worst_regret() >= 0.0
        assert 0 <= report.infeasible_count() <= len(report.results)

    def test_moderate_perturbations_keep_regret_bounded(
        self, objective: EnergyObjective
    ) -> None:
        # The flat-optimum claim: +-25% on any single constant costs
        # less than 50% extra energy on this representative instance.
        report = analyze_sensitivity(objective, factors=(0.8, 1.25))
        assert report.infeasible_count() == 0
        assert report.worst_regret() < 0.5
