"""Unit tests for the latency-constrained planner."""

from __future__ import annotations

import pytest

from repro.core.acs import ACSSolver
from repro.core.convergence import ConvergenceBound
from repro.core.deadline import solve_with_deadline
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective


def _objective(
    a1: float = 0.02, a2: float = 1e-4, epsilon: float = 0.05
) -> EnergyObjective:
    return EnergyObjective(
        bound=ConvergenceBound(a0=5.0, a1=a1, a2=a2),
        energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
        epsilon=epsilon,
        n_servers=20,
    )


class TestUnbindingDeadline:
    def test_loose_deadline_returns_unconstrained_plan(self) -> None:
        objective = _objective()
        unconstrained = ACSSolver(objective).solve()
        plan = solve_with_deadline(objective, deadline=10_000)
        assert not plan.binding
        assert plan.energy == pytest.approx(unconstrained.energy_int)
        assert plan.rounds <= 10_000


class TestBindingDeadline:
    def test_plan_meets_deadline(self) -> None:
        objective = _objective()
        unconstrained = ACSSolver(objective).solve()
        tight = max(1, unconstrained.rounds_int // 2)
        plan = solve_with_deadline(objective, deadline=tight)
        if plan.binding:
            assert plan.rounds <= tight
        assert objective.is_feasible(plan.participants, plan.epochs)

    @staticmethod
    def _min_feasible_rounds(objective: EnergyObjective, max_epochs: int = 1200) -> int:
        """Smallest integer T any feasible (K, E) can achieve."""
        best = None
        for k in range(1, objective.n_servers + 1):
            for e in range(1, max_epochs):
                if not objective.is_feasible(k, e):
                    break
                rounds = objective.bound.required_rounds_int(objective.epsilon, e, k)
                if best is None or rounds < best:
                    best = rounds
        assert best is not None
        return best

    def test_binding_costs_more_energy(self) -> None:
        objective = _objective(a1=0.3, a2=5e-4)
        unconstrained = ACSSolver(objective).solve()
        assert unconstrained.rounds_int is not None
        t_min = self._min_feasible_rounds(objective)
        if t_min >= unconstrained.rounds_int:
            pytest.skip("no binding deadline exists for this instance")
        plan = solve_with_deadline(objective, deadline=t_min)
        assert plan.binding
        assert plan.rounds <= t_min
        assert plan.energy >= unconstrained.energy_int - 1e-9

    def test_tighter_deadline_monotone_energy(self) -> None:
        objective = _objective(a1=0.3, a2=5e-4)
        energies = []
        for deadline in (1, 3, 10, 100):
            try:
                plan = solve_with_deadline(objective, deadline)
            except ValueError:
                continue
            energies.append((deadline, plan.energy))
        # Looser deadlines can only help.
        for (d1, e1), (d2, e2) in zip(energies, energies[1:]):
            assert e2 <= e1 + 1e-9

    def test_consistency_with_exhaustive_search(self) -> None:
        objective = _objective(a1=0.3, a2=5e-4)
        deadline = self._min_feasible_rounds(objective) + 1
        plan = solve_with_deadline(objective, deadline)
        # Exhaustive check over the integer grid.
        best = None
        for k in range(1, 21):
            for e in range(1, 1200):
                if not objective.is_feasible(k, e):
                    break
                rounds = objective.bound.required_rounds_int(
                    objective.epsilon, e, k
                )
                if rounds > deadline:
                    continue
                energy = objective.value_integer(k, e)
                if best is None or energy < best:
                    best = energy
        assert best is not None
        assert plan.energy == pytest.approx(best, rel=1e-9)


class TestInfeasible:
    def test_impossible_deadline_raises(self) -> None:
        # Strong drift caps E, so one round cannot absorb all the work.
        objective = _objective(a1=0.3, a2=2e-3, epsilon=0.02)
        with pytest.raises(ValueError, match="within"):
            solve_with_deadline(objective, deadline=1)

    def test_rejects_nonpositive_deadline(self) -> None:
        with pytest.raises(ValueError, match="deadline"):
            solve_with_deadline(_objective(), deadline=0)
