"""Ablation: how precisely must the constants be calibrated?

DESIGN.md's last ablation: perturb each calibrated constant by up to
2x, re-plan with the wrong constants, and price the wrong plan on the
true system.  The biconvex objective turns out to be *flat* around its
optimum — moderate calibration error costs little energy — which is why
the paper can get away with a least-squares fit over a 12-point grid.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.core.sensitivity import analyze_sensitivity
from repro.experiments.report import render_table

TRUE_OBJECTIVE = EnergyObjective(
    bound=ConvergenceBound(a0=5.0, a1=0.05, a2=2e-4),
    energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
    epsilon=0.05,
    n_servers=20,
)


@pytest.mark.paper
def test_bench_calibration_sensitivity(benchmark) -> None:
    report = benchmark.pedantic(
        analyze_sensitivity,
        kwargs=dict(
            objective=TRUE_OBJECTIVE,
            factors=(0.5, 0.8, 1.25, 2.0),
        ),
        iterations=1,
        rounds=1,
    )
    rows = []
    for result in report.results:
        rows.append(
            [
                result.constant,
                f"{result.factor:g}x",
                f"({result.participants},{result.epochs})",
                f"{result.true_energy:.2f}" if result.true_energy is not None else "-",
                f"{100 * result.regret:.2f}%" if result.regret is not None else "inf",
            ]
        )
    emit(
        render_table(
            ["constant", "perturbation", "plan (K,E)", "true energy (J)", "regret"],
            rows,
            title=(
                "Ablation — plan regret under mis-calibration "
                f"(true optimum {report.optimal_energy:.2f} J)"
            ),
        )
    )
    # Flat-optimum claims: +-25% errors cost < 25% energy; even 2x
    # errors on any single constant keep regret below 100% here.
    moderate = [
        r.regret
        for r in report.results
        if r.factor in (0.8, 1.25) and r.regret is not None
    ]
    assert moderate and max(moderate) < 0.25
    finite = [r.regret for r in report.results if r.regret is not None]
    assert max(finite) < 1.0
    # A0 is a pure multiplicative factor of the *continuous* objective,
    # so it cannot move the continuous optimum; the integer plan can
    # still shift slightly because ceil(T*) plateau boundaries move.
    a0_regrets = [
        r.regret for r in report.results if r.constant == "a0" and r.regret is not None
    ]
    assert a0_regrets and max(a0_regrets) < 0.10
