"""Population-engine benchmark: struct-of-arrays scale and fog tiers.

Three questions, one artifact (``BENCH_population.json``):

* **Scale** — per-round wall-clock and peak RSS while training a
  sampled cohort out of N ∈ {10^3, 10^4, 10^5, 10^6} clients held as
  stacked arrays (:meth:`PopulationState.synthesize`, float32).  The
  cohort is 10 % of the population, capped at 10^5 — the ISSUE's
  million-client acceptance cell is N=10^6 with a 10^5-client cohort.
* **Aggregation topology** — cloud-side cost of combining a round,
  flat (K messages) vs a 100-tier fog network (min(100, K) tier
  partials): message counts from the energy model's
  :func:`cloud_fan_in` plus the measured cloud-combine time.  The
  tiered count is constant once K > tiers, which is the sub-linear
  claim the guard pins.
* **Equivalence** — at N=20 the population backend must match the
  sequential reference (max |dparam| <= 1e-10; bit-identical to
  batched), and the float32 opt-in must stay within 1e-3 of float64
  (the measured delta is recorded either way).

Exits non-zero if any guard fails.  Not a pytest benchmark (no
``test_`` prefix — the timings are a tracking artifact).

Run:  python benchmarks/bench_population.py [output.json]
"""

from __future__ import annotations

import json
import resource
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.energy_model import cloud_fan_in
from repro.data.dataset import Dataset
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.population import (
    AggregationTree,
    PopulationState,
    train_cohort,
)
from repro.fl.sampling import FloydSampler
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

SEED = 0
POPULATION_SIZES = (1_000, 10_000, 100_000, 1_000_000)
COHORT_FRACTION = 0.1
COHORT_CAP = 100_000
SCALE_ROUNDS = 3
FOG_TIERS = 100
SAMPLES_PER_CLIENT = 4
N_FEATURES = 8
N_CLASSES = 4

# Guards.
MIN_SCALE_DEMONSTRATED = 100_000
ACCEPT_EQUIVALENCE_ATOL = 1e-10
ACCEPT_FLOAT32_ATOL = 1e-3
# Cloud combines min(tiers, K) messages: at the 10^5 cohort that is
# 100/100000 of the flat count.
ACCEPT_TIER_MESSAGE_RATIO = 0.01
# A vectorized round must process clients faster than this, or the
# struct-of-arrays layout has regressed to per-client dispatch.
MIN_CLIENTS_PER_SECOND = 10_000


def _peak_rss_bytes() -> int:
    """Process peak RSS (Linux ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def run_scale_row(n_clients: int) -> dict:
    cohort_size = min(int(n_clients * COHORT_FRACTION), COHORT_CAP)
    build_started = time.perf_counter()
    state = PopulationState.synthesize(
        n_clients,
        n_features=N_FEATURES,
        n_classes=N_CLASSES,
        samples_per_client=SAMPLES_PER_CLIENT,
        seed=SEED,
        dtype=np.float32,
    )
    build_s = time.perf_counter() - build_started
    sampler = FloydSampler(n_clients, cohort_size, seed=SEED)
    params = state.model_config.build().get_parameters()
    tree = AggregationTree(FOG_TIERS)
    round_seconds = []
    flat_combine_s = tiered_cloud_combine_s = 0.0
    for round_index in range(SCALE_ROUNDS):
        cohort = sampler.select(round_index)
        started = time.perf_counter()
        updates = train_cohort(
            state, cohort, params, epochs=1, learning_rate=0.1
        )
        stacked = np.stack([u.parameters for u in updates])
        params = stacked.mean(axis=0)
        round_seconds.append(time.perf_counter() - started)
        if round_index == SCALE_ROUNDS - 1:
            # Cloud-side combine cost, measured on the last round's
            # updates: flat mean over K rows vs mean over the fog
            # tiers' partials (the fog fold itself is charged to the
            # fog nodes, in parallel in a real deployment).
            started = time.perf_counter()
            stacked.mean(axis=0)
            flat_combine_s = time.perf_counter() - started
            fan_in = tree.fan_in(len(updates))
            partials = np.stack(
                [chunk.mean(axis=0) for chunk in np.array_split(stacked, fan_in)]
            )
            started = time.perf_counter()
            partials.mean(axis=0)
            tiered_cloud_combine_s = time.perf_counter() - started
    per_round = float(np.mean(round_seconds))
    row = {
        "n_clients": n_clients,
        "cohort_size": cohort_size,
        "rounds": SCALE_ROUNDS,
        "state_build_s": build_s,
        "state_nbytes": int(state.nbytes),
        "seconds_per_round": per_round,
        "clients_per_second": cohort_size / per_round,
        "peak_rss_bytes": _peak_rss_bytes(),
        "aggregation": {
            "fog_tiers": FOG_TIERS,
            "flat_cloud_messages": cloud_fan_in(cohort_size, 0),
            "tiered_cloud_messages": cloud_fan_in(cohort_size, FOG_TIERS),
            "flat_cloud_combine_s": flat_combine_s,
            "tiered_cloud_combine_s": tiered_cloud_combine_s,
        },
    }
    print(
        f"N={n_clients:>9,d}: cohort {cohort_size:>7,d}, "
        f"{per_round * 1000:8.1f} ms/round "
        f"({row['clients_per_second']:,.0f} clients/s), "
        f"peak RSS {row['peak_rss_bytes'] / 2**20:,.0f} MiB, "
        f"cloud messages {row['aggregation']['flat_cloud_messages']:,d} "
        f"flat -> {row['aggregation']['tiered_cloud_messages']} tiered"
    )
    return row


def _linear_task(n: int, model: LogisticRegressionConfig, seed: int) -> Dataset:
    projection = np.random.default_rng(424242).normal(
        size=(model.n_features, model.n_classes)
    )
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, model.n_features))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, model.n_classes)


def _final_params(backend: str, dtype: str = "float64") -> np.ndarray:
    model = LogisticRegressionConfig(n_features=8, n_classes=3)
    train = _linear_task(600, model, seed=SEED)
    test = _linear_task(100, model, seed=SEED + 99)
    partitions = partition_iid(train, 20, np.random.default_rng(1))
    trainer = FederatedTrainer(
        clients=build_clients(partitions, model),
        config=FederatedConfig(
            n_rounds=10,
            participants_per_round=8,
            local_epochs=2,
            sgd=SGDConfig(learning_rate=0.5, decay=0.99),
            seed=SEED,
            backend=backend,
            population_dtype=dtype,
        ),
        train_eval=train,
        test_eval=test,
    )
    try:
        trainer.run()
        return trainer.coordinator.global_parameters.copy()
    finally:
        trainer.close()


def run_equivalence() -> dict:
    sequential = _final_params("sequential")
    batched = _final_params("batched")
    population = _final_params("population")
    population_f32 = _final_params("population", dtype="float32")
    row = {
        "n_clients": 20,
        "rounds": 10,
        "max_abs_param_diff_vs_sequential": float(
            np.max(np.abs(population - sequential))
        ),
        "max_abs_param_diff_vs_batched": float(
            np.max(np.abs(population - batched))
        ),
        "float32_max_abs_param_diff": float(
            np.max(np.abs(population_f32 - population))
        ),
        "tolerance_note": (
            "population shares the batched kernel (identical op order), "
            "so the batched diff is exactly 0; the sequential diff is "
            "bounded by the batched engine's certified atol=1e-10"
        ),
    }
    print(
        "equivalence (N=20): "
        f"vs sequential {row['max_abs_param_diff_vs_sequential']:.2e}, "
        f"vs batched {row['max_abs_param_diff_vs_batched']:.2e}, "
        f"float32 delta {row['float32_max_abs_param_diff']:.2e}"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_population.json")

    print("scale (struct-of-arrays, float32, E=1):")
    scale_rows = [run_scale_row(n) for n in POPULATION_SIZES]
    equivalence = run_equivalence()

    payload = {
        "benchmark": "population",
        "config": {
            "seed": SEED,
            "population_sizes": list(POPULATION_SIZES),
            "cohort_fraction": COHORT_FRACTION,
            "cohort_cap": COHORT_CAP,
            "rounds": SCALE_ROUNDS,
            "fog_tiers": FOG_TIERS,
            "samples_per_client": SAMPLES_PER_CLIENT,
            "model": f"{N_FEATURES}x{N_CLASSES}",
            "scale_dtype": "float32",
        },
        "scale": scale_rows,
        "equivalence": equivalence,
        "thresholds": {
            "min_scale_demonstrated": MIN_SCALE_DEMONSTRATED,
            "accept_equivalence_atol": ACCEPT_EQUIVALENCE_ATOL,
            "accept_float32_atol": ACCEPT_FLOAT32_ATOL,
            "accept_tier_message_ratio": ACCEPT_TIER_MESSAGE_RATIO,
            "min_clients_per_second": MIN_CLIENTS_PER_SECOND,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures = []
    largest = max(row["n_clients"] for row in scale_rows)
    if largest < MIN_SCALE_DEMONSTRATED:
        failures.append(
            f"largest population trained is {largest:,d} clients; "
            f"acceptance floor is {MIN_SCALE_DEMONSTRATED:,d}"
        )
    big_rows = [
        row for row in scale_rows if row["n_clients"] >= MIN_SCALE_DEMONSTRATED
    ]
    for row in big_rows:
        if row["clients_per_second"] < MIN_CLIENTS_PER_SECOND:
            failures.append(
                f"N={row['n_clients']:,d} trained only "
                f"{row['clients_per_second']:,.0f} clients/s "
                f"(floor {MIN_CLIENTS_PER_SECOND:,d})"
            )
        agg = row["aggregation"]
        ratio = agg["tiered_cloud_messages"] / agg["flat_cloud_messages"]
        if ratio > ACCEPT_TIER_MESSAGE_RATIO:
            failures.append(
                f"N={row['n_clients']:,d}: tiered cloud message ratio "
                f"{ratio:.4f} above {ACCEPT_TIER_MESSAGE_RATIO} "
                "(fog aggregation not sub-linear)"
            )
    if (
        equivalence["max_abs_param_diff_vs_sequential"]
        > ACCEPT_EQUIVALENCE_ATOL
    ):
        failures.append(
            "population diverged from sequential at N=20 (max|dparam| = "
            f"{equivalence['max_abs_param_diff_vs_sequential']:.2e})"
        )
    if equivalence["max_abs_param_diff_vs_batched"] != 0.0:
        failures.append(
            "population is no longer bit-identical to batched "
            f"({equivalence['max_abs_param_diff_vs_batched']:.2e})"
        )
    if equivalence["float32_max_abs_param_diff"] > ACCEPT_FLOAT32_ATOL:
        failures.append(
            "float32 population drifted beyond the documented tolerance "
            f"({equivalence['float32_max_abs_param_diff']:.2e} > "
            f"{ACCEPT_FLOAT32_ATOL})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
