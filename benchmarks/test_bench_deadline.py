"""Extension bench: the energy-latency Pareto frontier.

The paper minimizes energy alone.  Sweeping a round deadline ``T_max``
through the latency-constrained planner traces the Pareto frontier
between energy and training latency: tighter deadlines force more
parallel work per round (larger K and/or E), paying energy for speed.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.acs import ACSSolver
from repro.core.convergence import ConvergenceBound
from repro.core.deadline import solve_with_deadline
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.experiments.report import render_table

OBJECTIVE = EnergyObjective(
    bound=ConvergenceBound(a0=5.0, a1=0.3, a2=5e-4),
    energy=EnergyParams(rho=1e-3, e_upload=2.0, n_samples=3000),
    epsilon=0.05,
    n_servers=20,
)
DEADLINES = (8, 10, 15, 25, 50, 100, 1000)


@pytest.mark.paper
def test_bench_energy_latency_frontier(benchmark) -> None:
    def sweep() -> list:
        plans = []
        for deadline in DEADLINES:
            try:
                plans.append(solve_with_deadline(OBJECTIVE, deadline))
            except ValueError:
                plans.append(None)
        return plans

    plans = benchmark(sweep)
    unconstrained = ACSSolver(OBJECTIVE).solve()

    rows = []
    for deadline, plan in zip(DEADLINES, plans):
        if plan is None:
            rows.append([deadline, "-", "-", "-", "-", "infeasible"])
            continue
        rows.append(
            [
                deadline,
                plan.participants,
                plan.epochs,
                plan.rounds,
                f"{plan.energy:.2f}",
                "binding" if plan.binding else "slack",
            ]
        )
    emit(
        render_table(
            ["deadline T_max", "K", "E", "T", "energy (J)", "constraint"],
            rows,
            title=(
                "Extension — energy-latency Pareto frontier "
                f"(unconstrained optimum {unconstrained.energy_int:.2f} J "
                f"at T = {unconstrained.rounds_int})"
            ),
        )
    )

    feasible = [p for p in plans if p is not None]
    assert len(feasible) >= 4
    # Frontier shape: energy is non-increasing as the deadline loosens.
    energies = [p.energy for p in feasible]
    assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))
    # The loosest deadline recovers the unconstrained optimum.
    assert feasible[-1].energy == pytest.approx(unconstrained.energy_int)
    # At least one deadline is binding and pays extra energy.
    binding = [p for p in feasible if p.binding]
    assert binding
    assert binding[0].energy > unconstrained.energy_int
