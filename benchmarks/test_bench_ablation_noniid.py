"""Ablation: the iid assumption behind Fig. 5's ``K* = 1``.

The paper attributes ``K* = 1`` to the iid data allocation.  This bench
repeats the energy-vs-K sweep under extreme label skew (one shard per
client) and quantifies how the picture changes:

* on energy alone, ``K* = 1`` survives skew (energy ~ linear in K beats
  the sub-linear round inflation), but the K = N penalty collapses from
  several-fold to nearly parity;
* the required round count at K = 1 balloons, so under a round deadline
  the optimal feasible participation jumps to full.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.report import render_table
from repro.fl.partition import partition_by_shards, partition_iid
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig

N_SERVERS = 10
K_VALUES = (1, 2, 4, 10)
EPOCHS = 20
TARGET = 0.75
MAX_ROUNDS = 200


def _build(skewed: bool) -> HardwarePrototype:
    train, test = load_synthetic_mnist(n_train=1500, n_test=400, seed=0)
    config = PrototypeConfig(n_servers=N_SERVERS, seed=0)
    rng = np.random.default_rng(0)
    partitions = (
        partition_by_shards(train, N_SERVERS, 1, rng)
        if skewed
        else partition_iid(train, N_SERVERS, rng)
    )
    return HardwarePrototype(train, test, config, partitions=partitions)


def _sweep(prototype: HardwarePrototype) -> dict[int, tuple[float, int] | None]:
    out: dict[int, tuple[float, int] | None] = {}
    for k in K_VALUES:
        run = prototype.run(
            participants=k, epochs=EPOCHS, n_rounds=MAX_ROUNDS, target_accuracy=TARGET
        )
        out[k] = (run.total_energy_j, run.rounds) if run.reached_target else None
    return out


@pytest.mark.paper
def test_bench_noniid_k_star(benchmark) -> None:
    def run_both() -> tuple[dict, dict]:
        return _sweep(_build(skewed=False)), _sweep(_build(skewed=True))

    iid, skew = benchmark.pedantic(run_both, iterations=1, rounds=1)

    rows = []
    for k in K_VALUES:
        rows.append(
            [
                k,
                f"{iid[k][0]:.1f}" if iid[k] else "-",
                iid[k][1] if iid[k] else "-",
                f"{skew[k][0]:.1f}" if skew[k] else "-",
                skew[k][1] if skew[k] else "-",
            ]
        )
    emit(
        render_table(
            ["K", "iid energy (J)", "iid T", "skew energy (J)", "skew T"],
            rows,
            title="Ablation — Fig. 5 sweep under iid vs 1-shard label skew",
        )
    )

    # iid shape: K* = 1 (Fig. 5's conclusion).
    iid_feasible = {k: v[0] for k, v in iid.items() if v}
    assert min(iid_feasible, key=iid_feasible.__getitem__) == 1

    # Skew inflates the rounds needed at K = 1 by a large factor.
    if iid[1] and skew[1]:
        assert skew[1][1] > 3 * iid[1][1]

    # The full-participation energy penalty collapses under skew.
    if iid[1] and iid[10] and skew[1] and skew[10]:
        iid_penalty = iid[10][0] / iid[1][0]
        skew_penalty = skew[10][0] / skew[1][0]
        assert skew_penalty < 0.6 * iid_penalty
