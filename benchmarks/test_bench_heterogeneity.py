"""Extension bench: eq. (12)'s expectation operators under real spread.

The paper's objective uses *expected* per-server constants
(``B0 = E[c0] n + E[c1]``, ``B1 = E[rho] n + E[e^U]``).  On a testbed
whose devices genuinely differ (different SoC bins: power and speed
factors drawn per device), this bench measures what the
expectation-based plan costs relative to a measured exhaustive search
over ``(K, E)`` — i.e. how much the homogeneity approximation leaves on
the table.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core.calibration import GapObservation, fit_convergence_constants
from repro.core.objective import EnergyObjective
from repro.core.planner import EnergyPlanner
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.report import render_table
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig

N_SERVERS = 10
TARGET = 0.78
MAX_ROUNDS = 120
GRID_K = (1, 2, 5, 10)
GRID_E = (5, 20, 60)


@pytest.fixture(scope="module")
def heterogeneous_prototype() -> HardwarePrototype:
    train, test = load_synthetic_mnist(n_train=1000, n_test=300, seed=0)
    config = PrototypeConfig(n_servers=N_SERVERS, heterogeneity=0.35, seed=0)
    return HardwarePrototype(train, test, config)


@pytest.mark.paper
def test_bench_heterogeneous_planning(benchmark, heterogeneous_prototype) -> None:
    prototype = heterogeneous_prototype

    def measure_grid():
        measured = {}
        for k in GRID_K:
            for e in GRID_E:
                run = prototype.run(
                    participants=k,
                    epochs=e,
                    n_rounds=MAX_ROUNDS,
                    target_accuracy=TARGET,
                )
                if run.reached_target:
                    measured[(k, e)] = (run.total_energy_j, run.rounds)
        return measured

    measured = benchmark.pedantic(measure_grid, iterations=1, rounds=1)
    assert measured, "no grid point reached the target"

    # Calibrate the bound from the measured grid itself (operating-point
    # fit, as the main pipeline does).  Every run crossed the *same*
    # accuracy target, so each contributes one row with the same nominal
    # loss-gap epsilon; its absolute scale cancels in the argmin.
    epsilon = 0.5
    observations = [
        GapObservation(rounds, e, k, gap=epsilon)
        for (k, e), (_, rounds) in measured.items()
    ]
    bound = fit_convergence_constants(observations)

    # Expectation-based energy constants from the heterogeneous devices.
    mean_params = prototype.heterogeneous_energy_params().mean()
    planner = EnergyPlanner(bound=bound, energy=mean_params, n_servers=N_SERVERS)
    objective = planner.objective(epsilon)

    # The plan from expected constants, restricted to the measured grid
    # for a fair comparison (we only have ground truth there).
    def grid_energy_of(k: int, e: int) -> float | None:
        entry = measured.get((k, e))
        return entry[0] if entry else None

    plan_scores = {
        (k, e): objective.value_integer(k, e)
        for k in GRID_K
        for e in GRID_E
        if objective.is_feasible(k, e) and (k, e) in measured
    }
    assert plan_scores, "objective found no feasible measured grid point"
    planned_choice = min(plan_scores, key=plan_scores.__getitem__)
    best_choice = min(measured, key=lambda ke: measured[ke][0])

    rows = [
        [
            f"({k},{e})",
            f"{measured[(k, e)][0]:.1f}",
            measured[(k, e)][1],
            f"{plan_scores.get((k, e), float('nan')):.2f}"
            if (k, e) in plan_scores
            else "-",
        ]
        for (k, e) in sorted(measured)
    ]
    emit(
        render_table(
            ["(K,E)", "measured energy (J)", "T", "model energy (J)"],
            rows,
            title=(
                "Extension — heterogeneous testbed (35% device spread): "
                f"model picks {planned_choice}, truth-best {best_choice}"
            ),
        )
    )

    planned_energy = measured[planned_choice][0]
    best_energy = measured[best_choice][0]
    regret = planned_energy / best_energy - 1.0
    emit(f"expectation-plan regret vs measured optimum: {100 * regret:.1f}%")
    # The homogeneity approximation must stay serviceable: the plan from
    # expected constants lands within 2x of the measured optimum.
    assert planned_energy <= 2.0 * best_energy