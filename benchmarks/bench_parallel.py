"""Two-level parallel-runtime benchmark: pool engine + campaign jobs.

Measures both layers of the parallel execution runtime against their
sequential references and certifies the determinism contract alongside
the timings:

* **engine level** — the persistent-worker pool backend vs the
  sequential engine at the paper headline (K=20, E=16, 784x10 model),
  with ``max_abs_param_diff`` (must be exactly 0);
* **campaign level** — an 8-unit (K, E) grid run with ``jobs=4`` vs the
  sequential runner, with whole-store byte identity (unit files *and*
  manifest must hash identically);
* **break-even sweep** — pool speedup across model sizes and epoch
  counts, reporting the measured (K, E, model) crossover where the pool
  starts to pay.

Speed guards are CPU-aware: the acceptance thresholds (pool >= 1.5x,
parallel campaign >= 2.0x at 4 jobs) are physically impossible without
multiple cores, so they are enforced only when the container grants
enough CPUs; on smaller boxes the guard degrades to a bounded-overhead
floor and the JSON records ``cpu_limited: true``.  The determinism
guards (param diff 0, store byte identity) are enforced unconditionally
— parallelism must never change results, whatever the core count.

Writes ``BENCH_parallel.json`` and exits non-zero on any guard failure.

Not a pytest benchmark (no ``test_`` prefix — the timings are a
tracking artifact, not an assertion):

Run:  python benchmarks/bench_parallel.py [output.json]
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec, RunSpec
from repro.data.dataset import Dataset
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

SEED = 0
N_SERVERS = 20

# Engine-level headline: the paper model at the paper's largest cell.
HEADLINE_K = 20
HEADLINE_E = 16
HEADLINE_ROUNDS = 10
WARMUP_ROUNDS = 2
PAPER_MODEL = LogisticRegressionConfig(n_features=784, n_classes=10)
PAPER_SAMPLES_PER_SERVER = 100

# Campaign-level: the same 8-unit demo grid bench_campaign.py uses.
CAMPAIGN_N_SERVERS = 8
CAMPAIGN_N_TRAIN = 800
CAMPAIGN_N_TEST = 200
CAMPAIGN_MAX_ROUNDS = 10
CAMPAIGN_K = (1, 2, 4, 8)
CAMPAIGN_E = (1, 4)
CAMPAIGN_JOBS = 4

# Break-even sweep: where does the pool start to pay?
SWEEP_MODELS = (
    ("32x5", LogisticRegressionConfig(n_features=32, n_classes=5), 30),
    ("256x10", LogisticRegressionConfig(n_features=256, n_classes=10), 60),
    ("784x10", PAPER_MODEL, PAPER_SAMPLES_PER_SERVER),
)
SWEEP_E = (1, 4, 16)
SWEEP_K = 20
SWEEP_ROUNDS = 4

# CPU-aware guard thresholds.
ACCEPT_POOL_SPEEDUP = 1.5  # enforced when cpus >= POOL_CPU_FLOOR
ACCEPT_PARALLEL_SPEEDUP = 2.0  # enforced when cpus >= CAMPAIGN_JOBS
POOL_CPU_FLOOR = 2
MIN_BOUNDED_SPEEDUP = 0.5  # always enforced: parallelism may not
# cost more than 2x even with nothing to parallelise onto


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _linear_task(n: int, model: LogisticRegressionConfig, seed: int) -> Dataset:
    d, c = model.n_features, model.n_classes
    projection = np.random.default_rng(424242).normal(size=(d, c))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, c)


def _make_data(model: LogisticRegressionConfig, samples_per_server: int):
    train = _linear_task(samples_per_server * N_SERVERS, model, seed=SEED)
    test = _linear_task(200, model, seed=SEED + 99)
    partitions = partition_iid(train, N_SERVERS, np.random.default_rng(1))
    return train, test, partitions


def _timed_run(
    backend: str,
    model: LogisticRegressionConfig,
    data,
    participants: int,
    epochs: int,
    rounds: int,
) -> tuple[float, np.ndarray]:
    train, test, partitions = data
    trainer = FederatedTrainer(
        clients=build_clients(partitions, model),
        config=FederatedConfig(
            n_rounds=WARMUP_ROUNDS + rounds,
            participants_per_round=participants,
            local_epochs=epochs,
            sgd=SGDConfig(learning_rate=0.1, decay=0.995),
            seed=SEED,
            backend=backend,
        ),
        train_eval=train,
        test_eval=test,
    )
    try:
        for _ in range(WARMUP_ROUNDS):
            trainer.run_round()
        started = time.perf_counter()
        for _ in range(rounds):
            trainer.run_round()
        elapsed = time.perf_counter() - started
        return elapsed, trainer.coordinator.global_parameters.copy()
    finally:
        trainer.close()


def run_engine_level() -> dict:
    """Pool vs sequential at the paper headline, identity certified."""
    data = _make_data(PAPER_MODEL, PAPER_SAMPLES_PER_SERVER)
    seq_s, seq_params = _timed_run(
        "sequential", PAPER_MODEL, data, HEADLINE_K, HEADLINE_E,
        HEADLINE_ROUNDS,
    )
    pool_s, pool_params = _timed_run(
        "pool", PAPER_MODEL, data, HEADLINE_K, HEADLINE_E, HEADLINE_ROUNDS
    )
    max_diff = float(np.max(np.abs(pool_params - seq_params)))
    row = {
        "participants": HEADLINE_K,
        "epochs": HEADLINE_E,
        "rounds": HEADLINE_ROUNDS,
        "model": "784x10",
        "seconds_sequential": seq_s,
        "seconds_pool": pool_s,
        "speedup_pool": seq_s / pool_s,
        "max_abs_param_diff": max_diff,
    }
    print(
        f"engine headline (K={HEADLINE_K}, E={HEADLINE_E}, 784x10): "
        f"pool {row['speedup_pool']:.2f}x, max|dparam| {max_diff:.1e}"
    )
    return row


def _campaign_spec() -> CampaignSpec:
    base = RunSpec(
        name="bench-parallel",
        n_train=CAMPAIGN_N_TRAIN,
        n_test=CAMPAIGN_N_TEST,
        n_servers=CAMPAIGN_N_SERVERS,
        max_rounds=CAMPAIGN_MAX_ROUNDS,
        train_to_target=False,
        seed=SEED,
    )
    return CampaignSpec(
        name="bench-parallel",
        base=base,
        participants=CAMPAIGN_K,
        epochs=CAMPAIGN_E,
    )


def _store_digest(root: Path) -> str:
    """One hash over every store file (lock excluded), path-keyed."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file() and path.name != ".lock":
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def run_campaign_level(workdir: Path) -> dict:
    """Sequential vs ``jobs=4`` campaign, byte identity certified."""
    campaign = _campaign_spec()
    # Warm dataset/import caches so the first timed pass is fair.
    warm = CampaignRunner(campaign, ArtifactStore(workdir / "warm"))
    warm.run_unit(warm.units[0])

    seq_root = workdir / "sequential"
    started = time.perf_counter()
    summary = CampaignRunner(campaign, ArtifactStore(seq_root)).run()
    seq_s = time.perf_counter() - started
    assert summary.executed == len(campaign)

    par_root = workdir / "parallel"
    started = time.perf_counter()
    summary = CampaignRunner(campaign, ArtifactStore(par_root)).run(
        jobs=CAMPAIGN_JOBS
    )
    par_s = time.perf_counter() - started
    assert summary.executed == len(campaign)

    row = {
        "units": len(campaign),
        "jobs": CAMPAIGN_JOBS,
        "seconds_sequential": seq_s,
        "seconds_parallel": par_s,
        "speedup_parallel": seq_s / par_s,
        "stores_byte_identical": _store_digest(seq_root)
        == _store_digest(par_root),
    }
    print(
        f"campaign ({row['units']} units, jobs={CAMPAIGN_JOBS}): "
        f"{row['speedup_parallel']:.2f}x, "
        f"byte-identical={row['stores_byte_identical']}"
    )
    return row


def run_break_even() -> dict:
    """Pool speedup across model sizes/epochs; where does it cross 1x?"""
    rows = []
    crossover = None
    for label, model, samples in SWEEP_MODELS:
        data = _make_data(model, samples)
        for epochs in SWEEP_E:
            seq_s, _ = _timed_run(
                "sequential", model, data, SWEEP_K, epochs, SWEEP_ROUNDS
            )
            pool_s, _ = _timed_run(
                "pool", model, data, SWEEP_K, epochs, SWEEP_ROUNDS
            )
            speedup = seq_s / pool_s
            rows.append(
                {
                    "model": label,
                    "participants": SWEEP_K,
                    "epochs": epochs,
                    "seconds_per_round_sequential": seq_s / SWEEP_ROUNDS,
                    "seconds_per_round_pool": pool_s / SWEEP_ROUNDS,
                    "speedup_pool": speedup,
                }
            )
            if speedup >= 1.0 and crossover is None:
                crossover = {
                    "model": label,
                    "participants": SWEEP_K,
                    "epochs": epochs,
                }
            print(
                f"break-even sweep {label} K={SWEEP_K} E={epochs:2d}: "
                f"pool {speedup:.2f}x"
            )
    return {"rows": rows, "first_crossover": crossover}


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_parallel.json")
    cpus = _available_cpus()
    cpu_limited = cpus < max(POOL_CPU_FLOOR, CAMPAIGN_JOBS)
    print(f"available cpus: {cpus} (cpu_limited={cpu_limited})")

    engine = run_engine_level()
    workdir = Path(tempfile.mkdtemp(prefix="bench_parallel_"))
    try:
        campaign = run_campaign_level(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    break_even = run_break_even()

    payload = {
        "benchmark": "parallel",
        "available_cpus": cpus,
        "cpu_limited": cpu_limited,
        "engine_headline": engine,
        "campaign_parallel": campaign,
        "break_even": break_even,
        "thresholds": {
            "accept_pool_speedup": ACCEPT_POOL_SPEEDUP,
            "accept_parallel_speedup": ACCEPT_PARALLEL_SPEEDUP,
            "min_bounded_speedup": MIN_BOUNDED_SPEEDUP,
            "pool_cpu_floor": POOL_CPU_FLOOR,
            "campaign_jobs": CAMPAIGN_JOBS,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures = []
    # Determinism guards: unconditional.
    if engine["max_abs_param_diff"] != 0.0:
        failures.append(
            f"pool backend diverged from sequential "
            f"(max|dparam| = {engine['max_abs_param_diff']:.2e}, must be 0)"
        )
    if not campaign["stores_byte_identical"]:
        failures.append(
            "parallel campaign store is not byte-identical to sequential"
        )
    # Speed guards: acceptance thresholds where the cores exist,
    # bounded-overhead floors everywhere.
    pool_threshold = (
        ACCEPT_POOL_SPEEDUP if cpus >= POOL_CPU_FLOOR else MIN_BOUNDED_SPEEDUP
    )
    if engine["speedup_pool"] < pool_threshold:
        failures.append(
            f"pool speedup {engine['speedup_pool']:.2f}x below "
            f"{pool_threshold:.2f}x threshold ({cpus} cpus)"
        )
    parallel_threshold = (
        ACCEPT_PARALLEL_SPEEDUP
        if cpus >= CAMPAIGN_JOBS
        else MIN_BOUNDED_SPEEDUP
    )
    if campaign["speedup_parallel"] < parallel_threshold:
        failures.append(
            f"parallel campaign speedup {campaign['speedup_parallel']:.2f}x "
            f"below {parallel_threshold:.2f}x threshold ({cpus} cpus)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
