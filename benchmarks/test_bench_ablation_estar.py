"""Ablation: exact E* (quadratic root) vs the paper's printed eq. (17).

DESIGN.md documents that the paper's closed form for ``E*`` does not
satisfy the first-order optimality condition of the objective it is
printed next to; the exact interior optimum solves the quadratic
``A2 K B0 E^2 + 2 A2 K B1 E - B1 C4 = 0``.  This bench quantifies how
much energy the printed formula leaves on the table across random
instances, which is exactly the kind of gap Fig. 6's "roundup" remark
glosses over.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.core.closed_form import e_star
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.experiments.report import render_table


def _instances(n: int, seed: int = 3) -> list[EnergyObjective]:
    rng = np.random.default_rng(seed)
    instances = []
    while len(instances) < n:
        bound = ConvergenceBound(
            a0=float(rng.uniform(1.0, 40.0)),
            a1=float(rng.uniform(0.01, 0.3)),
            # A drift term large enough that E* is interior.
            a2=float(rng.uniform(2e-4, 2e-3)),
        )
        energy = EnergyParams(
            rho=float(rng.uniform(1e-4, 5e-3)),
            e_upload=float(rng.uniform(0.5, 5.0)),
            n_samples=int(rng.integers(500, 5000)),
        )
        epsilon = bound.asymptotic_gap(1, 20) + float(rng.uniform(0.05, 0.4))
        instances.append(
            EnergyObjective(bound=bound, energy=energy, epsilon=epsilon, n_servers=20)
        )
    return instances


INSTANCES = _instances(10)
FIXED_K = 10.0


@pytest.mark.paper
def test_bench_estar_exact_vs_paper(benchmark) -> None:
    def exact_all() -> list[float]:
        return [e_star(obj, FIXED_K) for obj in INSTANCES]

    exact_values = benchmark(exact_all)
    rows = []
    excesses = []
    for obj, exact in zip(INSTANCES, exact_values):
        paper = e_star(obj, FIXED_K, paper_formula=True)
        energy_exact = obj.value(FIXED_K, exact)
        energy_paper = obj.value(FIXED_K, paper)
        excess = energy_paper / energy_exact - 1.0
        excesses.append(excess)
        rows.append(
            [
                f"{exact:.2f}",
                f"{paper:.2f}",
                f"{energy_exact:.4g}",
                f"{energy_paper:.4g}",
                f"{100 * excess:.2f}%",
            ]
        )
        # The exact root is never worse: it is the true stationary point
        # of a strictly convex slice.
        assert energy_exact <= energy_paper * (1 + 1e-9)
    emit(
        render_table(
            ["E* exact", "E* eq.(17)", "energy exact", "energy eq.(17)", "excess"],
            rows,
            title=f"Ablation — exact vs printed E* at K = {FIXED_K:.0f}",
        )
    )
    # On at least some instances the printed formula is measurably off.
    assert max(excesses) > 0.001
