"""Benchmark: the IoT uplink substrate behind eq. (4)'s constant rho.

§IV-A argues the per-sample upload energy is constant even in the
unlicensed band, because fixed device locations give each device a fixed
success probability.  This bench sweeps the slotted-ALOHA contention
model, prints the resulting energy inflation per sample, and verifies
the classical shape: throughput peaks at ``q = 1/m`` and the inflation
factor grows with cell population.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.experiments.report import render_table
from repro.iot.collision import SlottedAlohaModel
from repro.iot.device import IoTDevice
from repro.iot.network import IoTCluster

POPULATIONS = (1, 5, 10, 20, 50)
TRANSMIT_PROBABILITY = 0.02


@pytest.mark.paper
def test_bench_contention_rho_inflation(benchmark) -> None:
    def build_rhos() -> dict[int, float]:
        rhos = {}
        for m in POPULATIONS:
            contention = SlottedAlohaModel(m, TRANSMIT_PROBABILITY) if m > 1 else None
            cluster = IoTCluster(
                edge_server_id=0,
                devices=[IoTDevice(device_id=i) for i in range(max(m, 1))],
                contention=contention,
            )
            rhos[m] = cluster.rho
        return rhos

    rhos = benchmark(build_rhos)
    base = rhos[1]
    rows = [
        [m, f"{rhos[m]:.4f}", f"{rhos[m] / base:.3f}x"] for m in POPULATIONS
    ]
    emit(
        render_table(
            ["devices in cell", "rho (J/sample)", "inflation vs lone device"],
            rows,
            title="IoT uplink — per-sample energy vs cell population (eq. 4)",
        )
    )
    # Inflation is monotone in population and 1.0 for a lone device.
    values = [rhos[m] for m in POPULATIONS]
    assert values == sorted(values)
    assert rhos[1] == pytest.approx(base)


@pytest.mark.paper
def test_bench_contention_throughput_peak(benchmark) -> None:
    m = 20
    qs = np.linspace(0.005, 0.3, 60)

    def sweep_throughput() -> list[float]:
        return [SlottedAlohaModel(m, float(q)).throughput() for q in qs]

    throughputs = benchmark(sweep_throughput)
    best_q = float(qs[int(np.argmax(throughputs))])
    emit(
        f"ALOHA cell of {m} devices: throughput peaks at q = {best_q:.3f} "
        f"(theory: 1/m = {1/m:.3f})"
    )
    assert best_q == pytest.approx(1.0 / m, rel=0.25)


@pytest.mark.paper
def test_bench_collection_simulation(benchmark) -> None:
    """Monte-Carlo collection converges to the analytic eq. (4) energy."""
    contention = SlottedAlohaModel(10, 0.03)
    cluster = IoTCluster(
        edge_server_id=0,
        devices=[IoTDevice(device_id=i) for i in range(10)],
        contention=contention,
    )
    rng = np.random.default_rng(0)
    report = benchmark.pedantic(
        cluster.collect, args=(3000, rng), iterations=1, rounds=5
    )
    assert report.energy_j == pytest.approx(cluster.collection_energy(3000), rel=0.1)
