"""Extension bench: synchronous FEI vs asynchronous (FedAsync-style).

The paper's synchronous loop pays a round barrier: every round waits for
its slowest participant plus the idle waiting phase.  Asynchronous
merging removes the barrier entirely.  This bench gives both the same
budget of local jobs on the same jittery, heterogeneous fleet and
compares wall-clock time, energy, and final accuracy.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.report import render_table
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.hardware.raspberry_pi import PiTimingConfig

N_SERVERS = 8
EPOCHS = 10
SYNC_ROUNDS = 10           # 8 clients x 10 rounds = 80 local jobs
ASYNC_UPDATES = N_SERVERS * SYNC_ROUNDS


@pytest.fixture(scope="module")
def fleet() -> HardwarePrototype:
    train, test = load_synthetic_mnist(n_train=1000, n_test=300, seed=0)
    config = PrototypeConfig(
        n_servers=N_SERVERS,
        timing=PiTimingConfig(jitter_fraction=0.25),
        heterogeneity=0.25,
        seed=0,
    )
    return HardwarePrototype(train, test, config)


@pytest.mark.paper
def test_bench_sync_vs_async(benchmark, fleet: HardwarePrototype) -> None:
    def run_both():
        sync = fleet.run(
            participants=N_SERVERS, epochs=EPOCHS, n_rounds=SYNC_ROUNDS
        )
        async_result, async_energy = fleet.run_async(
            max_updates=ASYNC_UPDATES, epochs=EPOCHS, eval_every=8
        )
        return sync, async_result, async_energy

    sync, async_result, async_energy = benchmark.pedantic(
        run_both, iterations=1, rounds=1
    )

    rows = [
        [
            "synchronous (paper)",
            N_SERVERS * SYNC_ROUNDS,
            f"{sync.wall_clock_s:.1f}",
            f"{sync.total_energy_j:.1f}",
            f"{sync.history.final_accuracy():.3f}",
        ],
        [
            "asynchronous (FedAsync-style)",
            async_result.updates,
            f"{async_result.wall_clock_s:.1f}",
            f"{async_energy:.1f}",
            f"{async_result.final_accuracy:.3f}",
        ],
    ]
    emit(
        render_table(
            ["mode", "local jobs", "wall clock (s)", "energy (J)", "final acc"],
            rows,
            title=(
                "Extension — sync vs async on a jittery heterogeneous fleet "
                f"(E = {EPOCHS})"
            ),
        )
    )

    # Same job budget: async removes the barrier, so it is faster on the
    # wall clock...
    assert async_result.wall_clock_s < sync.wall_clock_s
    # ...with comparable active energy (same local jobs) ...
    assert async_energy == pytest.approx(sync.total_energy_j, rel=0.35)
    # ...and a bounded accuracy penalty from staleness.
    assert async_result.final_accuracy > sync.history.final_accuracy() - 0.15
