"""Resilience benchmark: round throughput and wasted energy vs fault rate.

Runs the simulated testbed under a sweep of fault intensities (fractions
of the fleet crashing, straggling, and on bursty links) with the
resilience policies enabled, and writes ``BENCH_resilience.json`` with
per-intensity round throughput (simulated rounds per simulated minute),
wasted-energy fraction, retries, and degraded-round counts.

Not a pytest benchmark (no ``test_`` prefix — the fixed-rate sweep is a
tracking artifact, not an assertion):

Run:  python benchmarks/bench_resilience.py [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.faults import ResilienceConfig, RetryPolicy, make_demo_plan
from repro.fl.sgd import SGDConfig
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.obs import Observer

N_SERVERS = 16
PARTICIPANTS = 4
EPOCHS = 10
ROUNDS = 30
SEED = 0

# Fault intensity sweep: one knob scales every fault class together.
FAULT_RATES = (0.0, 0.1, 0.2, 0.3)

RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(max_retries=3),
    upload_timeout_s=30.0,
    min_quorum=max(1, PARTICIPANTS // 2),
)


def run_at_rate(rate: float) -> dict:
    """One fixed-fault-rate testbed run, reduced to headline numbers."""
    train, test = load_synthetic_mnist(n_train=1600, n_test=400, seed=0)
    observer = Observer()
    prototype = HardwarePrototype(
        train,
        test,
        PrototypeConfig(
            n_servers=N_SERVERS,
            sgd=SGDConfig(learning_rate=0.05, decay=0.995),
            seed=SEED,
        ),
        observer=observer,
    )
    plan = (
        make_demo_plan(
            N_SERVERS,
            seed=SEED,
            crash_fraction=rate,
            straggler_fraction=rate,
            loss_fraction=rate,
            loss_bad=0.9,
        )
        if rate > 0
        else None
    )
    result = prototype.run(
        participants=PARTICIPANTS,
        epochs=EPOCHS,
        n_rounds=ROUNDS,
        fault_plan=plan,
        resilience=RESILIENCE if plan is not None else None,
    )

    def metric(name: str) -> float:
        try:
            return observer.metrics.sum_values(name)
        except KeyError:
            return 0.0

    return {
        "fault_rate": rate,
        "declared_faults": len(plan) if plan is not None else 0,
        "rounds": result.rounds,
        "wall_clock_s": result.wall_clock_s,
        "rounds_per_minute": 60.0 * result.rounds / result.wall_clock_s,
        "total_energy_j": result.total_energy_j,
        "wasted_energy_j": result.wasted_energy_j,
        "wasted_fraction": result.wasted_fraction,
        "degraded_rounds": result.degraded_rounds,
        "retries": metric("fl.retries"),
        "failed_uploads": metric("fl.failed_uploads"),
        "final_accuracy": result.history.final_accuracy(),
    }


def main(argv: list[str] | None = None) -> int:
    """Run the sweep and write the JSON artifact; returns an exit code."""
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_resilience.json")
    rows = []
    for rate in FAULT_RATES:
        row = run_at_rate(rate)
        rows.append(row)
        print(
            f"rate={rate:.1f}: {row['rounds_per_minute']:.2f} rounds/min, "
            f"wasted {100 * row['wasted_fraction']:.1f}%, "
            f"{row['degraded_rounds']} degraded, "
            f"{int(row['retries'])} retries",
        )
    payload = {
        "benchmark": "resilience",
        "config": {
            "n_servers": N_SERVERS,
            "participants": PARTICIPANTS,
            "epochs": EPOCHS,
            "rounds": ROUNDS,
            "seed": SEED,
            "min_quorum": RESILIENCE.min_quorum,
            "max_retries": RESILIENCE.retry.max_retries,
        },
        "results": rows,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
