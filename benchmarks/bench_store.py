"""Store-index scaling benchmark: JSON manifest vs SQLite backend.

The repository redesign exists for one measurable reason: the JSON
manifest pays O(n) per index operation (every lookup re-parses the
whole document, every insert rewrites it), which caps campaigns far
below the 10^5–10^6-unit grids the roadmap's campaign service must
index.  The SQLite backend claims O(log n) probes and O(1)-ish row
inserts.  This benchmark certifies that claim at 10^2 / 10^3 / 10^4
synthetic units:

* **lookup** — ``contains()`` over a fixed probe set (half present,
  half absent) against pre-seeded stores of each size.  The guard
  requires the SQLite backend to beat the JSON backend by a healthy
  factor at every size >= 10^3 (the acceptance bar: sub-linear lookup
  vs the JSON linear scan);
* **sub-linear scaling** — SQLite per-lookup cost may grow by at most
  ``MAX_SQLITE_LOOKUP_GROWTH`` from 10^2 to 10^4 units, two decades of
  data for which a linear scan grows ~100x;
* **insert** — per-entry ``put_entry()`` cost at each pre-seeded size,
  recorded for both backends (tracking; the JSON rewrite is *expected*
  to be linear — that is the bottleneck being escaped).

Entries are synthetic (fabricated keys and checksums through the same
``put_entry`` API the migration path uses) so the benchmark measures
pure index mechanics, not training.

The speedup guard is **noise-aware**, mirroring ``bench_chaos.py``:
each rep times the identical probe batch twice on the SQLite backend,
and the spread of those identical-work ratios is the box's timing
noise floor.  When the floor cannot resolve the strict speedup factor,
the guard relaxes to requiring any speedup > 1 and the JSON records
``noise_limited: true``.  The scaling guard compares medians of many
probes and is enforced unconditionally.

Writes ``BENCH_store.json`` and exits non-zero on any guard failure.

Not a pytest benchmark (no ``test_`` prefix — timings are a tracking
artifact, not an assertion):

Run:  python benchmarks/bench_store.py [output.json]
"""

from __future__ import annotations

import hashlib
import json
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import ArtifactStore, CampaignSpec, RunSpec

SIZES = (100, 1_000, 10_000)
BACKENDS = ("json", "sqlite")
REPS = 5
PROBES = 32  # present keys per batch; the same count of absent keys rides along
INSERTS = 16  # per-entry inserts timed per rep

# Guards.
MIN_SQLITE_SPEEDUP = 3.0  # sqlite vs json lookup, sizes >= GUARD_SIZE
GUARD_SIZE = 1_000
MAX_SQLITE_LOOKUP_GROWTH = 10.0  # 10^2 -> 10^4 units (linear would be ~100x)
NOISE_RESOLUTION_FACTOR = 3.0


def _campaign() -> CampaignSpec:
    base = RunSpec(
        name="bench-store",
        n_train=64,
        n_test=32,
        n_servers=2,
        max_rounds=1,
        train_to_target=False,
    )
    return CampaignSpec(name="bench-store", base=base)


def _synthetic_key(index: int) -> str:
    # Same shape as RunSpec.key(): 16 lowercase hex chars.
    return hashlib.sha256(f"bench-unit-{index}".encode()).hexdigest()[:16]


def _synthetic_entry(index: int) -> dict:
    def digest(field: str) -> str:
        return hashlib.sha256(f"{field}-{index}".encode()).hexdigest()

    return {
        "name": f"bench/K1-E1-s{index}",
        "files": {
            "spec.json": digest("spec"),
            "history.json": digest("history"),
            "result.json": digest("result"),
        },
    }


def _seed_store(root: Path, backend: str, size: int) -> ArtifactStore:
    """A store whose index holds ``size`` synthetic entries."""
    store = ArtifactStore(root, backend=backend)
    store.initialize(_campaign())
    store.bulk_put_entries(
        {_synthetic_key(i): _synthetic_entry(i) for i in range(size)}
    )
    return store


def _probe_keys(size: int) -> list[str]:
    """Half recorded keys spread through the range, half misses."""
    stride = max(1, size // PROBES)
    present = [_synthetic_key(i) for i in range(0, size, stride)][:PROBES]
    absent = [_synthetic_key(size + i) for i in range(PROBES)]
    return present + absent


def _time_lookups(store: ArtifactStore, keys: list[str]) -> float:
    """Seconds per ``contains()`` call over one probe batch."""
    started = time.perf_counter()
    hits = 0
    for key in keys:
        if store.contains(key):
            hits += 1
    elapsed = time.perf_counter() - started
    assert hits == PROBES, f"expected {PROBES} hits, saw {hits}"
    return elapsed / len(keys)


def _time_inserts(store: ArtifactStore, start: int, count: int) -> float:
    """Seconds per single-entry ``put_entry()`` at the current size."""
    started = time.perf_counter()
    for i in range(start, start + count):
        store.put_entry(_synthetic_key(i), _synthetic_entry(i))
    return (time.perf_counter() - started) / count


def run_size(workdir: Path, size: int) -> dict:
    """Benchmark both backends at one pre-seeded store size."""
    keys = _probe_keys(size)
    row: dict = {"units": size, "reps": REPS, "backends": {}}
    noise_ratios: list[float] = []
    for backend in BACKENDS:
        root = workdir / f"{backend}-{size}"
        store = _seed_store(root, backend, size)
        lookup_times: list[float] = []
        insert_times: list[float] = []
        extra = size  # synthetic keys beyond the seeded range
        for rep in range(REPS):
            lookup_times.append(_time_lookups(store, keys))
            if backend == "sqlite":
                # Identical work, timed again: the spread of these
                # ratios is the box's timing noise floor.
                second = _time_lookups(store, keys)
                noise_ratios.append(second / lookup_times[-1])
            extra += PROBES  # keep the probe misses truly absent
            insert_times.append(_time_inserts(store, extra, INSERTS))
            extra += INSERTS
        index_bytes = (root / store.index_filename).stat().st_size
        store.close()
        row["backends"][backend] = {
            "lookup_s_median": statistics.median(lookup_times),
            "lookup_s_all": lookup_times,
            "insert_s_median": statistics.median(insert_times),
            "insert_s_all": insert_times,
            "index_bytes": index_bytes,
        }
    json_lookup = row["backends"]["json"]["lookup_s_median"]
    sqlite_lookup = row["backends"]["sqlite"]["lookup_s_median"]
    row["lookup_speedup"] = (
        json_lookup / sqlite_lookup if sqlite_lookup > 0 else float("inf")
    )
    row["noise_ratios"] = noise_ratios
    print(
        f"n={size:>6}: lookup json {json_lookup * 1e6:8.1f}us  "
        f"sqlite {sqlite_lookup * 1e6:7.1f}us  "
        f"(speedup {row['lookup_speedup']:.1f}x)  "
        f"insert json "
        f"{row['backends']['json']['insert_s_median'] * 1e6:8.1f}us  "
        f"sqlite "
        f"{row['backends']['sqlite']['insert_s_median'] * 1e6:7.1f}us"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_store.json")

    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        rows = [run_size(workdir, size) for size in SIZES]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    noise_ratios = [ratio for row in rows for ratio in row["noise_ratios"]]
    noise_floor = statistics.median(abs(r - 1.0) for r in noise_ratios)
    # The speedup guard compares two medians; it can only resolve a
    # factor the box's own jitter does not swamp.
    noise_limited = noise_floor * NOISE_RESOLUTION_FACTOR > (
        MIN_SQLITE_SPEEDUP - 1.0
    )

    by_size = {row["units"]: row for row in rows}
    growth = (
        by_size[SIZES[-1]]["backends"]["sqlite"]["lookup_s_median"]
        / by_size[SIZES[0]]["backends"]["sqlite"]["lookup_s_median"]
    )
    json_growth = (
        by_size[SIZES[-1]]["backends"]["json"]["lookup_s_median"]
        / by_size[SIZES[0]]["backends"]["json"]["lookup_s_median"]
    )

    payload = {
        "benchmark": "store",
        "sizes": rows,
        "sqlite_lookup_growth_1e2_to_1e4": growth,
        "json_lookup_growth_1e2_to_1e4": json_growth,
        "noise_floor": noise_floor,
        "noise_limited": noise_limited,
        "thresholds": {
            "min_sqlite_speedup": MIN_SQLITE_SPEEDUP,
            "guard_size": GUARD_SIZE,
            "max_sqlite_lookup_growth": MAX_SQLITE_LOOKUP_GROWTH,
            "noise_resolution_factor": NOISE_RESOLUTION_FACTOR,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"sqlite lookup growth 1e2->1e4: {growth:.1f}x "
        f"(json: {json_growth:.1f}x, linear ~100x); "
        f"noise floor ±{noise_floor:.1%}"
        f"{' (noise-limited)' if noise_limited else ''}"
    )
    print(f"wrote {out_path}")

    failures: list[str] = []
    speedup_floor = 1.0 if noise_limited else MIN_SQLITE_SPEEDUP
    for row in rows:
        if row["units"] < GUARD_SIZE:
            continue
        if row["lookup_speedup"] < speedup_floor:
            failures.append(
                f"sqlite lookup speedup {row['lookup_speedup']:.1f}x "
                f"< {speedup_floor:.1f}x at {row['units']} units"
            )
    if growth > MAX_SQLITE_LOOKUP_GROWTH:
        failures.append(
            f"sqlite lookup cost grew {growth:.1f}x from {SIZES[0]} to "
            f"{SIZES[-1]} units (> {MAX_SQLITE_LOOKUP_GROWTH:.0f}x; "
            "not sub-linear)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("all store-index guards passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
