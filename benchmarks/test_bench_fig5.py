"""Benchmark: regenerate Fig. 5 (energy vs K, theory vs measured traces).

Paper shape: under the iid allocation both curves are minimised at
``K* = 1`` — a single participating edge server per round is the most
communication-efficient choice — and the theoretical bound follows the
same trend as the measured traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.experiments.calibrate import CalibratedSystem
from repro.experiments.fig5 import run_fig5

K_VALUES = (1, 2, 4, 8, 12, 16, 20)
FIXED_E = 20


@pytest.mark.paper
def test_bench_fig5_energy_vs_k(benchmark, system: CalibratedSystem) -> None:
    result = benchmark.pedantic(
        run_fig5,
        kwargs=dict(system=system, epochs=FIXED_E, k_values=K_VALUES),
        iterations=1,
        rounds=1,
    )
    emit(result.report())

    # Shape: measured optimum at K = 1 (iid data).
    assert result.k_star_measured == 1
    # Shape: theory optimum also at the bottom of the range.
    theory_argmin = result.theory_argmin()
    assert theory_argmin is not None and theory_argmin <= 2
    assert result.k_star_theory <= 2.5

    # Shape: theory tracks measured (strong positive rank correlation).
    pairs = [
        (t, m)
        for t, m in zip(
            result.theory_energy.values(), result.measured_energy.values()
        )
        if t is not None and m is not None
    ]
    assert len(pairs) >= 4
    theory = np.array([p[0] for p in pairs])
    measured = np.array([p[1] for p in pairs])
    assert np.corrcoef(theory, measured)[0, 1] > 0.9

    # Energy grows steeply with K when data is iid: the paper's argument
    # that redundant participation wastes energy.
    measured_sorted = [
        result.measured_energy[k]
        for k in sorted(result.measured_energy)
        if result.measured_energy[k] is not None
    ]
    assert measured_sorted[-1] > 2.0 * measured_sorted[0]
