"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the same rows/series the paper reports, so a
``pytest benchmarks/ --benchmark-only -s`` run can be compared against
§VI of the paper directly.  The heavyweight calibrated system (datasets,
testbed, fitted constants) is built once per session.
"""

from __future__ import annotations

import pytest

from repro.experiments.calibrate import CalibratedSystem, calibrate_system
from repro.experiments.config import TEST_SCALE


def pytest_configure(config: pytest.Config) -> None:
    # Benchmarks live outside the default testpaths; make sure pytest
    # does not pick up tests/conftest fixtures expectations.
    config.addinivalue_line("markers", "paper: regenerates a paper table/figure")


@pytest.fixture(scope="session")
def system() -> CalibratedSystem:
    """The calibrated testbed all energy benchmarks share."""
    return calibrate_system(TEST_SCALE)


def emit(report: str) -> None:
    """Print a paper-comparison report block (visible with ``-s``)."""
    print("\n" + report + "\n")
