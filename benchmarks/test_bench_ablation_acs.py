"""Ablation: ACS vs exhaustive grid search vs random search.

DESIGN.md calls out the solver choice as a design decision worth
ablating: ACS exploits biconvexity (Theorem 1) to converge in a handful
of closed-form sweeps, where grid search pays thousands of objective
evaluations.  This bench verifies on a battery of random instances that
ACS (a) matches grid search's optimum and (b) is orders of magnitude
faster, and that random search with a comparable evaluation budget is
strictly worse on quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.core.acs import ACSSolver
from repro.core.baselines import grid_search, random_search
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.experiments.report import render_table


def _instances(n: int, seed: int = 0) -> list[EnergyObjective]:
    rng = np.random.default_rng(seed)
    instances = []
    while len(instances) < n:
        bound = ConvergenceBound(
            a0=float(rng.uniform(0.5, 50.0)),
            a1=float(rng.uniform(0.0, 0.4)),
            a2=float(rng.uniform(0.0, 8e-4)),
        )
        energy = EnergyParams(
            rho=float(rng.uniform(0.0, 0.01)),
            e_upload=float(rng.uniform(0.1, 5.0)),
            n_samples=int(rng.integers(100, 5000)),
        )
        n_servers = int(rng.integers(5, 40))
        epsilon = bound.asymptotic_gap(1, n_servers) + float(rng.uniform(0.02, 0.5))
        instances.append(
            EnergyObjective(
                bound=bound, energy=energy, epsilon=epsilon, n_servers=n_servers
            )
        )
    return instances


INSTANCES = _instances(12)


@pytest.mark.paper
def test_bench_acs_solver(benchmark) -> None:
    """Time ACS over the instance battery; assert optimality vs grid."""

    def solve_all() -> list:
        return [ACSSolver(obj).solve() for obj in INSTANCES]

    results = benchmark(solve_all)
    grid = [grid_search(obj, max_epochs=1500) for obj in INSTANCES]
    rows = []
    for i, (acs, best) in enumerate(zip(results, grid)):
        rows.append(
            [
                i,
                f"({acs.participants_int},{acs.epochs_int})",
                f"({best.participants},{best.epochs})",
                f"{acs.energy_int:.4g}",
                f"{best.energy:.4g}",
                best.evaluations,
                acs.n_iterations,
            ]
        )
        assert acs.energy_int == pytest.approx(best.energy, rel=1e-9)
    emit(
        render_table(
            [
                "instance",
                "ACS (K,E)",
                "grid (K,E)",
                "ACS energy",
                "grid energy",
                "grid evals",
                "ACS sweeps",
            ],
            rows,
            title="Ablation — ACS vs exhaustive grid search",
        )
    )


@pytest.mark.paper
def test_bench_grid_search(benchmark) -> None:
    """Grid-search timing on the same battery, for the speed comparison."""

    def solve_all() -> list:
        return [grid_search(obj, max_epochs=1500) for obj in INSTANCES]

    results = benchmark.pedantic(solve_all, iterations=1, rounds=3)
    assert all(r.energy > 0 for r in results)


@pytest.mark.paper
def test_bench_random_search_quality(benchmark) -> None:
    """Random search with a grid-sized budget still loses to ACS."""

    def run_random_searches() -> list:
        rng = np.random.default_rng(7)
        return [
            random_search(obj, n_trials=300, rng=rng, max_epochs=1500)
            for obj in INSTANCES
        ]

    randoms = benchmark.pedantic(run_random_searches, iterations=1, rounds=3)
    losses = 0
    rows = []
    for i, (obj, rand) in enumerate(zip(INSTANCES, randoms)):
        acs = ACSSolver(obj).solve()
        gap = rand.energy / acs.energy_int - 1.0
        rows.append([i, f"{acs.energy_int:.4g}", f"{rand.energy:.4g}", f"{100*gap:.1f}%"])
        if gap > 1e-9:
            losses += 1
    emit(
        render_table(
            ["instance", "ACS energy", "random energy", "random excess"],
            rows,
            title="Ablation — random search vs ACS (300 trials)",
        )
    )
    # Random search should be strictly worse on most instances.
    assert losses >= len(INSTANCES) // 2
