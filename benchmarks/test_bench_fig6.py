"""Benchmark: regenerate Fig. 6 (energy vs E, theory vs measured, savings).

Paper shape: the energy-to-target-accuracy curve over E is convex with
an interior optimum ``E*``, the theory bound shows the same trend as the
measured traces, and running at ``E*`` saves ~49.8 % of the energy of
the naive baseline policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.experiments.calibrate import CalibratedSystem
from repro.experiments.fig6 import run_fig6

E_VALUES = (1, 2, 5, 10, 20, 40, 60, 100)
FIXED_K = 1


@pytest.mark.paper
def test_bench_fig6_energy_vs_e(benchmark, system: CalibratedSystem) -> None:
    result = benchmark.pedantic(
        run_fig6,
        kwargs=dict(system=system, participants=FIXED_K, e_values=E_VALUES),
        iterations=1,
        rounds=1,
    )
    emit(result.report())

    measured = {e: v for e, v in result.measured_energy.items() if v is not None}
    assert len(measured) >= 4

    # Shape: interior measured optimum — neither the smallest convergent
    # E nor the largest swept E.
    assert result.e_star_measured is not None
    assert result.e_star_measured != max(E_VALUES) or (
        measured[result.e_star_measured] < measured[min(measured)]
    )
    assert measured[result.e_star_measured] < measured[min(measured)]

    # Shape: the theory integer argmin sits in the same region as the
    # measured optimum (within the neighbouring swept values).
    theory_argmin = result.theory_argmin()
    if theory_argmin is not None:
        swept = sorted(E_VALUES)
        idx_t = swept.index(theory_argmin)
        idx_m = swept.index(result.e_star_measured)
        assert abs(idx_t - idx_m) <= 2

    # Headline: substantial measured savings at E* vs the baseline
    # (paper: 49.8 % vs E = 1).
    assert result.savings_measured is not None
    assert result.savings_measured > 0.25
    emit(
        f"headline: {100 * result.savings_measured:.1f}% measured saving at "
        f"E*={result.e_star_measured} vs baseline E={result.baseline_e} "
        "(paper reports 49.8%)"
    )
