"""Run every standalone ``bench_*.py`` and enforce their guards.

Each benchmark is executed as a subprocess (``python benchmarks/
bench_X.py BENCH_X.json``) so one crashing bench cannot take the
harness down and each gets a fresh interpreter.  A benchmark *passes*
when it exits 0 — every bench script encodes its own regression guards
and returns 1 when one trips — and its artifact file exists
afterwards.  Results land in ``BENCH_summary.json``:

* per-bench exit code, wall-clock, and artifact path;
* the ``failures`` list (empty on a clean run).

The harness itself exits non-zero if any benchmark fails, times out,
or forgets to write its artifact, so CI can gate on it directly.

Run:  python benchmarks/run_all.py [summary.json] [--only SUBSTRING]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
PER_BENCH_TIMEOUT_S = 900


def discover() -> list[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def _subprocess_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_bench(script: Path) -> dict:
    name = script.stem.removeprefix("bench_")
    artifact = REPO_ROOT / f"BENCH_{name}.json"
    started = time.perf_counter()
    timed_out = False
    try:
        proc = subprocess.run(
            [sys.executable, str(script), str(artifact)],
            cwd=REPO_ROOT,
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=PER_BENCH_TIMEOUT_S,
        )
        exit_code = proc.returncode
        stderr_tail = proc.stderr.strip().splitlines()[-5:]
    except subprocess.TimeoutExpired as exc:
        timed_out = True
        exit_code = -1
        tail = (exc.stderr or b"")
        if isinstance(tail, bytes):
            tail = tail.decode(errors="replace")
        stderr_tail = tail.strip().splitlines()[-5:]
    seconds = time.perf_counter() - started
    ok = exit_code == 0 and artifact.is_file() and not timed_out
    row = {
        "name": name,
        "script": str(script.relative_to(REPO_ROOT)),
        "artifact": artifact.name,
        "artifact_exists": artifact.is_file(),
        "exit_code": exit_code,
        "timed_out": timed_out,
        "seconds": seconds,
        "ok": ok,
        "stderr_tail": stderr_tail,
    }
    status = "ok" if ok else "FAIL"
    print(f"{status:>4}  {name:<12} {seconds:7.1f}s  exit={exit_code}")
    return row


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    only = None
    if "--only" in args:
        at = args.index("--only")
        try:
            only = args[at + 1]
        except IndexError:
            print("FAIL: --only requires a substring", file=sys.stderr)
            return 2
        del args[at : at + 2]
    out_path = Path(args[0]) if args else Path("BENCH_summary.json")

    scripts = discover()
    if only is not None:
        scripts = [s for s in scripts if only in s.stem]
    if not scripts:
        print("FAIL: no benchmarks matched", file=sys.stderr)
        return 2

    print(f"running {len(scripts)} benchmarks:")
    rows = [run_bench(script) for script in scripts]

    failures = []
    for row in rows:
        if row["timed_out"]:
            failures.append(
                f"{row['name']} timed out after {PER_BENCH_TIMEOUT_S}s"
            )
        elif row["exit_code"] != 0:
            detail = "; ".join(row["stderr_tail"]) or "no stderr"
            failures.append(
                f"{row['name']} exited {row['exit_code']} ({detail})"
            )
        elif not row["artifact_exists"]:
            failures.append(
                f"{row['name']} exited 0 but wrote no {row['artifact']}"
            )

    payload = {
        "benchmark": "summary",
        "config": {
            "per_bench_timeout_s": PER_BENCH_TIMEOUT_S,
            "only": only,
            "python": sys.version.split()[0],
        },
        "benches": rows,
        "total_seconds": sum(row["seconds"] for row in rows),
        "failures": failures,
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path} ({payload['total_seconds']:.1f}s total)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
