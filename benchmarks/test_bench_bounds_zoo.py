"""Ablation: is the KMR bound really the right choice? (§V-A's claim)

The paper picks the KMR convergence bound over alternatives, claiming it
is the tightest.  This bench fits three bound families — KMR, a
Stich-style local-SGD bound, and a K-step-averaging-style bound — to the
*same* pilot observations from the simulated testbed, then scores each
on held-out operating points: relative RMSE of the gap predictions and
accuracy of the implied round count ``T*``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import emit
from repro.core.bounds_zoo import ALL_MODEL_FAMILIES, fit_model
from repro.core.calibration import GapObservation
from repro.experiments.calibrate import CalibratedSystem
from repro.experiments.report import render_table

# Pilot grid the models are fitted on and the held-out probe points.
FIT_POINTS = ((1, 5), (10, 5), (20, 5), (1, 20), (10, 20), (1, 60), (4, 60))
HOLDOUT_POINTS = ((4, 10), (16, 40))


def _observe(
    system: CalibratedSystem, points
) -> list[GapObservation]:
    observations = []
    for k, e in points:
        run = system.prototype.run(
            participants=k,
            epochs=e,
            n_rounds=system.scale.max_rounds,
            target_accuracy=system.scale.target_accuracy,
        )
        rounds = run.history.rounds_to_accuracy(system.scale.target_accuracy)
        if rounds is None:
            continue
        gap = run.history.records[rounds - 1].train_loss - system.f_star
        if gap > 0:
            observations.append(GapObservation(rounds, e, k, gap))
    return observations


@pytest.mark.paper
def test_bench_bound_family_comparison(benchmark, system: CalibratedSystem) -> None:
    fit_obs = _observe(system, FIT_POINTS)
    holdout_obs = _observe(system, HOLDOUT_POINTS)
    assert len(fit_obs) >= 4
    assert holdout_obs

    def fit_all():
        return {
            family.name: fit_model(family, fit_obs)
            for family in ALL_MODEL_FAMILIES
        }

    models = benchmark(fit_all)

    rows = []
    scores = {}
    for name, model in models.items():
        fit_rmse = model.relative_rmse(fit_obs)
        holdout_rmse = model.relative_rmse(holdout_obs)
        t_errors = []
        for obs in holdout_obs:
            try:
                predicted = model.required_rounds_int(obs.gap, obs.epochs, obs.participants)
            except ValueError:
                continue
            t_errors.append(abs(predicted - obs.rounds) / obs.rounds)
        t_error = float(np.mean(t_errors)) if t_errors else float("nan")
        scores[name] = holdout_rmse
        rows.append(
            [
                name,
                f"{fit_rmse:.3f}",
                f"{holdout_rmse:.3f}",
                f"{100 * t_error:.0f}%" if t_errors else "-",
            ]
        )
    emit(
        render_table(
            ["bound family", "fit rel-RMSE", "holdout rel-RMSE", "T* error (holdout)"],
            rows,
            title="Ablation — convergence-bound families on the same pilots",
        )
    )

    # The paper's KMR choice must be competitive: within 1.5x of the best
    # family on held-out relative RMSE (it has a K-floor term the others
    # lack, which is what the energy optimizer needs).
    best = min(scores.values())
    assert scores["KMR (paper)"] <= 1.5 * best + 1e-9
