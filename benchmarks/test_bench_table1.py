"""Benchmark: regenerate Table I (step-(3) durations and the c0/c1 fit)."""

from __future__ import annotations

import pytest

from conftest import emit
from repro.core import constants
from repro.core.calibration import fit_training_energy
from repro.experiments.table1 import run_table1
from repro.hardware.raspberry_pi import RaspberryPiEdgeServer


@pytest.mark.paper
def test_bench_table1_reproduction(benchmark) -> None:
    """Time the full Table-I pipeline and verify the paper's shape."""
    result = benchmark(run_table1)
    emit(result.report())
    # Shape criteria: linear growth in E and n, <6 % deviation, c0 match.
    assert result.max_relative_error() < 0.06
    assert result.fit.c0 == pytest.approx(
        constants.C0_JOULES_PER_SAMPLE_EPOCH, rel=0.01
    )


@pytest.mark.paper
def test_bench_table1_fit_only(benchmark) -> None:
    """Micro-benchmark of the least-squares (c0, c1) fit itself."""
    durations = dict(constants.TABLE_I_DURATIONS)
    fit = benchmark(fit_training_energy, durations, constants.POWER_TRAINING_W)
    assert fit.c0 > 0 and fit.c1 > 0


@pytest.mark.paper
def test_bench_table1_duration_grid(benchmark) -> None:
    """Micro-benchmark of the device timing model over the full grid."""
    device = RaspberryPiEdgeServer(server_id=0)
    table = benchmark(
        device.duration_table, [10, 20, 40], [100, 500, 1000, 2000]
    )
    assert len(table) == 12
