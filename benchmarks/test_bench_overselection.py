"""Extension bench: over-selection — trading energy for tail latency.

Production FL systems select ``K + m`` clients and aggregate the first
``K`` uploads, hiding stragglers.  On a jittery testbed this bench
quantifies the trade-off EE-FEI's energy accounting makes visible:
over-selection cuts wall-clock time per round (the coordinator stops
waiting for the slowest device) but burns energy in the discarded
updates — energy the paper's objective would rather save.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.report import render_table
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.hardware.raspberry_pi import PiTimingConfig

N_SERVERS = 12
K = 4
EPOCHS = 10
ROUNDS = 25
OVERSELECTIONS = (0, 1, 2, 4)


@pytest.fixture(scope="module")
def jittery_prototype() -> HardwarePrototype:
    train, test = load_synthetic_mnist(n_train=1200, n_test=300, seed=0)
    config = PrototypeConfig(
        n_servers=N_SERVERS,
        timing=PiTimingConfig(jitter_fraction=0.3),
        seed=0,
    )
    return HardwarePrototype(train, test, config)


@pytest.mark.paper
def test_bench_overselection_tradeoff(benchmark, jittery_prototype) -> None:
    def sweep():
        return {
            m: jittery_prototype.run(
                participants=K, epochs=EPOCHS, n_rounds=ROUNDS, overselection=m
            )
            for m in OVERSELECTIONS
        }

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    rows = []
    for m, result in sorted(results.items()):
        rows.append(
            [
                m,
                K + m,
                f"{result.total_energy_j:.1f}",
                f"{result.wall_clock_s:.1f}",
                f"{result.history.final_accuracy():.3f}",
            ]
        )
    emit(
        render_table(
            ["overselection m", "selected", "energy (J)", "wall clock (s)", "final acc"],
            rows,
            title=f"Extension — over-selection on a jittery testbed (K = {K})",
        )
    )

    plain = results[0]
    most = results[max(OVERSELECTIONS)]
    # Energy strictly grows with over-provisioning (stragglers train too).
    energies = [results[m].total_energy_j for m in OVERSELECTIONS]
    assert all(b > a for a, b in zip(energies, energies[1:]))
    # Tail latency shrinks: waiting for the 4 fastest of 8 beats waiting
    # for the slowest of 4 on a jittery fleet.
    assert most.wall_clock_s < plain.wall_clock_s
    # Learning quality is not destroyed (same K aggregated).
    assert most.history.final_accuracy() > plain.history.final_accuracy() - 0.1
