"""Execution-engine benchmark: sequential vs batched vs pool speedups.

Times the three :mod:`repro.fl.engine` backends over the ISSUE grid
(K ∈ {1, 5, 10, 20}, E ∈ {1, 4, 16}) at prototype scale — the reduced
20-server testbed the test suite runs, with an edge-IoT-sized model
(32 features, 5 classes, ~30 samples per server) whose per-client
kernels are small enough that Python dispatch, not BLAS, dominates the
sequential path.  That is the regime the batched backend exists for;
a paper-sized model row (784x10, BLAS-bound) is included for contrast.

Writes ``BENCH_engine.json`` and exits non-zero if the batched backend
is slower than sequential on the K=20, E=16 headline run (50 timed
rounds), guarding against performance regressions.  The headline also
records the max |param| difference between backends so the speedup and
the ``atol=1e-10`` equivalence are certified by the same artifact.

The paper-sized contrast row also times the persistent-worker pool
backend.  Its guard is CPU-aware: with multiple cores the pool must
beat sequential by the acceptance margin; on a single-core container
(where a speedup is physically impossible) the guard degrades to a
bounded-overhead floor and the row records ``cpu_limited: true``.
``benchmarks/bench_parallel.py`` owns the full two-level parallel
acceptance run.

Not a pytest benchmark (no ``test_`` prefix — the timings are a
tracking artifact, not an assertion):

Run:  python benchmarks/bench_engine.py [output.json]
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

N_SERVERS = 20
SEED = 0
BACKENDS = ("sequential", "batched", "pool")
K_VALUES = (1, 5, 10, 20)
E_VALUES = (1, 4, 16)
GRID_ROUNDS = 10
WARMUP_ROUNDS = 2

# Headline / CI-guard cell: K=20, E=16, 50 timed rounds, best of 3.
HEADLINE_K = 20
HEADLINE_E = 16
HEADLINE_ROUNDS = 50
HEADLINE_REPS = 3

# Prototype scale: every edge server holds a small IoT-style dataset, so
# one client's forward/backward is microseconds of BLAS and the
# sequential loop's time is mostly interpreter dispatch.
IOT_MODEL = LogisticRegressionConfig(n_features=32, n_classes=5)
IOT_SAMPLES_PER_SERVER = 30

# Paper-sized contrast row: 784x10 kernels are BLAS-bound, so batching
# across clients cannot beat the per-client loop by much on one core.
PAPER_MODEL = LogisticRegressionConfig(n_features=784, n_classes=10)
PAPER_SAMPLES_PER_SERVER = 100

# Pool guard thresholds (paper contrast row): the acceptance speedup
# applies when the cores exist; otherwise only bounded overhead is
# enforceable.
ACCEPT_POOL_SPEEDUP = 1.5
MIN_BOUNDED_POOL_SPEEDUP = 0.5
POOL_CPU_FLOOR = 2


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _linear_task(n: int, model: LogisticRegressionConfig, seed: int) -> Dataset:
    """A noisy linear task at the model's dimensions."""
    d, c = model.n_features, model.n_classes
    projection = np.random.default_rng(424242).normal(size=(d, c))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, c)


def _make_data(model: LogisticRegressionConfig, samples_per_server: int):
    train = _linear_task(samples_per_server * N_SERVERS, model, seed=SEED)
    test = _linear_task(200, model, seed=SEED + 99)
    partitions = partition_iid(train, N_SERVERS, np.random.default_rng(1))
    return train, test, partitions


def _timed_run(
    backend: str,
    model: LogisticRegressionConfig,
    data,
    participants: int,
    epochs: int,
    rounds: int,
) -> tuple[float, np.ndarray]:
    """Train ``warmup + rounds`` rounds; return (timed seconds, params)."""
    train, test, partitions = data
    trainer = FederatedTrainer(
        clients=build_clients(partitions, model),
        config=FederatedConfig(
            n_rounds=WARMUP_ROUNDS + rounds,
            participants_per_round=participants,
            local_epochs=epochs,
            sgd=SGDConfig(learning_rate=0.1, decay=0.995),
            seed=SEED,
            backend=backend,
        ),
        train_eval=train,
        test_eval=test,
    )
    try:
        for _ in range(WARMUP_ROUNDS):
            trainer.run_round()
        started = time.perf_counter()
        for _ in range(rounds):
            trainer.run_round()
        elapsed = time.perf_counter() - started
        return elapsed, trainer.coordinator.global_parameters.copy()
    finally:
        trainer.close()


def run_grid(data, model: LogisticRegressionConfig) -> list[dict]:
    rows = []
    for participants in K_VALUES:
        for epochs in E_VALUES:
            timings = {}
            for backend in BACKENDS:
                elapsed, _ = _timed_run(
                    backend, model, data, participants, epochs, GRID_ROUNDS
                )
                timings[backend] = elapsed / GRID_ROUNDS
            row = {
                "participants": participants,
                "epochs": epochs,
                "rounds": GRID_ROUNDS,
                "seconds_per_round": timings,
                "speedup_batched": timings["sequential"] / timings["batched"],
                "speedup_pool": timings["sequential"] / timings["pool"],
            }
            rows.append(row)
            print(
                f"K={participants:2d} E={epochs:2d}: "
                f"seq {timings['sequential'] * 1000:7.2f} ms/round, "
                f"batched {row['speedup_batched']:5.2f}x, "
                f"pool {row['speedup_pool']:5.2f}x"
            )
    return rows


def run_headline(data, model: LogisticRegressionConfig) -> dict:
    """The acceptance cell: K=20, E=16, 50 timed rounds, best of N reps."""
    times: dict[str, list[float]] = {b: [] for b in BACKENDS}
    params: dict[str, np.ndarray] = {}
    for _ in range(HEADLINE_REPS):
        for backend in BACKENDS:
            elapsed, final = _timed_run(
                backend, model, data, HEADLINE_K, HEADLINE_E, HEADLINE_ROUNDS
            )
            times[backend].append(elapsed)
            params[backend] = final
    best = {b: min(times[b]) for b in BACKENDS}
    median = {b: statistics.median(times[b]) for b in BACKENDS}
    max_diff_batched = float(
        np.max(np.abs(params["batched"] - params["sequential"]))
    )
    max_diff_pool = float(
        np.max(np.abs(params["pool"] - params["sequential"]))
    )
    return {
        "participants": HEADLINE_K,
        "epochs": HEADLINE_E,
        "rounds": HEADLINE_ROUNDS,
        "reps": HEADLINE_REPS,
        "seconds_best": best,
        "seconds_median": median,
        "speedup_batched": best["sequential"] / best["batched"],
        "speedup_pool": best["sequential"] / best["pool"],
        "max_abs_param_diff_batched": max_diff_batched,
        "max_abs_param_diff_pool": max_diff_pool,
        "equivalent_at_1e-10": max_diff_batched <= 1e-10
        and max_diff_pool == 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_engine.json")

    data = _make_data(IOT_MODEL, IOT_SAMPLES_PER_SERVER)
    print("grid (prototype scale, 32x5 model):")
    grid = run_grid(data, IOT_MODEL)
    print("headline (K=20, E=16, 50 rounds):")
    headline = run_headline(data, IOT_MODEL)
    print(
        f"  batched {headline['speedup_batched']:.2f}x, "
        f"pool {headline['speedup_pool']:.2f}x, "
        f"max|dparam| batched {headline['max_abs_param_diff_batched']:.2e}"
    )

    cpus = _available_cpus()
    paper_data = _make_data(PAPER_MODEL, PAPER_SAMPLES_PER_SERVER)
    paper_times = {}
    paper_params = {}
    for backend in BACKENDS:
        elapsed, final = _timed_run(
            backend, PAPER_MODEL, paper_data, HEADLINE_K, HEADLINE_E, GRID_ROUNDS
        )
        paper_times[backend] = elapsed / GRID_ROUNDS
        paper_params[backend] = final
    paper_row = {
        "participants": HEADLINE_K,
        "epochs": HEADLINE_E,
        "rounds": GRID_ROUNDS,
        "seconds_per_round": paper_times,
        "speedup_batched": paper_times["sequential"] / paper_times["batched"],
        "speedup_pool": paper_times["sequential"] / paper_times["pool"],
        "max_abs_param_diff_pool": float(
            np.max(np.abs(paper_params["pool"] - paper_params["sequential"]))
        ),
        "available_cpus": cpus,
        "cpu_limited": cpus < POOL_CPU_FLOOR,
        "note": "784x10 kernels are BLAS-bound; cross-client batching "
        "mostly removes dispatch overhead, so the gain is modest.  The "
        "pool row is the workload the persistent-worker runtime targets "
        "— its speedup scales with available cores.",
    }
    print(
        f"paper-sized model contrast: batched "
        f"{paper_row['speedup_batched']:.2f}x, "
        f"pool {paper_row['speedup_pool']:.2f}x "
        f"({cpus} cpus)"
    )

    payload = {
        "benchmark": "engine",
        "config": {
            "n_servers": N_SERVERS,
            "seed": SEED,
            "grid_k": list(K_VALUES),
            "grid_e": list(E_VALUES),
            "grid_rounds": GRID_ROUNDS,
            "warmup_rounds": WARMUP_ROUNDS,
            "iot_model": {
                "n_features": IOT_MODEL.n_features,
                "n_classes": IOT_MODEL.n_classes,
                "samples_per_server": IOT_SAMPLES_PER_SERVER,
            },
            "paper_model": {
                "n_features": PAPER_MODEL.n_features,
                "n_classes": PAPER_MODEL.n_classes,
                "samples_per_server": PAPER_SAMPLES_PER_SERVER,
            },
        },
        "grid": grid,
        "headline": headline,
        "paper_model_contrast": paper_row,
        "pool_thresholds": {
            "accept_pool_speedup": ACCEPT_POOL_SPEEDUP,
            "min_bounded_pool_speedup": MIN_BOUNDED_POOL_SPEEDUP,
            "pool_cpu_floor": POOL_CPU_FLOOR,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures = []
    if headline["speedup_batched"] < 1.0:
        failures.append(
            "batched backend slower than sequential at "
            f"K={HEADLINE_K}, E={HEADLINE_E} "
            f"({headline['speedup_batched']:.2f}x)"
        )
    if paper_row["max_abs_param_diff_pool"] != 0.0:
        failures.append(
            "pool backend diverged from sequential at paper scale "
            f"(max|dparam| = {paper_row['max_abs_param_diff_pool']:.2e})"
        )
    pool_threshold = (
        ACCEPT_POOL_SPEEDUP
        if cpus >= POOL_CPU_FLOOR
        else MIN_BOUNDED_POOL_SPEEDUP
    )
    if paper_row["speedup_pool"] < pool_threshold:
        failures.append(
            f"pool speedup {paper_row['speedup_pool']:.2f}x at paper scale "
            f"below {pool_threshold:.2f}x threshold ({cpus} cpus)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
