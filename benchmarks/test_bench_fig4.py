"""Benchmark: regenerate Fig. 4 (convergence vs T for varying K and E).

The paper's qualitative findings this bench reproduces:

* Fig. 4(a)/(b): at a loose accuracy target K barely matters; at a
  strict target, larger K reduces the required T.
* Fig. 4(c)/(d): the total local gradient count ``E x T`` at a target
  accuracy is non-monotone in E — an interior-optimal E exists.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments.calibrate import CalibratedSystem
from repro.experiments.fig4 import run_fig4

# Reduced sweep for the benchmark scale (the paper uses E=40, K up to 20
# on MNIST).  The strict target must sit near the model's ceiling, as the
# paper's 0.90 does on MNIST: that is where the E*T series becomes
# non-monotone (at loose targets, small E always wins on gradient count).
K_VALUES = (1, 5, 10, 20)
E_VALUES = (5, 20, 40, 100)
FIXED_E = 20
FIXED_K = 10
MAX_ROUNDS = 250
LOOSE, STRICT = 0.80, 0.88


@pytest.mark.paper
def test_bench_fig4_convergence_sweeps(benchmark, system: CalibratedSystem) -> None:
    result = benchmark.pedantic(
        run_fig4,
        kwargs=dict(
            prototype=system.prototype,
            k_values=K_VALUES,
            e_values=E_VALUES,
            fixed_e=FIXED_E,
            fixed_k=FIXED_K,
            max_rounds=MAX_ROUNDS,
            loose_target=LOOSE,
            strict_target=STRICT,
        ),
        iterations=1,
        rounds=1,
    )
    emit(result.report())

    # --- Fig. 4(a)/(b) shape: strict-target T shrinks as K grows. ---
    strict_rounds = result.rounds_vs_k(STRICT)
    reached = {k: t for k, t in strict_rounds.items() if t is not None}
    if len(reached) >= 2:
        ks = sorted(reached)
        assert reached[ks[-1]] <= reached[ks[0]]

    # --- Fig. 4(c)/(d) shape: E*T non-monotone in E (interior optimum).
    # The paper reports 5 600 local gradients at E=20, 3 600 at E=40 and
    # 6 000 at E=100: a strict interior minimum.  The same shape must
    # hold here among the E values that reach the strict target (the
    # smallest swept E fails to converge at all, like the paper's E=1).
    gradients = result.local_gradients_vs_e(STRICT)
    reached_e = {e: g for e, g in gradients.items() if g is not None}
    assert len(reached_e) >= 3
    es = sorted(reached_e)
    best_e = min(reached_e, key=reached_e.__getitem__)
    assert best_e != es[-1], "E*T must rise again at large E (drift)"
    assert reached_e[es[-1]] > reached_e[best_e]

    # Loss curves decrease for every configuration.
    for history in list(result.fixed_e_histories.values()) + list(
        result.fixed_k_histories.values()
    ):
        assert history.final_loss() < history.losses[0]
