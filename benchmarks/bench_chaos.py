"""Supervision benchmark: clean-path overhead plus recovery wall-clock.

The campaign runner now wraps every unit in a supervisor (bounded
retries, heartbeats, watchdog deadlines, quarantine).  That machinery
must be effectively free when nothing fails — supervision that taxes
the happy path gets turned off, and then it is not there when a unit
*does* wedge.  This benchmark certifies both halves of that bargain:

* **clean-path overhead** — a small fault-free campaign run supervised
  vs ``supervision=None``, paired per rep so drift cancels; the guard
  checks the *median* ratio across reps against a 5 % ceiling, and the
  two stores must be byte-identical (heartbeats are cleaned up on
  success, so supervision may not leave fingerprints in artifacts);
* **crash recovery** — the same grid with two crash-once saboteurs:
  the supervised run must complete undegraded, and the healed store
  must be byte-identical to a fault-free reference; the extra
  wall-clock (retries + backoff) is recorded;
* **kill recovery** — a parallel run (``jobs=2``) with one worker
  SIGKILLed mid-unit: the scheduler must rebuild the pool, resubmit
  survivors, and still converge to the reference bytes; pool rebuilds
  are counted via the runner's observer.

The overhead guard is **noise-aware**, mirroring ``bench_obs.py``:
each rep times the unsupervised mode twice, and the spread of those
identical-work ratios is the box's timing noise floor.  When the floor
cannot resolve 5 %, the guard relaxes to a bounded-overhead ceiling
and the JSON records ``noise_limited: true``.  The byte-identity and
recovery guards are enforced unconditionally — supervision must never
change results, whatever the box.  ``cpu_limited`` records whether the
parallel phase had real cores to fan out onto (timings there are
tracking-only either way).

Writes ``BENCH_chaos.json`` and exits non-zero on any guard failure.

Not a pytest benchmark (no ``test_`` prefix — the timings are a
tracking artifact, not an assertion):

Run:  python benchmarks/bench_chaos.py [output.json]
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import ArtifactStore, CampaignRunner, CampaignSpec, RunSpec
from repro.campaign.runner import DEFAULT_SUPERVISION
from repro.faults import ChaosPlan, RetryPolicy, Saboteur
from repro.obs import Observer

SEED = 0

# A small fault-free grid: 4 units, seconds each, so the paired reps
# stay cheap while the per-unit supervision cost (heartbeat writes,
# backoff bookkeeping, deadline tracking) is paid 4 times per run.
GRID_K = (1, 2)
GRID_E = (1, 2)
N_SERVERS = 4
N_TRAIN = 240
N_TEST = 80
MAX_ROUNDS = 4

REPS = 5
PARALLEL_JOBS = 2

# Guard thresholds.
MAX_SUPERVISION_OVERHEAD = 0.05  # supervised vs unsupervised, clean path
NOISE_RESOLUTION_FACTOR = 3.0
MAX_BOUNDED_OVERHEAD = 0.50  # always enforced, even noise-limited

# Store content outside unit artifacts: failure trails carry wall-clock
# timestamps and spool/heartbeat dirs are runtime scratch, so identity
# is asserted over everything else (units + manifest + campaign.json).
_RUNTIME_DIRS = ("quarantine", "heartbeats", "spools")

# Retries are the point of the recovery phases; keep their backoff out
# of the measured wall-clock noise.
FAST_SUPERVISION = dataclasses.replace(
    DEFAULT_SUPERVISION,
    retry=RetryPolicy(max_retries=2, base_backoff_s=0.01, max_backoff_s=0.05),
)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _campaign(name: str) -> CampaignSpec:
    base = RunSpec(
        name=name,
        n_train=N_TRAIN,
        n_test=N_TEST,
        n_servers=N_SERVERS,
        max_rounds=MAX_ROUNDS,
        train_to_target=False,
        seed=SEED,
    )
    return CampaignSpec(
        name=name, base=base, participants=GRID_K, epochs=GRID_E
    )


def _store_digest(root: Path) -> str:
    """One hash over artifacts + manifest; runtime dirs excluded."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.name == ".lock":
            continue
        relative = path.relative_to(root)
        if relative.parts[0] in _RUNTIME_DIRS:
            continue
        digest.update(str(relative).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _timed_campaign(
    workdir: Path,
    label: str,
    supervision,
    chaos: ChaosPlan | None = None,
    jobs: int = 1,
    observer: Observer | None = None,
):
    store_root = workdir / label
    runner = CampaignRunner(
        _campaign("bench-chaos"),
        ArtifactStore(store_root),
        observer=observer,
        chaos=chaos,
    )
    started = time.perf_counter()
    summary = runner.run(jobs=jobs, supervision=supervision)
    elapsed = time.perf_counter() - started
    return elapsed, summary, store_root


def run_clean_overhead(workdir: Path) -> dict:
    """Supervised vs unsupervised on the fault-free path, paired reps."""
    ratios: list[float] = []
    noise_ratios: list[float] = []
    timings: dict[str, float] = {}
    identical = True
    for rep in range(REPS):
        scratch = workdir / f"clean-{rep}"
        off_s, off_summary, off_root = _timed_campaign(
            scratch, "off", supervision=None
        )
        sup_s, sup_summary, sup_root = _timed_campaign(
            scratch, "supervised", supervision=DEFAULT_SUPERVISION
        )
        off2_s, _, _ = _timed_campaign(scratch, "off2", supervision=None)
        assert off_summary.executed == sup_summary.executed == len(GRID_K) * len(GRID_E)
        assert not sup_summary.degraded
        identical = identical and (
            _store_digest(off_root) == _store_digest(sup_root)
        )
        ratios.append(sup_s / off_s)
        noise_ratios.append(off2_s / off_s)
        for mode, seconds in (("off", off_s), ("supervised", sup_s)):
            if mode not in timings or seconds < timings[mode]:
                timings[mode] = seconds
        shutil.rmtree(scratch, ignore_errors=True)
    overhead = statistics.median(ratios) - 1.0
    noise_floor = statistics.median(abs(r - 1.0) for r in noise_ratios)
    noise_limited = noise_floor * NOISE_RESOLUTION_FACTOR > MAX_SUPERVISION_OVERHEAD
    row = {
        "units": len(GRID_K) * len(GRID_E),
        "reps": REPS,
        "seconds_unsupervised_best": timings["off"],
        "seconds_supervised_best": timings["supervised"],
        "ratios": ratios,
        "noise_ratios": noise_ratios,
        "supervision_overhead": overhead,
        "noise_floor": noise_floor,
        "noise_limited": noise_limited,
        "stores_byte_identical": identical,
    }
    print(
        f"clean path: supervision {overhead:+.1%} "
        f"(noise floor ±{noise_floor:.1%}"
        f"{', noise-limited' if noise_limited else ''}), "
        f"byte-identical={identical}"
    )
    return row


def run_crash_recovery(workdir: Path) -> dict:
    """Crash-once on half the grid: retries heal to reference bytes."""
    clean_s, _, reference = _timed_campaign(
        workdir, "crash-reference", supervision=None
    )
    chaos = ChaosPlan.build(
        {
            "K1-E1-s0": Saboteur(kind="crash", times=1),
            "K2-E2-s0": Saboteur(kind="crash", times=1),
        }
    )
    chaos_s, summary, healed = _timed_campaign(
        workdir, "crash-chaos", supervision=FAST_SUPERVISION, chaos=chaos
    )
    row = {
        "crashed_units": 2,
        "seconds_fault_free": clean_s,
        "seconds_with_recovery": chaos_s,
        "recovery_overhead_s": chaos_s - clean_s,
        "degraded": summary.degraded,
        "executed": summary.executed,
        "store_byte_identical": _store_digest(reference)
        == _store_digest(healed),
    }
    print(
        f"crash recovery: +{row['recovery_overhead_s']:.2f}s over "
        f"{clean_s:.2f}s fault-free, degraded={summary.degraded}, "
        f"byte-identical={row['store_byte_identical']}"
    )
    return row


def run_kill_recovery(workdir: Path) -> dict:
    """SIGKILL one parallel worker: pool rebuild + resubmit heals."""
    clean_s, _, reference = _timed_campaign(
        workdir, "kill-reference", supervision=None
    )
    chaos = ChaosPlan.build({"K1-E2-s0": Saboteur(kind="kill", times=1)})
    observer = Observer()
    kill_s, summary, healed = _timed_campaign(
        workdir,
        "kill-chaos",
        supervision=FAST_SUPERVISION,
        chaos=chaos,
        jobs=PARALLEL_JOBS,
        observer=observer,
    )
    row = {
        "jobs": PARALLEL_JOBS,
        "seconds_fault_free_sequential": clean_s,
        "seconds_with_recovery": kill_s,
        "pool_rebuilds": observer.metrics.value("scheduler.pool_rebuilds"),
        "degraded": summary.degraded,
        "executed": summary.executed,
        "store_byte_identical": _store_digest(reference)
        == _store_digest(healed),
    }
    print(
        f"kill recovery (jobs={PARALLEL_JOBS}): {kill_s:.2f}s, "
        f"{row['pool_rebuilds']} pool rebuild(s), "
        f"degraded={summary.degraded}, "
        f"byte-identical={row['store_byte_identical']}"
    )
    return row


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_chaos.json")
    cpus = _available_cpus()
    cpu_limited = cpus < PARALLEL_JOBS
    print(f"available cpus: {cpus} (cpu_limited={cpu_limited})")

    workdir = Path(tempfile.mkdtemp(prefix="bench_chaos_"))
    try:
        clean = run_clean_overhead(workdir)
        crash = run_crash_recovery(workdir)
        kill = run_kill_recovery(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "benchmark": "chaos",
        "available_cpus": cpus,
        "cpu_limited": cpu_limited,
        "clean_path": clean,
        "crash_recovery": crash,
        "kill_recovery": kill,
        "thresholds": {
            "max_supervision_overhead": MAX_SUPERVISION_OVERHEAD,
            "max_bounded_overhead": MAX_BOUNDED_OVERHEAD,
            "noise_resolution_factor": NOISE_RESOLUTION_FACTOR,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures: list[str] = []
    # Identity and recovery guards: unconditional.
    if not clean["stores_byte_identical"]:
        failures.append(
            "supervised clean-path store differs from unsupervised"
        )
    for label, row in (("crash", crash), ("kill", kill)):
        if row["degraded"]:
            failures.append(f"{label} recovery left the campaign degraded")
        if not row["store_byte_identical"]:
            failures.append(
                f"{label}-recovered store differs from fault-free reference"
            )
    if kill["pool_rebuilds"] < 1:
        failures.append("kill recovery did not rebuild the worker pool")
    # Overhead guard: strict when the box can resolve it.
    limit = (
        MAX_BOUNDED_OVERHEAD
        if clean["noise_limited"]
        else MAX_SUPERVISION_OVERHEAD
    )
    if clean["supervision_overhead"] > limit:
        failures.append(
            f"clean-path supervision overhead "
            f"{clean['supervision_overhead']:.1%} > {limit:.0%}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("all supervision guards passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
