"""Telemetry-overhead benchmark: events+metrics on vs off, spool vs in-process.

Observability must be cheap enough to leave on: the campaign runner now
attaches a :class:`~repro.obs.sink.SpoolObserver` to every unit, and the
pool engine streams per-chunk telemetry from its workers, so any real
per-event cost is paid on every round of every unit.  This benchmark
times the K=20, E=16 headline cell (the same one ``bench_engine.py``
guards) in three telemetry modes:

* **off** — no observer anywhere (the floor);
* **in-process** — a plain :class:`~repro.obs.Observer` attached to the
  trainer (events, counters, histograms, spans in memory);
* **spool** — a :class:`SpoolObserver` streaming the same telemetry to
  an append-only JSONL spool file, one flushed line per event — the
  cross-process transport the campaign runner uses.

for both the ``sequential`` and ``pool`` execution backends (the pool
run also sets the spool context, so engine workers stream their
per-chunk spools exactly as they do under a campaign).

Guards (per backend, median of paired per-rep ratios):

* full in-process telemetry must cost < 10 % wall-clock over off;
* spool streaming must add < 5 % over in-process telemetry.

The guards are **noise-aware**, mirroring ``bench_campaign.py``'s
CPU-aware pattern: each rep also times the *off* mode twice, and the
spread of those identical-work ratios is the box's timing noise floor.
A shared 1-CPU box routinely shows ±30 % rep-to-rep noise — no honest
wall-clock measurement can resolve a 5 % threshold there — so when the
floor is too high the strict thresholds relax to a bounded-overhead
ceiling and the JSON records ``noise_limited: true``.  A per-event
microbenchmark (tight loop, 10^4 events) is recorded alongside: it
resolves microsecond costs regardless of box noise and is the number to
watch when the macro guard is noise-limited.

Writes ``BENCH_obs.json`` and exits non-zero when a guard fails.

Not a pytest benchmark (no ``test_`` prefix — the timings are a
tracking artifact, not an assertion):

Run:  python benchmarks/bench_obs.py [output.json]
"""

from __future__ import annotations

import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.obs import Observer, SpoolObserver, TelemetrySpool
from repro.obs.sink import clear_spool_context, set_spool_context

N_SERVERS = 20
SEED = 0
BACKENDS = ("sequential", "pool")
MODES = ("off", "inproc", "spool")

# Headline cell (mirrors bench_engine): K=20 participants, E=16 local
# epochs, IoT-sized model so Python dispatch — the layer telemetry hooks
# into — dominates, making this the *worst* case for relative overhead.
HEADLINE_K = 20
HEADLINE_E = 16
# Long timed regions so per-round scheduling/IPC jitter (large for the
# pool backend on a busy box) averages out inside one measurement.
TIMED_ROUNDS = 40
WARMUP_ROUNDS = 2
# Overhead is estimated pairwise: each rep times the three modes
# back-to-back (off, inproc, spool) and yields one inproc/off and one
# spool/inproc ratio, so slow drift in background load cancels within
# the pair; the guard checks the *median* ratio across reps, which a
# couple of noisy reps cannot move.
REPS = 5

IOT_MODEL = LogisticRegressionConfig(n_features=32, n_classes=5)
IOT_SAMPLES_PER_SERVER = 30

# Guard thresholds.
MAX_TELEMETRY_OVERHEAD = 0.10  # in-process vs off
MAX_SPOOL_OVERHEAD = 0.05  # spool vs in-process
# A threshold is only enforceable when the box's same-work noise floor
# is comfortably below it; otherwise the bounded ceiling applies.
NOISE_RESOLUTION_FACTOR = 3.0
MAX_BOUNDED_OVERHEAD = 0.50  # always enforced, even noise-limited


def _linear_task(n: int, model: LogisticRegressionConfig, seed: int) -> Dataset:
    d, c = model.n_features, model.n_classes
    projection = np.random.default_rng(424242).normal(size=(d, c))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    scores = features @ projection
    labels = np.argmax(scores + rng.normal(0, 0.5, size=scores.shape), axis=1)
    return Dataset(features, labels, c)


def _make_data():
    train = _linear_task(IOT_SAMPLES_PER_SERVER * N_SERVERS, IOT_MODEL, SEED)
    test = _linear_task(200, IOT_MODEL, seed=SEED + 99)
    partitions = partition_iid(train, N_SERVERS, np.random.default_rng(1))
    return train, test, partitions


def _make_observer(mode: str, scratch: Path) -> Observer | None:
    if mode == "off":
        return None
    if mode == "inproc":
        return Observer()
    spool = TelemetrySpool(
        scratch / "bench-unit.jsonl", unit="bench", role="unit"
    )
    return SpoolObserver(spool)


def _timed_run(backend: str, mode: str, data, scratch: Path) -> dict:
    """One training run; returns timing plus telemetry volume."""
    train, test, partitions = data
    observer = _make_observer(mode, scratch)
    if mode == "spool":
        # What the campaign runner does before executing a unit: nested
        # pool-engine workers discover the directory and spool too.
        set_spool_context(scratch, "bench")
    trainer = FederatedTrainer(
        clients=build_clients(partitions, IOT_MODEL),
        config=FederatedConfig(
            n_rounds=WARMUP_ROUNDS + TIMED_ROUNDS,
            participants_per_round=HEADLINE_K,
            local_epochs=HEADLINE_E,
            sgd=SGDConfig(learning_rate=0.1, decay=0.995),
            seed=SEED,
            backend=backend,
        ),
        train_eval=train,
        test_eval=test,
        observer=observer,
    )
    try:
        for _ in range(WARMUP_ROUNDS):
            trainer.run_round()
        started = time.perf_counter()
        for _ in range(TIMED_ROUNDS):
            trainer.run_round()
        elapsed = time.perf_counter() - started
    finally:
        trainer.close()
        clear_spool_context()
        if isinstance(observer, SpoolObserver):
            observer.finalize()
    row = {"elapsed_s": elapsed}
    if observer is not None:
        row["events"] = len(observer.events)
        row["instruments"] = len(observer.metrics)
    if mode == "spool":
        spools = sorted(scratch.glob("*.jsonl"))
        row["spool_files"] = len(spools)
        row["spool_bytes"] = sum(path.stat().st_size for path in spools)
    return row


def _micro_costs(n: int = 10_000) -> dict[str, float]:
    """Per-event microsecond costs from tight loops (noise-immune)."""
    from repro.obs import Observer

    costs: dict[str, float] = {}
    observer = Observer()
    started = time.perf_counter()
    for i in range(n):
        observer.emit("client.train", client=i % 20, train_s=0.1)
    costs["plain_emit"] = (time.perf_counter() - started) / n * 1e6
    with tempfile.TemporaryDirectory() as scratch:
        spool = TelemetrySpool(Path(scratch) / "m.jsonl", unit="bench")
        spooled = SpoolObserver(spool)
        started = time.perf_counter()
        for i in range(n):
            spooled.emit("client.train", client=i % 20, train_s=0.1)
        costs["spooled_emit_bulk"] = (time.perf_counter() - started) / n * 1e6
        started = time.perf_counter()
        for i in range(n):
            spooled.emit("round.end", round=i)
        costs["spooled_emit_live"] = (time.perf_counter() - started) / n * 1e6
        spooled.finalize()
    return costs


def run_benchmark(output: Path) -> int:
    data = _make_data()
    results: dict = {
        "config": {
            "n_servers": N_SERVERS,
            "participants": HEADLINE_K,
            "epochs": HEADLINE_E,
            "timed_rounds": TIMED_ROUNDS,
            "reps": REPS,
            "model": "32x5 (IoT scale)",
        },
        "guards": {
            "max_telemetry_overhead": MAX_TELEMETRY_OVERHEAD,
            "max_spool_overhead": MAX_SPOOL_OVERHEAD,
        },
        "backends": {},
    }
    failures: list[str] = []
    results["per_event_us"] = _micro_costs()
    print(
        "per-event: "
        + ", ".join(
            f"{k} {v:.1f}us" for k, v in results["per_event_us"].items()
        )
    )
    for backend in BACKENDS:
        timings: dict[str, dict] = {}
        telemetry_ratios: list[float] = []
        spool_ratios: list[float] = []
        noise_ratios: list[float] = []
        for _ in range(REPS):
            rep: dict[str, dict] = {}
            # "off" twice per rep: the second/first ratio does identical
            # work, so its deviation from 1.0 is pure box noise.
            for mode in (*MODES, "off2"):
                with tempfile.TemporaryDirectory() as scratch:
                    rep[mode] = _timed_run(
                        backend, mode.rstrip("2"), data, Path(scratch)
                    )
                best = timings.get(mode)
                if best is None or rep[mode]["elapsed_s"] < best["elapsed_s"]:
                    timings[mode] = rep[mode]
            telemetry_ratios.append(
                rep["inproc"]["elapsed_s"] / rep["off"]["elapsed_s"]
            )
            spool_ratios.append(
                rep["spool"]["elapsed_s"] / rep["inproc"]["elapsed_s"]
            )
            noise_ratios.append(
                rep["off2"]["elapsed_s"] / rep["off"]["elapsed_s"]
            )
        for mode in MODES:
            print(
                f"{backend:>10s} / {mode:<6s}: "
                f"{timings[mode]['elapsed_s']:.3f}s (best of {REPS})"
            )
        telemetry_overhead = statistics.median(telemetry_ratios) - 1.0
        spool_overhead = statistics.median(spool_ratios) - 1.0
        noise_floor = statistics.median(
            abs(ratio - 1.0) for ratio in noise_ratios
        )
        resolvable = noise_floor * NOISE_RESOLUTION_FACTOR
        noise_limited = resolvable > MAX_SPOOL_OVERHEAD
        results["backends"][backend] = {
            **{mode: timings[mode] for mode in MODES},
            "telemetry_ratios": telemetry_ratios,
            "spool_ratios": spool_ratios,
            "noise_ratios": noise_ratios,
            "noise_floor": noise_floor,
            "telemetry_overhead": telemetry_overhead,
            "spool_overhead": spool_overhead,
            "noise_limited": noise_limited,
        }
        print(
            f"{backend:>10s}: telemetry {telemetry_overhead:+.1%}, "
            f"spool {spool_overhead:+.1%} "
            f"(noise floor ±{noise_floor:.1%}"
            f"{', noise-limited' if noise_limited else ''})"
        )
        telemetry_limit = (
            MAX_BOUNDED_OVERHEAD
            if resolvable > MAX_TELEMETRY_OVERHEAD
            else MAX_TELEMETRY_OVERHEAD
        )
        spool_limit = (
            MAX_BOUNDED_OVERHEAD if noise_limited else MAX_SPOOL_OVERHEAD
        )
        if telemetry_overhead > telemetry_limit:
            failures.append(
                f"{backend}: in-process telemetry overhead "
                f"{telemetry_overhead:.1%} > {telemetry_limit:.0%}"
            )
        if spool_overhead > spool_limit:
            failures.append(
                f"{backend}: spool streaming overhead "
                f"{spool_overhead:.1%} > {spool_limit:.0%}"
            )
    results["failures"] = failures
    output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"GUARD FAILED: {failure}", file=sys.stderr)
        return 1
    print("all telemetry-overhead guards passed")
    return 0


if __name__ == "__main__":
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_obs.json")
    raise SystemExit(run_benchmark(out))
