"""Campaign-orchestration benchmark: checkpoint overhead, resume, report.

Runs one fixed-budget ``(K, E)`` grid campaign (8 units at demo scale)
through :class:`repro.campaign.CampaignRunner` and times the properties
the subsystem exists for:

* **orchestration overhead** — campaign wall-clock vs a bare loop over
  the same units calling ``run_unit`` directly (no store, no manifest,
  no checksums).  Checkpointing must cost a bounded fraction of the
  training it protects.
* **resume no-op** — a second runner pass over the completed store must
  skip every unit by content key in a small fraction of the initial
  run's time (this is what makes kill-and-resume cheap).
* **report from artifacts** — regenerating the Fig. 5/6 energy grid
  from the store must likewise be a small fraction of the initial run
  (reports never re-train).
* **pooled backend** — the same campaign with ``backend_override="pool"``,
  now guarded: the persistent-worker pool must not fall below the
  bounded-overhead floor (and must beat sequential outright when the
  container has multiple cores).
* **parallel campaign** — the same grid with ``jobs=4`` through the
  longest-first unit scheduler, guarded the same CPU-aware way, plus a
  whole-store byte-identity check against the sequential run.

Speed guards are CPU-aware because the acceptance speedups are
physically impossible on a single core: with enough CPUs the full
thresholds apply, otherwise the bounded-overhead floor applies and the
JSON records ``cpu_limited: true``.  The measured pool break-even
crossover lives in ``BENCH_parallel.json`` (benchmarks/bench_parallel.py
sweeps model size and epochs); this file records the headline-config
guard verdicts.

Writes ``BENCH_campaign.json`` and exits non-zero if orchestration
overhead, resume, report, pooled, or parallel runs regress past their
thresholds, or if the parallel store's bytes diverge.

Not a pytest benchmark (no ``test_`` prefix — the timings are a
tracking artifact, not an assertion):

Run:  python benchmarks/bench_campaign.py [output.json]
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign import (
    ArtifactStore,
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    RunSpec,
)

N_SERVERS = 8
N_TRAIN = 800
N_TEST = 200
MAX_ROUNDS = 10
K_VALUES = (1, 2, 4, 8)
E_VALUES = (1, 4)
SEED = 0

# Guard thresholds (generous: CI boxes are noisy).
MAX_OVERHEAD_FRACTION = 0.50  # store+manifest cost vs bare training
MAX_RESUME_FRACTION = 0.20  # resume-noop time vs initial run
MAX_REPORT_FRACTION = 0.20  # report time vs initial run

# Parallel-mode guards: acceptance thresholds when the cores exist,
# bounded-overhead floor always.
PARALLEL_JOBS = 4
ACCEPT_PARALLEL_SPEEDUP = 2.0  # enforced when cpus >= PARALLEL_JOBS
ACCEPT_POOL_SPEEDUP = 1.0  # enforced when cpus >= 2
MIN_BOUNDED_SPEEDUP = 0.5  # always enforced


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _store_digest(root: Path) -> str:
    """One hash over every store file (lock excluded), path-keyed."""
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*")):
        if path.is_file() and path.name != ".lock":
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


def _make_campaign() -> CampaignSpec:
    base = RunSpec(
        name="bench",
        n_train=N_TRAIN,
        n_test=N_TEST,
        n_servers=N_SERVERS,
        max_rounds=MAX_ROUNDS,
        train_to_target=False,
        seed=SEED,
    )
    return CampaignSpec(
        name="bench", base=base, participants=K_VALUES, epochs=E_VALUES
    )


def _timed_campaign(
    campaign: CampaignSpec, root: Path, backend: str | None = None
) -> tuple[float, CampaignRunner]:
    runner = CampaignRunner(
        campaign, ArtifactStore(root), backend_override=backend
    )
    started = time.perf_counter()
    summary = runner.run()
    elapsed = time.perf_counter() - started
    assert summary.executed == len(campaign), "benchmark campaign incomplete"
    return elapsed, runner


def _timed_bare_loop(campaign: CampaignSpec, root: Path) -> float:
    """The same units, no store: isolates the orchestration overhead."""
    runner = CampaignRunner(campaign, ArtifactStore(root))
    started = time.perf_counter()
    for unit in runner.units:
        runner.run_unit(unit)
    return time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    out_path = Path(args[0]) if args else Path("BENCH_campaign.json")
    campaign = _make_campaign()
    workdir = Path(tempfile.mkdtemp(prefix="bench_campaign_"))
    try:
        # Warm the dataset/import caches so the first timed pass is fair.
        warm = CampaignRunner(campaign, ArtifactStore(workdir / "warm"))
        warm.run_unit(warm.units[0])

        campaign_s, _ = _timed_campaign(campaign, workdir / "sequential")
        bare_s = _timed_bare_loop(campaign, workdir / "bare")
        overhead = campaign_s / bare_s - 1.0
        print(
            f"campaign ({len(campaign)} units): {campaign_s:.3f}s; "
            f"bare unit loop: {bare_s:.3f}s; "
            f"orchestration overhead {100 * overhead:+.1f}%"
        )

        store = ArtifactStore(workdir / "sequential")
        started = time.perf_counter()
        resumed = CampaignRunner(campaign, store).run()
        resume_s = time.perf_counter() - started
        assert resumed.executed == 0 and resumed.skipped == len(campaign)
        print(
            f"resume no-op: {resume_s:.3f}s "
            f"({100 * resume_s / campaign_s:.1f}% of initial run)"
        )

        started = time.perf_counter()
        report = CampaignReport.from_store(store)
        grid = report.energy_grid()
        report.render()
        report_s = time.perf_counter() - started
        assert len(grid) == len(campaign)
        print(
            f"report from artifacts: {report_s:.3f}s "
            f"({100 * report_s / campaign_s:.1f}% of initial run)"
        )

        pool_s, _ = _timed_campaign(campaign, workdir / "pool", backend="pool")
        pool_speedup = campaign_s / pool_s
        print(f"pooled backend: {pool_s:.3f}s ({pool_speedup:.2f}x)")

        par_root = workdir / "parallel"
        runner = CampaignRunner(campaign, ArtifactStore(par_root))
        started = time.perf_counter()
        par_summary = runner.run(jobs=PARALLEL_JOBS)
        parallel_s = time.perf_counter() - started
        assert par_summary.executed == len(campaign)
        parallel_speedup = campaign_s / parallel_s
        parallel_identical = _store_digest(par_root) == _store_digest(
            workdir / "sequential"
        )
        print(
            f"parallel campaign (jobs={PARALLEL_JOBS}): {parallel_s:.3f}s "
            f"({parallel_speedup:.2f}x, byte-identical={parallel_identical})"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    cpus = _available_cpus()

    payload = {
        "benchmark": "campaign",
        "config": {
            "n_servers": N_SERVERS,
            "n_train": N_TRAIN,
            "n_test": N_TEST,
            "max_rounds": MAX_ROUNDS,
            "grid_k": list(K_VALUES),
            "grid_e": list(E_VALUES),
            "units": len(campaign),
            "seed": SEED,
        },
        "seconds": {
            "campaign_sequential": campaign_s,
            "bare_unit_loop": bare_s,
            "resume_noop": resume_s,
            "report_from_artifacts": report_s,
            "campaign_pooled": pool_s,
            "campaign_parallel": parallel_s,
        },
        "orchestration_overhead_fraction": overhead,
        "resume_fraction_of_run": resume_s / campaign_s,
        "report_fraction_of_run": report_s / campaign_s,
        "pool_speedup": pool_speedup,
        "parallel_jobs": PARALLEL_JOBS,
        "parallel_speedup": parallel_speedup,
        "parallel_store_byte_identical": parallel_identical,
        "available_cpus": cpus,
        "cpu_limited": cpus < PARALLEL_JOBS,
        "break_even_reference": "BENCH_parallel.json (break_even section)",
        "thresholds": {
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
            "max_resume_fraction": MAX_RESUME_FRACTION,
            "max_report_fraction": MAX_REPORT_FRACTION,
            "accept_parallel_speedup": ACCEPT_PARALLEL_SPEEDUP,
            "accept_pool_speedup": ACCEPT_POOL_SPEEDUP,
            "min_bounded_speedup": MIN_BOUNDED_SPEEDUP,
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    failures = []
    if overhead > MAX_OVERHEAD_FRACTION:
        failures.append(
            f"orchestration overhead {100 * overhead:.1f}% exceeds "
            f"{100 * MAX_OVERHEAD_FRACTION:.0f}%"
        )
    if resume_s / campaign_s > MAX_RESUME_FRACTION:
        failures.append(
            f"resume no-op took {100 * resume_s / campaign_s:.1f}% of the "
            f"initial run (max {100 * MAX_RESUME_FRACTION:.0f}%)"
        )
    if report_s / campaign_s > MAX_REPORT_FRACTION:
        failures.append(
            f"report took {100 * report_s / campaign_s:.1f}% of the "
            f"initial run (max {100 * MAX_REPORT_FRACTION:.0f}%)"
        )
    pool_threshold = (
        ACCEPT_POOL_SPEEDUP if cpus >= 2 else MIN_BOUNDED_SPEEDUP
    )
    if pool_speedup < pool_threshold:
        failures.append(
            f"pooled campaign {pool_speedup:.2f}x below "
            f"{pool_threshold:.2f}x threshold ({cpus} cpus)"
        )
    parallel_threshold = (
        ACCEPT_PARALLEL_SPEEDUP
        if cpus >= PARALLEL_JOBS
        else MIN_BOUNDED_SPEEDUP
    )
    if parallel_speedup < parallel_threshold:
        failures.append(
            f"parallel campaign {parallel_speedup:.2f}x below "
            f"{parallel_threshold:.2f}x threshold ({cpus} cpus)"
        )
    if not parallel_identical:
        failures.append(
            "parallel campaign store is not byte-identical to sequential"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
