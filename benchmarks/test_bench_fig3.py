"""Benchmark: regenerate Fig. 3 (two-round power trace of one Pi)."""

from __future__ import annotations

import pytest

from conftest import emit
from repro.experiments.fig3 import run_fig3
from repro.hardware.power_model import RoundPhase


@pytest.mark.paper
def test_bench_fig3_power_trace(benchmark) -> None:
    """Record and segment the metered trace; verify the four plateaus."""
    result = benchmark.pedantic(
        run_fig3, kwargs={"epochs": 10, "n_rounds": 2}, iterations=1, rounds=3
    )
    emit(result.report())
    # Shape criteria: the four phase powers within 50 mW of the paper's.
    assert result.max_power_error_w() < 0.05
    # Ordering as in Fig. 3: waiting < downloading < uploading < training.
    measured = result.measured_powers
    assert (
        measured[RoundPhase.WAITING]
        < measured[RoundPhase.DOWNLOADING]
        < measured[RoundPhase.UPLOADING]
        < measured[RoundPhase.TRAINING]
    )


@pytest.mark.paper
def test_bench_fig3_sampling_rate(benchmark) -> None:
    """The 1 kHz meter keeps the energy integral within 1% of truth."""
    result = run_fig3(epochs=10, n_rounds=1)

    def integrate() -> float:
        return result.trace.energy()

    energy = benchmark(integrate)
    assert energy > 0
