"""Extension bench: update compression vs the upload-energy term.

Compressing the uploaded model update shrinks ``e_k^U`` (and the upload
time), shifting the paper's communication/computation balance: ``B1``
falls, so the optimal ``E`` moves down and the total energy-to-target
drops — *if* the compression does not slow convergence more than it
saves.  This bench measures that trade on the simulated testbed.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.report import render_table
from repro.fl.compression import (
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
)
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.net.channel import ChannelConfig

N_SERVERS = 10
K = 2
EPOCHS = 20
TARGET = 0.80
MAX_ROUNDS = 150

# A slow uplink makes the upload term worth compressing (the default
# 20 Mbit/s WiFi makes e_U negligible for a 31 kB model).
SLOW_CHANNEL = ChannelConfig(rate_bps=250_000.0, latency_s=0.05)

SCHEMES = (
    ("dense (paper)", None),
    ("quantize 8-bit", UniformQuantizer(8)),
    ("quantize 4-bit", UniformQuantizer(4)),
    ("top-10% + EF", ErrorFeedback(TopKCompressor(0.10))),
)


@pytest.fixture(scope="module")
def prototype() -> HardwarePrototype:
    train, test = load_synthetic_mnist(n_train=1000, n_test=300, seed=0)
    config = PrototypeConfig(n_servers=N_SERVERS, channel=SLOW_CHANNEL, seed=0)
    return HardwarePrototype(train, test, config)


@pytest.mark.paper
def test_bench_compression_energy(benchmark, prototype) -> None:
    def sweep():
        results = {}
        for name, compressor in SCHEMES:
            if isinstance(compressor, ErrorFeedback):
                compressor.reset()
            results[name] = prototype.run(
                participants=K,
                epochs=EPOCHS,
                n_rounds=MAX_ROUNDS,
                target_accuracy=TARGET,
                update_compressor=compressor,
            )
        return results

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{result.total_energy_j:.2f}" if result.reached_target else "-",
                result.rounds,
                f"{result.wall_clock_s:.1f}",
                f"{result.history.final_accuracy():.3f}",
            ]
        )
    emit(
        render_table(
            ["upload scheme", "energy to target (J)", "T", "wall clock (s)", "final acc"],
            rows,
            title=(
                f"Extension — update compression on a slow uplink "
                f"(K={K}, E={EPOCHS}, target {TARGET})"
            ),
        )
    )

    dense = results["dense (paper)"]
    assert dense.reached_target
    # 8-bit quantisation is nearly lossless and must save energy on the
    # slow uplink.
    q8 = results["quantize 8-bit"]
    assert q8.reached_target
    assert q8.total_energy_j < dense.total_energy_j
    # It must not slow convergence materially (within ~30% extra rounds).
    assert q8.rounds <= 1.3 * dense.rounds + 1
