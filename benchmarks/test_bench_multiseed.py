"""Statistical robustness: the headline results across seeds.

The paper reports single traces.  This bench repeats the two headline
quantities over independent seeds (dataset draw + client sampling) and
reports mean ± 95% CI:

* the measured ``K*`` of Fig. 5 (should be 1 on every seed), and
* the measured energy saving of the optimized ``E`` vs the smallest
  convergent ``E`` (the Fig. 6 headline, ~50 %).
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.stats import repeat_over_seeds, summarize
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig

N_SERVERS = 10
TARGET = 0.78
MAX_ROUNDS = 150
SEEDS = (0, 1, 2)
K_VALUES = (1, 2, 5, 10)
E_VALUES = (5, 20, 60)
FIXED_E = 20


def _prototype(seed: int) -> HardwarePrototype:
    train, test = load_synthetic_mnist(n_train=1000, n_test=300, seed=seed)
    return HardwarePrototype(
        train, test, PrototypeConfig(n_servers=N_SERVERS, seed=seed)
    )


def _measured_k_star(seed: int) -> float:
    prototype = _prototype(seed)
    energies = {}
    for k in K_VALUES:
        run = prototype.run(
            participants=k,
            epochs=FIXED_E,
            n_rounds=MAX_ROUNDS,
            target_accuracy=TARGET,
        )
        if run.reached_target:
            energies[k] = run.total_energy_j
    if not energies:
        raise RuntimeError(f"seed {seed}: no K reached the target")
    return float(min(energies, key=energies.__getitem__))


def _measured_saving(seed: int) -> float:
    prototype = _prototype(seed)
    energies = {}
    for e in E_VALUES:
        run = prototype.run(
            participants=1,
            epochs=e,
            n_rounds=MAX_ROUNDS,
            target_accuracy=TARGET,
        )
        if run.reached_target:
            energies[e] = run.total_energy_j
    if len(energies) < 2:
        raise RuntimeError(f"seed {seed}: fewer than two E values converged")
    baseline = energies[min(energies)]
    best = min(energies.values())
    return 1.0 - best / baseline


@pytest.mark.paper
def test_bench_headline_stability(benchmark) -> None:
    def run_all():
        k_stars = [_measured_k_star(seed) for seed in SEEDS]
        savings = [_measured_saving(seed) for seed in SEEDS]
        return k_stars, savings

    k_stars, savings = benchmark.pedantic(run_all, iterations=1, rounds=1)

    k_summary = summarize(k_stars)
    s_summary = summarize(savings)
    emit(
        f"K* across {len(SEEDS)} seeds: {k_summary.formatted()}  "
        f"(per-seed: {k_stars})\n"
        f"Fig.-6 saving across seeds: {s_summary.formatted()}  "
        f"(paper headline: 49.8%)"
    )

    # K* = 1 on every seed (the Fig. 5 conclusion is not a seed artifact).
    assert all(k == 1.0 for k in k_stars)
    # The saving is consistently substantial.
    assert s_summary.mean > 0.25
    assert min(savings) > 0.10


@pytest.mark.paper
def test_bench_repeat_over_seeds_helper(benchmark) -> None:
    """The stats helper itself, on a cheap deterministic experiment."""
    summary = benchmark(
        repeat_over_seeds, lambda seed: float(seed % 3), seeds=range(12)
    )
    assert summary.n == 12
    assert summary.ci_low <= summary.mean <= summary.ci_high
