"""What the 49.8 % saving means operationally: sensor-battery lifetime.

The paper motivates EE-FEI with the sustainability of IoT networks,
whose sensors run on primary batteries.  This example converts the
energy-optimal schedule into operational terms: how many training tasks
a sensor cluster's batteries support, and how many extra months of
lifetime the optimized schedule buys compared with the naive policy.

Run:  python examples/battery_lifetime.py
"""

from __future__ import annotations

from repro.core import ConvergenceBound, EnergyParams, EnergyPlanner, fixed_policy
from repro.experiments.report import render_table
from repro.iot.battery import BatteryConfig, FleetLifetimeModel
from repro.iot.collision import SlottedAlohaModel
from repro.iot.network import IoTCluster
from repro.iot.device import IoTDevice

# ----------------------------------------------------------------------
# 1. The IoT cluster feeding one edge server: 30 NB-IoT-class sensors
#    sharing an unlicensed-band cell.
# ----------------------------------------------------------------------
N_DEVICES = 30
cluster = IoTCluster(
    edge_server_id=0,
    devices=[IoTDevice(device_id=i, sample_bytes=785) for i in range(N_DEVICES)],
    contention=SlottedAlohaModel(n_devices=N_DEVICES, transmit_probability=0.01),
)
print(f"Cluster of {N_DEVICES} sensors; per-sample uplink energy "
      f"rho = {cluster.rho:.3f} J (incl. collision retries, "
      f"success p = {cluster.success_probability:.3f})")
print()

# ----------------------------------------------------------------------
# 2. Plan a training task with EE-FEI vs the naive policy.
#    rho now comes from the *actual* IoT substrate above.
# ----------------------------------------------------------------------
N_SAMPLES = 3000
energy = EnergyParams(rho=cluster.rho, e_upload=2.0, n_samples=N_SAMPLES)
planner = EnergyPlanner(
    bound=ConvergenceBound(a0=5.0, a1=0.02, a2=1e-4),
    energy=energy,
    n_servers=20,
)
EPSILON = 0.05
plan = planner.plan(EPSILON)
objective = planner.objective(EPSILON)
naive = fixed_policy(objective, 1, 1, name="naive")

# IoT energy per task *for this cluster*: rho * n_k per round in which
# its edge server participates.  With uniform random selection a cluster
# serves in K/N of the T rounds.
def cluster_task_energy(participants: int, rounds: int) -> float:
    served_rounds = rounds * participants / 20
    return cluster.rho * N_SAMPLES * served_rounds

optimized_task_j = cluster_task_energy(plan.participants, plan.rounds)
naive_task_j = cluster_task_energy(naive.participants, naive.rounds)

print(f"EE-FEI plan : K={plan.participants}, E={plan.epochs}, T={plan.rounds} "
      f"-> {optimized_task_j:.1f} J of uplink per task for this cluster")
print(f"naive plan  : K=1, E=1, T={naive.rounds} "
      f"-> {naive_task_j:.1f} J of uplink per task")
print()

# ----------------------------------------------------------------------
# 3. Battery lifetime under a recurring training workload.
# ----------------------------------------------------------------------
battery = BatteryConfig()  # two-AA lithium sensor node
TASKS_PER_DAY = 4.0

rows = []
for name, per_task in (("EE-FEI", optimized_task_j), ("naive", naive_task_j)):
    fleet = FleetLifetimeModel(
        n_devices=N_DEVICES, per_task_cluster_energy_j=per_task, battery=battery
    )
    rows.append(
        [
            name,
            f"{per_task:.1f}",
            fleet.tasks_until_depletion(),
            f"{fleet.lifetime_days(TASKS_PER_DAY):.0f}",
        ]
    )
print(render_table(
    ["policy", "J/task (cluster)", "tasks per charge", f"days @ {TASKS_PER_DAY:g} tasks/day"],
    rows,
    title="Battery lifetime of the sensor cluster",
))
print()
ratio = naive_task_j / optimized_task_j
print(
    f"The optimized schedule stretches each battery charge {ratio:.1f}x "
    "further — the operational meaning of the paper's energy savings."
)
