"""Quickstart: plan an energy-optimal FL schedule in a few lines.

This example instantiates the EE-FEI optimizer directly from the paper's
measured constants (no simulation needed) and asks it for the
energy-optimal ``(K, E, T)`` schedule at a target accuracy, comparing it
against the naive ``(K=1, E=1)`` baseline and exhaustive grid search.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    ConvergenceBound,
    EnergyParams,
    EnergyPlanner,
    fixed_policy,
    grid_search,
)

# ----------------------------------------------------------------------
# 1. Describe the system.
#
# Energy constants: the paper's Raspberry Pi fit (c0, c1 are defaults),
# a per-sample IoT uplink cost rho, and a per-round model-upload cost.
# ----------------------------------------------------------------------
energy = EnergyParams(
    rho=1e-3,        # J per uploaded data sample (IoT uplink)
    e_upload=2.0,    # J per model upload (edge server -> coordinator)
    n_samples=3000,  # n_k: samples per edge server (paper: 60000/20)
)

# Convergence constants (A0, A1, A2) of the Khaled et al. bound.  On a
# real deployment these come from repro.core.calibration; here we use
# representative values with a visible variance term (A1) and drift term
# (A2) so both trade-offs are active.
bound = ConvergenceBound(a0=5.0, a1=0.02, a2=1e-4)

planner = EnergyPlanner(bound=bound, energy=energy, n_servers=20)

# ----------------------------------------------------------------------
# 2. Ask for the optimal schedule at a target loss gap.
# ----------------------------------------------------------------------
TARGET_EPSILON = 0.05

plan = planner.plan(epsilon=TARGET_EPSILON)
print("=" * 64)
print("EE-FEI quickstart")
print("=" * 64)
print(plan.describe())
print()

# ----------------------------------------------------------------------
# 3. Compare against the baselines the paper uses.
# ----------------------------------------------------------------------
objective = planner.objective(TARGET_EPSILON)
baseline = fixed_policy(objective, 1, 1, name="naive (K=1, E=1)")
exhaustive = grid_search(objective, max_epochs=500)

print(f"{'policy':<24} {'K':>3} {'E':>4} {'T':>5} {'energy (J)':>12}")
for policy in (baseline, exhaustive):
    print(
        f"{policy.name:<24} {policy.participants:>3} {policy.epochs:>4} "
        f"{policy.rounds:>5} {policy.energy:>12.3f}"
    )
print(
    f"{'EE-FEI (ACS)':<24} {plan.participants:>3} {plan.epochs:>4} "
    f"{plan.rounds:>5} {plan.predicted_energy:>12.3f}"
)
print()
print(
    "ACS used "
    f"{plan.acs.n_iterations} sweeps vs {exhaustive.evaluations} objective "
    "evaluations for exhaustive search, for the same optimum."
)
assert abs(plan.predicted_energy - exhaustive.energy) < 1e-9
