"""Extension study: does K* = 1 survive non-iid data?

The paper finds the optimal participation level is ``K* = 1`` and
attributes it to the iid allocation: "the gradients calculated using
datasets at different edge servers should show similar statistic
features".  This example stress-tests that explanation by repeating the
Fig. 5 energy-vs-K sweep under an extreme label-skew partition (one
label shard per client).

Findings this study demonstrates (deterministic for the default seed):

* On pure *energy*, ``K* = 1`` is more robust than the paper's iid
  explanation suggests — it survives even one-class-per-client skew,
  because energy scales ~linearly with K while skew only inflates the
  required rounds sub-linearly.
* But the *margin* collapses (under iid, K = N costs several times
  K = 1; under skew the curves nearly meet), and the required number of
  rounds at K = 1 balloons.  Under a latency constraint (a deadline on
  T, natural for edge systems), small K becomes infeasible and the
  energy-optimal feasible K jumps upward.

Run:  python examples/noniid_study.py        (~1-2 minutes)
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.report import render_table
from repro.fl.partition import partition_by_shards, partition_iid
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig, PrototypeResult

N_SERVERS = 10
K_VALUES = (1, 2, 4, 10)
EPOCHS = 20
TARGET = 0.75
MAX_ROUNDS = 200
ROUND_DEADLINE = 30  # latency constraint for the second analysis


def sweep(prototype: HardwarePrototype) -> dict[int, PrototypeResult]:
    return {
        k: prototype.run(
            participants=k,
            epochs=EPOCHS,
            n_rounds=MAX_ROUNDS,
            target_accuracy=TARGET,
        )
        for k in K_VALUES
    }


def argmin_energy(
    runs: dict[int, PrototypeResult], max_rounds: int | None = None
) -> int | None:
    feasible = {
        k: r.total_energy_j
        for k, r in runs.items()
        if r.reached_target and (max_rounds is None or r.rounds <= max_rounds)
    }
    return min(feasible, key=feasible.__getitem__) if feasible else None


def main() -> None:
    train, test = load_synthetic_mnist(n_train=1500, n_test=400, seed=0)
    config = PrototypeConfig(n_servers=N_SERVERS, seed=0)
    rng = np.random.default_rng(0)

    iid_proto = HardwarePrototype(
        train, test, config, partitions=partition_iid(train, N_SERVERS, rng)
    )
    # One shard per client: every edge server sees essentially one class.
    skew_proto = HardwarePrototype(
        train,
        test,
        config,
        partitions=partition_by_shards(train, N_SERVERS, 1, rng),
    )

    print("=" * 72)
    print(f"Energy and rounds to accuracy {TARGET} vs K: iid vs 1-shard skew")
    print("=" * 72)
    iid_runs = sweep(iid_proto)
    skew_runs = sweep(skew_proto)

    rows = []
    for k in K_VALUES:
        iid, skew = iid_runs[k], skew_runs[k]
        rows.append(
            [
                k,
                f"{iid.total_energy_j:.1f}" if iid.reached_target else "-",
                iid.rounds if iid.reached_target else "-",
                f"{skew.total_energy_j:.1f}" if skew.reached_target else "-",
                skew.rounds if skew.reached_target else "-",
            ]
        )
    print(
        render_table(
            ["K", "iid energy (J)", "iid T", "skew energy (J)", "skew T"], rows
        )
    )
    print()

    print(f"K* on energy alone : iid = {argmin_energy(iid_runs)}, "
          f"skew = {argmin_energy(skew_runs)}")
    print(
        f"K* with T <= {ROUND_DEADLINE:>3}    : "
        f"iid = {argmin_energy(iid_runs, ROUND_DEADLINE)}, "
        f"skew = {argmin_energy(skew_runs, ROUND_DEADLINE)}"
    )
    print()

    iid_ratio = iid_runs[max(K_VALUES)].total_energy_j / iid_runs[1].total_energy_j
    skew_ratio = (
        skew_runs[max(K_VALUES)].total_energy_j / skew_runs[1].total_energy_j
    )
    print(
        f"Energy penalty of full participation (K={max(K_VALUES)} vs K=1): "
        f"{iid_ratio:.2f}x under iid, {skew_ratio:.2f}x under skew."
    )
    print()
    print(
        "Interpretation: on energy alone K* = 1 survives even extreme\n"
        "skew — energy grows ~linearly in K while skew inflates the\n"
        "required rounds sub-linearly — so the paper's conclusion is\n"
        "stronger than its iid-based explanation implies.  The cost is\n"
        "latency: at K = 1 the skewed system needs many times more\n"
        "rounds, and under a round deadline the optimal feasible K\n"
        "shifts to full participation."
    )


if __name__ == "__main__":
    main()
