"""End-to-end energy planning: calibrate, optimize, validate.

The full EE-FEI workflow on the simulated 20-server testbed:

1. calibrate the energy constants (c0, c1, e^U) and the convergence
   constants (A0, A1, A2) from pilot runs;
2. solve the biconvex program with ACS for the optimal ``(K, E, T)``;
3. *validate* the plan by actually training with it on the testbed and
   measuring the energy, against a naive policy.

Run:  python examples/energy_planning.py        (~1 minute)
"""

from __future__ import annotations

from repro.experiments.calibrate import calibrate_system
from repro.experiments.config import TEST_SCALE
from repro.experiments.report import render_table

# ----------------------------------------------------------------------
# 1. Calibration (runs pilot FL jobs on the simulated testbed).
# ----------------------------------------------------------------------
print("=" * 64)
print("Step 1 — calibrate from the testbed")
print("=" * 64)
system = calibrate_system(TEST_SCALE)
print(f"energy constants : c0={system.energy_params.c0:.3e} J/(sample*epoch), "
      f"c1={system.energy_params.c1:.3e} J/epoch, "
      f"e_upload={system.energy_params.e_upload:.4f} J")
print(f"convergence bound: A0={system.bound.a0:.3f}, "
      f"A1={system.bound.a1:.4f}, A2={system.bound.a2:.2e}")
print(f"loss-gap target  : epsilon={system.epsilon:.4f} "
      f"(accuracy {TEST_SCALE.target_accuracy})")
print()

# ----------------------------------------------------------------------
# 2. Optimize with ACS.
# ----------------------------------------------------------------------
print("=" * 64)
print("Step 2 — solve for the optimal schedule (Algorithm 1)")
print("=" * 64)
plan = system.planner().plan(system.epsilon)
print(plan.describe())
iterate_rows = [
    [it.iteration, f"{it.participants:.2f}", f"{it.epochs:.2f}",
     f"{it.objective_value:.4f}"]
    for it in plan.acs.iterates
]
print(render_table(["sweep", "K", "E", "objective (J)"], iterate_rows,
                   title="ACS iterate history"))
print()

# ----------------------------------------------------------------------
# 3. Validate: run the plan for real and compare with a naive policy.
# ----------------------------------------------------------------------
print("=" * 64)
print("Step 3 — validate on the testbed")
print("=" * 64)
optimal_run = system.prototype.run(
    participants=plan.participants,
    epochs=plan.epochs,
    n_rounds=TEST_SCALE.max_rounds,
    target_accuracy=TEST_SCALE.target_accuracy,
)
naive_run = system.prototype.run(
    participants=TEST_SCALE.n_servers,  # everyone participates...
    epochs=5,                           # ...with a few local epochs
    n_rounds=TEST_SCALE.max_rounds,
    target_accuracy=TEST_SCALE.target_accuracy,
)

rows = []
for name, run in (("EE-FEI plan", optimal_run), ("naive (K=N, E=5)", naive_run)):
    rows.append(
        [
            name,
            run.participants,
            run.epochs,
            run.rounds,
            f"{run.total_energy_j:.2f}",
            f"{run.wall_clock_s:.1f}",
            run.reached_target,
        ]
    )
print(render_table(
    ["policy", "K", "E", "T", "energy (J)", "wall clock (s)", "hit target"],
    rows,
))
if naive_run.reached_target and optimal_run.reached_target:
    saving = 1.0 - optimal_run.total_energy_j / naive_run.total_energy_j
    print()
    print(f"Measured saving of the optimized schedule: {100 * saving:.1f}%")
print()
print(
    f"Note: the bound predicted T = {plan.rounds} for the plan; the testbed "
    f"needed T = {optimal_run.rounds}.  The bound is an upper-bound *model* "
    "fitted at moderate E, so extreme-E plans under-predict rounds — the "
    "plan still wins by a wide margin, which is the paper's point."
)
