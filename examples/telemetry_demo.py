"""Telemetry demo: observe a full prototype run end to end.

This example attaches a :class:`repro.obs.Observer` to the hardware
prototype, runs a short FedAvg schedule on the simulated Raspberry Pi
testbed, and then inspects everything the observability layer captured:

* the structured event log (``round.start``, ``client.train``,
  ``client.upload``, ``server.aggregate``, ``round.end``,
  ``prototype.round``, ``sim.event``),
* the metrics registry (gradient-step / upload counters, per-phase
  energy counters mirroring the paper's Fig. 3 breakdown, round-duration
  histograms),
* the span tree built by the tracer, and
* the hot-path timers (enabled via ``profile_hot_paths=True``).

Finally the whole log is dumped to JSONL and re-loaded to show the
offline-analysis round trip.

Run:  python examples/telemetry_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.obs import EventLog, Observer

# ----------------------------------------------------------------------
# 1. Build an observed prototype and run a short schedule.
# ----------------------------------------------------------------------
observer = Observer(profile_hot_paths=True)

train = generate_synthetic_mnist(480, seed=7)
test = generate_synthetic_mnist(120, seed=8)
prototype = HardwarePrototype(
    train, test, PrototypeConfig(n_servers=5), observer=observer
)
result = prototype.run(participants=2, epochs=3, n_rounds=6)

print("=" * 64)
print("Observed prototype run")
print("=" * 64)
print(
    f"rounds={result.rounds}  "
    f"accuracy={result.history.summary()['final_accuracy']:.3f}  "
    f"energy={result.total_energy_j:.3f} J  "
    f"wall-clock={result.wall_clock_s:.1f} simulated s"
)

# ----------------------------------------------------------------------
# 2. The event log: one structured record per interesting thing.
# ----------------------------------------------------------------------
print()
print("Event counts by category:")
for category, count in sorted(observer.events.categories().items()):
    print(f"  {category:<20} {count}")

first_round = observer.events.filter("round.end")[0]
print()
print(
    "First round.end payload: "
    f"loss={first_round.fields['train_loss']:.4f} "
    f"participants={first_round.fields['participants']}"
)

# ----------------------------------------------------------------------
# 3. The metrics registry reconciles with the run's own accounting.
# ----------------------------------------------------------------------
print()
print("Metrics:")
print(observer.metrics.render_text())

total_metered = observer.metrics.sum_values("energy.joules")
assert abs(total_metered - result.total_energy_j) < 1e-9
print()
print(
    f"per-phase energy counters sum to {total_metered:.3f} J == "
    "prototype total (paper Fig. 3 decomposition)"
)

# ----------------------------------------------------------------------
# 4. Spans and hot-path timers.
# ----------------------------------------------------------------------
print()
print("Span tree (first two rounds):")
for root in observer.tracer.roots[:2]:
    for span in root.iter_spans():
        print(f"  {span.name}: {span.duration_s * 1e3:.2f} ms")

train_timer = observer.metrics.histogram("profile.client_train_s")
print(
    f"hot path: {train_timer.count} client-training timings, "
    f"mean {train_timer.mean * 1e3:.2f} ms"
)

# ----------------------------------------------------------------------
# 5. JSONL round trip for offline analysis.
# ----------------------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "telemetry.jsonl"
    observer.dump_jsonl(path)
    restored = EventLog.load_jsonl(path)
    print()
    print(f"dumped {len(restored)} JSONL lines to {path.name} and re-loaded")
    assert restored[-1].category == "metrics.snapshot"
