"""Analyse a raw power capture: from waveform to training parameters.

The paper's measurement study reads phase durations off an oscilloscope
trace by hand.  This example shows the automated path a practitioner
with a real KM001C would use:

1. record a multi-round capture (here: from the simulated testbed),
2. save/load it through the meter's CSV format,
3. segment it into rounds and phases,
4. invert the Table-I timing law to recover how many local epochs the
   device was actually running.

Run:  python examples/trace_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.experiments.report import render_table
from repro.hardware.analysis import analyze_trace
from repro.hardware.power_model import RoundPhase
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.hardware.trace_io import load_trace_csv, save_trace_csv

EPOCHS = 25  # ground truth the analysis should recover
N_ROUNDS = 3

# ----------------------------------------------------------------------
# 1-2. Record a capture and round-trip it through the CSV log format.
# ----------------------------------------------------------------------
train = generate_synthetic_mnist(800, seed=0)
test = generate_synthetic_mnist(200, seed=1)
prototype = HardwarePrototype(train, test, PrototypeConfig(n_servers=4))
trace = prototype.record_power_trace(0, epochs=EPOCHS, n_rounds=N_ROUNDS)

with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "capture.csv"
    save_trace_csv(trace, path)
    print(f"capture: {len(trace)} samples @ {trace.sample_rate:.0f} Hz "
          f"-> {path.stat().st_size} bytes of CSV")
    trace = load_trace_csv(path)

# ----------------------------------------------------------------------
# 3. Segment into rounds and phases.
# ----------------------------------------------------------------------
analysis = analyze_trace(trace)
print(f"recovered {analysis.n_rounds} rounds\n")

rows = []
for round_ in analysis.rounds:
    for estimate in round_.phases:
        rows.append(
            [
                round_.index,
                estimate.phase.value,
                f"{estimate.duration_s:.3f}",
                f"{estimate.mean_power_w:.3f}",
                f"{estimate.energy_j:.3f}",
            ]
        )
print(render_table(
    ["round", "phase", "duration (s)", "power (W)", "energy (J)"],
    rows,
    title="Recovered round structure",
))
print()

# ----------------------------------------------------------------------
# 4. Invert the timing law.
# ----------------------------------------------------------------------
n_k = prototype.samples_per_server
estimated = analysis.estimate_epochs(n_k)
print(f"training phase averages "
      f"{analysis.mean_phase_duration(RoundPhase.TRAINING):.3f} s; "
      f"with n_k = {n_k} the timing law gives E ~= {estimated:.1f} "
      f"(ground truth: {EPOCHS})")
print(f"mean active energy per round: {analysis.mean_round_energy():.3f} J")
