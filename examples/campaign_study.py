"""A resumable (K, E) energy sweep, end to end, via the campaign API.

The paper's Figs. 5-6 are one campaign: a grid over the number of
participating edge servers ``K`` and local epochs ``E``, each cell
measuring the energy a 20-Pi testbed spends reaching the accuracy
target.  This study declares that grid as a :class:`repro.CampaignSpec`,
executes it through :class:`repro.CampaignRunner` with per-unit
checkpointing, *interrupts it on purpose halfway*, resumes it from the
artifact store, and finally regenerates the energy grid and the
best-(K, E) headline purely from stored artifacts — no re-training.

Run:  python examples/campaign_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ArtifactStore,
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    RunSpec,
)

# ----------------------------------------------------------------------
# 1. Declare the sweep: a reduced Fig. 5/6 grid, fixed round budget so
#    every cell is comparable (and the campaign is deterministic).
# ----------------------------------------------------------------------
base = RunSpec(
    name="study",
    n_train=1600,
    n_test=400,
    n_servers=16,
    max_rounds=12,
    train_to_target=False,
    seed=0,
)
campaign = CampaignSpec(
    name="study",
    base=base,
    participants=(1, 2, 4, 8, 16),
    epochs=(1, 5, 20),
)
print(
    f"campaign {campaign.name!r}: {len(campaign)} units "
    f"(K x E = {campaign.axis_sizes()['participants']} x "
    f"{campaign.axis_sizes()['epochs']}), key {campaign.key()}"
)

workdir = Path(tempfile.mkdtemp(prefix="campaign_study_"))
store = ArtifactStore(workdir / "artifacts")

# ----------------------------------------------------------------------
# 2. Run half of it, then "crash".  Every completed unit is already
#    checkpointed (files first, manifest last, checksummed).
# ----------------------------------------------------------------------
half = len(campaign) // 2
summary = CampaignRunner(campaign, store).run(max_units=half)
print(
    f"first pass: {summary.executed} units trained, then interrupted "
    f"({len(store.completed_keys())}/{len(campaign)} checkpointed)"
)

# ----------------------------------------------------------------------
# 3. Resume with a brand-new runner (as a new process would).  Completed
#    units are recognised by content-hashed spec key and skipped; the
#    rest run on fresh, independently seeded testbeds, so the artifacts
#    are bit-identical to an uninterrupted run.
# ----------------------------------------------------------------------
summary = CampaignRunner(campaign, store).run()
print(
    f"resume: {summary.executed} units trained, "
    f"{summary.skipped} skipped from artifacts"
)
problems = store.verify()
print(f"store integrity: {'OK' if not problems else problems}")

# ----------------------------------------------------------------------
# 4. Report purely from the store: the Fig. 5/6 grid, the best plan,
#    and the saving against the naive (K=1, E=1) baseline.
# ----------------------------------------------------------------------
report = CampaignReport.from_store(store)
print()
print(report.render())
print()
k_star, e_star = report.best_plan()
print(
    f"=> sweep verdict: run K={k_star}, E={e_star}; "
    f"artifacts live in {store.root}"
)
