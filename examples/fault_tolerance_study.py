"""Graceful degradation under faults: the cost of surviving failures.

The paper's 20-Pi prototype is failure-free — its 49.8 % energy saving
assumes every selected server trains, uploads once, and is aggregated.
This study injects a controlled fault mix (crashes, stragglers, bursty
WiFi links) into the simulated testbed at increasing intensity and
measures what resilience costs: extra rounds to the target accuracy,
retry/backoff energy, futile work of failed clients, and how often the
round quorum is missed (degraded rounds that carry the model forward).

Run:  python examples/fault_tolerance_study.py
"""

from __future__ import annotations

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.faults import FaultPlan, ResilienceConfig, RetryPolicy, make_demo_plan
from repro.fl.sgd import SGDConfig
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.experiments.report import render_table
from repro.obs import Observer

# ----------------------------------------------------------------------
# 1. The testbed: 16 simulated Pis on synthetic MNIST, the tiny scale.
# ----------------------------------------------------------------------
N_SERVERS = 16
TARGET_ACCURACY = 0.85
PARTICIPANTS = 4
EPOCHS = 20
MAX_ROUNDS = 80

train = generate_synthetic_mnist(1600, seed=0)
test = generate_synthetic_mnist(400, seed=1)


def build_prototype(observer: Observer | None = None) -> HardwarePrototype:
    config = PrototypeConfig(
        n_servers=N_SERVERS,
        sgd=SGDConfig(learning_rate=0.05, decay=0.995),
        seed=0,
    )
    return HardwarePrototype(train, test, config, observer=observer)


# ----------------------------------------------------------------------
# 2. Fault intensities: fractions of the fleet crashing / slowed /
#    on bursty links.  "none" is the paper's failure-free assumption.
# ----------------------------------------------------------------------
INTENSITIES: dict[str, FaultPlan | None] = {
    "none": None,
    "mild": make_demo_plan(
        N_SERVERS, seed=7, crash_fraction=0.1, straggler_fraction=0.1,
        loss_fraction=0.15, loss_bad=0.7,
    ),
    "moderate": make_demo_plan(
        N_SERVERS, seed=7, crash_fraction=0.2, straggler_fraction=0.2,
        loss_fraction=0.25, loss_bad=0.85,
    ),
    "harsh": make_demo_plan(
        N_SERVERS, seed=7, crash_fraction=0.3, straggler_fraction=0.25,
        loss_fraction=0.35, loss_bad=0.95,
    ),
}

RESILIENCE = ResilienceConfig(
    retry=RetryPolicy(max_retries=3, base_backoff_s=0.1, max_backoff_s=2.0),
    upload_timeout_s=30.0,
    min_quorum=max(1, PARTICIPANTS // 2),
)

rows = []
baseline_energy = None
for label, plan in INTENSITIES.items():
    observer = Observer()
    prototype = build_prototype(observer)
    result = prototype.run(
        participants=PARTICIPANTS,
        epochs=EPOCHS,
        n_rounds=MAX_ROUNDS,
        target_accuracy=TARGET_ACCURACY,
        fault_plan=plan,
        resilience=RESILIENCE if plan is not None else None,
    )
    if baseline_energy is None:
        baseline_energy = result.total_energy_j
    reached = result.history.rounds_to_accuracy(TARGET_ACCURACY)
    try:
        retries = observer.metrics.sum_values("fl.retries")
    except KeyError:  # no upload ever needed a retry at this intensity
        retries = 0.0
    rows.append(
        [
            label,
            len(plan) if plan is not None else 0,
            reached if reached is not None else f">{result.rounds}",
            result.degraded_rounds,
            int(retries),
            f"{result.total_energy_j:.2f}",
            f"{100 * result.wasted_fraction:.1f}%",
            f"{100 * (result.total_energy_j / baseline_energy - 1):+.1f}%",
            f"{result.history.final_accuracy():.3f}",
        ]
    )

print(
    render_table(
        [
            "intensity",
            "faults",
            "T@target",
            "degraded",
            "retries",
            "energy (J)",
            "wasted %",
            "vs none",
            "final acc",
        ],
        rows,
        title=(
            f"Degradation study: {N_SERVERS} servers, K={PARTICIPANTS}, "
            f"E={EPOCHS}, target {TARGET_ACCURACY:.0%}, "
            f"quorum {RESILIENCE.min_quorum}"
        ),
    )
)
print()
print(
    "Reading: the paper's 49.8 % saving is measured in the 'none' row's\n"
    "failure-free world.  Each step up in fault intensity buys the same\n"
    "target accuracy at a growing energy premium — the 'vs none' column\n"
    "is the resilience tax on the energy objective."
)
