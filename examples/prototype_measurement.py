"""Reproduce the paper's measurement study on the simulated testbed.

Walks through §VI-A/B: meter one edge server over two rounds of global
coordination (Fig. 3), regenerate the local-training duration grid
(Table I), and least-squares fit the energy constants (c0, c1).

Run:  python examples/prototype_measurement.py
"""

from __future__ import annotations

from repro.core import constants
from repro.experiments.fig3 import run_fig3
from repro.experiments.report import render_table
from repro.experiments.table1 import run_table1

# ----------------------------------------------------------------------
# 1. Fig. 3: the four-plateau power pattern of one Raspberry Pi.
# ----------------------------------------------------------------------
print("=" * 64)
print("Step 1 — meter one edge server over two rounds (Fig. 3)")
print("=" * 64)
fig3 = run_fig3(epochs=10, n_rounds=2)
print(fig3.report())
print()

trace = fig3.trace
print(
    f"The KM001C-style meter sampled {len(trace)} points at "
    f"{trace.sample_rate:.0f} Hz; integrating gives {trace.energy():.3f} J "
    f"over {trace.duration:.3f} s ({trace.mean_power():.3f} W average)."
)
print()

# Raw plateau segmentation, the way the paper reads its scope traces.
plateaus = trace.detect_plateaus(tolerance_w=0.3)
rows = [
    [f"{start:.3f}", f"{end:.3f}", f"{power:.3f}"]
    for start, end, power in plateaus
]
print(render_table(["start (s)", "end (s)", "mean power (W)"], rows,
                   title="Detected power plateaus"))
print()

# ----------------------------------------------------------------------
# 2. Table I: duration of the local-training step over (E, n_k).
# ----------------------------------------------------------------------
print("=" * 64)
print("Step 2 — regenerate Table I and fit (c0, c1)")
print("=" * 64)
table1 = run_table1()
print(table1.report())
print()
print(
    f"Worst relative deviation from the paper's measurements: "
    f"{100 * table1.max_relative_error():.1f}%"
)
print(
    f"Paper's fitted constants: c0 = {constants.C0_JOULES_PER_SAMPLE_EPOCH:.2e}, "
    f"c1 = {constants.C1_JOULES_PER_EPOCH:.2e}"
)
