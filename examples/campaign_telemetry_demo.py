"""Cross-process campaign telemetry: spools, live status, exact totals.

A ``--jobs N`` campaign scatters training over scheduler subprocesses
(and, with the ``pool`` backend, over nested engine workers), so no
single process's :class:`repro.Observer` sees the whole run.  This demo
shows the pipeline that reunifies them:

1. run a small parallel ``(K, E)`` campaign with telemetry on — every
   unit streams events/metrics to an append-only spool file, and a
   parent-side collector tails the spools live into one observer;
2. read the campaign's live status mid-flight the way
   ``repro campaign status --follow`` does — per-unit states, round
   progress, and an ETA from the scheduler's cost model;
3. fold the stored per-unit telemetry into exact campaign-wide totals
   (deterministic: the same numbers for any worker count) and print the
   aggregated metrics table;
4. export the merged registry as OpenMetrics text and the span forest
   as a Chrome trace, the formats Prometheus/Perfetto already speak.

Run:  python examples/campaign_telemetry_demo.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    ArtifactStore,
    CampaignRunner,
    CampaignSpec,
    CampaignStatus,
    Observer,
    RunSpec,
    campaign_telemetry,
)
from repro.obs import to_chrome_trace, to_openmetrics

# ----------------------------------------------------------------------
# 1. Declare a small telemetry-on campaign and run it with jobs=2.
# ----------------------------------------------------------------------
base = RunSpec(
    name="demo",
    n_train=640,
    n_test=160,
    n_servers=8,
    max_rounds=4,
    train_to_target=False,
    telemetry=True,  # every unit gets a SpoolObserver
    seed=0,
)
campaign = CampaignSpec(
    name="telemetry-demo", base=base, participants=(2, 4), epochs=(1, 2)
)

workdir = Path(tempfile.mkdtemp(prefix="campaign-telemetry-"))
store = ArtifactStore(workdir / "store")
observer = Observer()  # the parent-side merge target

print(f"running {len(campaign)} units with jobs=2 -> {store.root}")
runner = CampaignRunner(campaign, store, observer=observer)
summary = runner.run(jobs=2)
print(f"executed {summary.executed} units\n")

# ----------------------------------------------------------------------
# 2. Status, the way `repro campaign status` reads it: manifest + spools.
#    (After the run everything is done; mid-run the same call shows
#    running units with live round progress and a throughput-based ETA.)
# ----------------------------------------------------------------------
status = CampaignStatus.collect(store)
print(status.render())
print()

# ----------------------------------------------------------------------
# 3. Campaign-wide totals, folded from the stored per-unit telemetry in
#    sorted-key order with exact summation — bit-identical for any
#    worker count, and reconciled against the recorded results.
# ----------------------------------------------------------------------
telemetry = campaign_telemetry(store)
print(telemetry.render_text())
problems = telemetry.reconcile()
print(f"reconciliation: {'clean' if not problems else problems}")
print(
    f"collector merged the same stream live: "
    f"{observer.metrics.sum_values('energy.joules'):.6f} J "
    f"across {len(observer.events)} parent events\n"
)

# ----------------------------------------------------------------------
# 4. Standard-format exports from the merged parent observer.
# ----------------------------------------------------------------------
openmetrics = to_openmetrics(observer.metrics)
trace = to_chrome_trace(observer.tracer)
(workdir / "metrics.txt").write_text(openmetrics)
print(f"OpenMetrics exposition: {len(openmetrics.splitlines())} lines, e.g.")
for line in openmetrics.splitlines()[:4]:
    print(f"  {line}")
(workdir / "trace.json").write_text(json.dumps(trace, indent=1))
print(
    f"Chrome trace: {len(trace['traceEvents'])} events "
    f"(load {workdir / 'trace.json'} in chrome://tracing or Perfetto)"
)
