"""Campaign execution: run every unit once, checkpoint, resume.

:class:`CampaignRunner` turns a :class:`~repro.campaign.spec.CampaignSpec`
into completed artifacts.  The execution contract that makes campaigns
interruptible is *unit independence*: every unit is executed on a
freshly built :class:`~repro.hardware.prototype.HardwarePrototype`
(fresh devices, fresh clients, fresh RNG streams derived only from the
unit's own seed), so a unit's results depend on nothing but its
:class:`~repro.campaign.spec.RunSpec`.  Datasets — which are immutable —
are the only state shared across units, cached per
``(n_train, n_test, seed, noise_std)`` signature to avoid regenerating
the same synthetic MNIST for every grid cell.

Consequences:

* killing a campaign after N units and resuming it produces artifacts
  bit-identical to an uninterrupted run (the resume test in
  ``tests/campaign/`` byte-compares the histories);
* a unit's execution backend (``sequential`` / ``batched`` / ``pool``)
  is part of its spec — and hence its key — so artifacts always record
  the engine that produced them (the batched engine is numerically, not
  byte-, identical to the reference); result-neutral knobs such as
  ``telemetry`` and ``pool_workers`` are excluded from the key, so
  toggling them never invalidates finished work;
* completed units are skipped by content key, never re-trained — the
  report stage (:mod:`repro.campaign.report`) regenerates every table
  from the store alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.campaign.store import ArtifactStore
from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.faults.models import FaultPlan
from repro.faults.policies import ResilienceConfig
from repro.hardware.prototype import (
    HardwarePrototype,
    PrototypeConfig,
    PrototypeResult,
)
from repro.obs.observer import Observer, active_or_none
from repro.obs.sink import (
    SpoolObserver,
    TelemetryCollector,
    TelemetrySpool,
    clear_spool_context,
    set_spool_context,
)
from repro.perf.scheduler import ParallelUnitScheduler, estimate_unit_cost

__all__ = [
    "CampaignRunner",
    "UnitOutcome",
    "CampaignRunSummary",
    "ParallelUnitError",
    "execute_unit",
]


class ParallelUnitError(RuntimeError):
    """One or more units raised during a parallel campaign pass.

    Raised after the scheduler has drained, so every unit that finished
    cleanly is already checkpointed in the store — re-running the
    campaign resumes past them and retries only the failed units.
    """


@dataclass(frozen=True)
class UnitOutcome:
    """What happened to one unit during a runner pass.

    Attributes:
        key: the unit's content key.
        name: the unit's human-readable name.
        skipped: the unit was already complete in the store.
        duration_s: real (not simulated) execution time; 0 when skipped.
    """

    key: str
    name: str
    skipped: bool
    duration_s: float = 0.0


@dataclass(frozen=True)
class CampaignRunSummary:
    """Aggregate of one :meth:`CampaignRunner.run` pass.

    Attributes:
        outcomes: per-unit outcomes in execution order.
        interrupted: the pass stopped early (unit cap reached or
            ``KeyboardInterrupt``); completed units are checkpointed
            and a later pass will resume after them.
    """

    outcomes: tuple[UnitOutcome, ...]
    interrupted: bool = False

    @property
    def executed(self) -> int:
        """Units actually trained this pass."""
        return sum(1 for o in self.outcomes if not o.skipped)

    @property
    def skipped(self) -> int:
        """Units skipped because their artifacts already existed."""
        return sum(1 for o in self.outcomes if o.skipped)


# ----------------------------------------------------------------------
# Unit execution.  Module-level (and hence picklable) so the parallel
# scheduler can ship units to worker processes; the sequential runner
# goes through the same code path, which is what makes the two modes
# byte-identical.
# ----------------------------------------------------------------------

# Per-process dataset cache.  Datasets are immutable and keyed only on
# their generation signature, so a scheduler worker regenerates each
# distinct dataset at most once no matter how many units it executes.
_WORKER_DATASETS: dict[tuple, tuple[Dataset, Dataset]] = {}


def _unit_datasets(spec: RunSpec) -> tuple[Dataset, Dataset]:
    signature = (spec.n_train, spec.n_test, spec.seed, spec.noise_std)
    if signature not in _WORKER_DATASETS:
        _WORKER_DATASETS[signature] = load_synthetic_mnist(
            n_train=spec.n_train,
            n_test=spec.n_test,
            seed=spec.seed,
            noise_std=spec.noise_std,
        )
    return _WORKER_DATASETS[signature]


def execute_unit(
    spec: RunSpec,
    datasets: tuple[Dataset, Dataset] | None = None,
    observer: Observer | None = None,
) -> PrototypeResult:
    """Execute one unit on a fresh, independently seeded testbed.

    All randomness derives from ``spec.seed`` alone, so the result is
    identical no matter which process runs the unit or in what order
    units run — the property the parallel scheduler relies on.
    """
    train, test = datasets if datasets is not None else _unit_datasets(spec)
    scale = spec.scale()
    prototype = HardwarePrototype(
        train,
        test,
        PrototypeConfig(
            n_servers=spec.n_servers,
            model=scale.model_config(),
            sgd=scale.sgd_config(),
            seed=spec.seed,
            backend=spec.backend,
        ),
        observer=observer,
    )
    # The spec's full FederatedConfig projection is handed to the
    # trainer, so every training knob the spec declares — including
    # dropout_probability, proximal_mu, and pool_workers, which the
    # loop arguments cannot express — is honored exactly as the
    # stored spec.json records it.
    return prototype.run(
        federated_config=spec.federated_config(),
        fault_plan=spec.fault_plan,
        resilience=spec.resilience,
    )


def _unit_spool_observer(spec: RunSpec, spool_dir: str) -> SpoolObserver:
    """Build a spooling observer for one unit's execution.

    The spool file is named by the unit's content key (unique within a
    campaign, filesystem-safe) and labelled with the unit's readable
    name; the spool *context* is set so nested worker tiers — the pool
    engine forked inside this process — stream their own telemetry into
    the same directory under the same unit label.
    """
    spool = TelemetrySpool(
        Path(spool_dir) / f"{spec.key()}.jsonl", unit=spec.name, role="unit"
    )
    set_spool_context(spool_dir, spec.name)
    return SpoolObserver(spool)


def _execute_and_record(payload: tuple) -> dict:
    """Scheduler worker: run one unit and checkpoint it into the store.

    Workers write straight into the shared flock-protected store, so a
    campaign killed mid-parallel-run keeps every unit that finished —
    exactly the sequential crash contract.  Returns a small summary the
    parent uses for telemetry and outcome accounting.

    The payload is ``(spec, store_root)`` or ``(spec, store_root,
    spool_dir)``; with a spool directory and ``spec.telemetry`` on, the
    unit's observer streams every event live into a spool file the
    parent tails while the unit is still training.
    """
    spec, store_root, *rest = payload
    spool_dir = rest[0] if rest else None
    observer: Observer | None = None
    if spec.telemetry:
        if spool_dir is not None:
            observer = _unit_spool_observer(spec, spool_dir)
        else:
            observer = Observer()
    started = time.perf_counter()
    try:
        if observer is not None:
            observer.emit(
                "unit.start",
                unit=spec.name,
                key=spec.key(),
                rounds_planned=spec.max_rounds,
                cost=estimate_unit_cost(spec),
            )
        result = execute_unit(spec, observer=observer)
    except BaseException:
        if isinstance(observer, SpoolObserver):
            observer.finalize(status="error")
        raise
    finally:
        clear_spool_context()
    duration_s = time.perf_counter() - started
    telemetry_jsonl = None
    if observer is not None:
        observer.emit(
            "unit.end",
            unit=spec.name,
            key=spec.key(),
            rounds=int(result.rounds),
            duration_s=duration_s,
        )
        observer.emit("metrics.snapshot", **observer.snapshot())
        telemetry_jsonl = observer.events.to_jsonl()
    store = ArtifactStore(store_root)
    store.record_unit(
        spec,
        result.history,
        _result_document(spec, result),
        telemetry_jsonl=telemetry_jsonl,
    )
    if isinstance(observer, SpoolObserver):
        # Sealed only after the store write: a spool without its "end"
        # record means the unit is still running (or died) — exactly
        # what the status display needs to distinguish.
        observer.finalize(duration_s=duration_s)
    return {
        "key": spec.key(),
        "name": spec.name,
        "duration_s": duration_s,
        "rounds": int(result.rounds),
        "total_energy_j": float(result.total_energy_j),
        "reached_target": bool(result.reached_target),
    }


def _result_document(spec: RunSpec, result: PrototypeResult) -> dict:
    """The ``result.json`` measurement snapshot for one completed unit."""
    return {
        "name": spec.name,
        "participants": int(result.participants),
        "epochs": int(result.epochs),
        "seed": int(spec.seed),
        "backend": spec.backend,
        "train_to_target": bool(spec.train_to_target),
        "rounds": int(result.rounds),
        "reached_target": bool(result.reached_target),
        "final_accuracy": float(result.history.final_accuracy()),
        "final_loss": float(result.history.final_loss()),
        "total_energy_j": float(result.total_energy_j),
        "energy_per_round_j": [float(e) for e in result.energy_per_round_j],
        "wasted_energy_j": float(result.wasted_energy_j),
        "degraded_rounds": int(result.degraded_rounds),
        "wall_clock_s": float(result.wall_clock_s),
        "iot_energy_j": float(result.iot_energy_j),
    }


class CampaignRunner:
    """Executes a campaign against an artifact store, resumably.

    Args:
        campaign: the grid to execute.
        store: artifact store (a path or an :class:`ArtifactStore`);
            initialised/bound to the campaign on construction.
        observer: optional campaign-level telemetry sink — receives
            ``campaign.start`` / ``campaign.unit`` / ``campaign.end``
            events and the ``campaign.units_run`` / ``campaign.units_skipped``
            counters.  Per-unit *training* telemetry is controlled by
            each unit's ``RunSpec.telemetry`` flag and lands in the
            unit's artifact directory instead.
        backend_override: run every unit on this execution backend
            regardless of what its spec says (the ``--backend`` CLI
            flag).  Applied by rewriting the *campaign* — the backend
            axis collapses onto the overridden base — and expanding the
            unit list from the rewritten campaign, so the stored
            ``campaign.json``, the unit count, and every unit's
            name/key all describe exactly what runs (a multi-backend
            axis deduplicates to one unit instead of running identical
            work under stale labels).
        fault_plan_override: inject this fault plan into every unit
            (rewrites the campaign, collapsing the fault axis, like
            ``backend_override``).
        quorum_override: force ``min_quorum`` on every unit.  A
            labelled resilience axis is preserved — each point keeps
            its label and other policy fields and only ``min_quorum``
            is rewritten; without an axis the base spec's resilience
            config is rewritten (attaching a default one if missing).
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: ArtifactStore | str,
        observer: Observer | None = None,
        backend_override: str | None = None,
        fault_plan_override: FaultPlan | None = None,
        quorum_override: int | None = None,
    ) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self._observer = active_or_none(observer)
        self._dataset_cache: dict[tuple, tuple[Dataset, Dataset]] = {}
        # Overrides rewrite the campaign itself, and the unit list is
        # always the rewritten campaign's own expansion — so the stored
        # spec, len(campaign), and every unit name/key agree with what
        # actually runs (and an overridden multi-point axis collapses
        # instead of running identical work under stale labels).
        self.campaign = self._overridden_campaign(
            campaign,
            backend_override,
            fault_plan_override,
            quorum_override,
        )
        self.units = self.campaign.expand()
        self.store.initialize(self.campaign)

    @staticmethod
    def _overridden_campaign(
        campaign: CampaignSpec,
        backend: str | None,
        fault_plan: FaultPlan | None,
        quorum: int | None,
    ) -> CampaignSpec:
        if backend is None and fault_plan is None and quorum is None:
            return campaign
        base_changes: dict = {}
        axis_changes: dict = {}
        if backend is not None:
            base_changes["backend"] = backend
            axis_changes["backends"] = ()
        if fault_plan is not None:
            base_changes["fault_plan"] = fault_plan
            axis_changes["faults"] = ()
        if quorum is not None:
            if campaign.resiliences:
                # Keep the labelled axis: only min_quorum is forced,
                # every other policy field (and the labels the unit
                # names embed) survives.
                axis_changes["resiliences"] = tuple(
                    replace(
                        point,
                        config=replace(
                            point.config or ResilienceConfig(),
                            min_quorum=quorum,
                        ),
                    )
                    for point in campaign.resiliences
                )
            else:
                base_changes["resilience"] = replace(
                    campaign.base.resilience or ResilienceConfig(),
                    min_quorum=quorum,
                )
        return replace(
            campaign,
            base=replace(campaign.base, **base_changes),
            **axis_changes,
        )

    # ------------------------------------------------------------------
    # Unit execution.
    # ------------------------------------------------------------------
    def _datasets(self, spec: RunSpec) -> tuple[Dataset, Dataset]:
        signature = (spec.n_train, spec.n_test, spec.seed, spec.noise_std)
        if signature not in self._dataset_cache:
            self._dataset_cache[signature] = load_synthetic_mnist(
                n_train=spec.n_train,
                n_test=spec.n_test,
                seed=spec.seed,
                noise_std=spec.noise_std,
            )
        return self._dataset_cache[signature]

    def run_unit(self, spec: RunSpec) -> PrototypeResult:
        """Execute one unit on a fresh, independently seeded testbed."""
        return execute_unit(
            spec,
            datasets=self._datasets(spec),
            observer=self._unit_observer(spec),
        )

    def _unit_observer(self, spec: RunSpec) -> Observer | None:
        self._active_unit_observer = Observer() if spec.telemetry else None
        return self._active_unit_observer

    def _drain_unit_telemetry(self) -> str | None:
        observer = getattr(self, "_active_unit_observer", None)
        if observer is None:
            return None
        self._active_unit_observer = None
        observer.emit("metrics.snapshot", **observer.snapshot())
        return observer.events.to_jsonl()

    # ------------------------------------------------------------------
    # The campaign loop.
    # ------------------------------------------------------------------
    def run(
        self, max_units: int | None = None, jobs: int = 1
    ) -> CampaignRunSummary:
        """Execute every incomplete unit, checkpointing each.

        Args:
            max_units: stop (gracefully, with everything so far
                checkpointed) after training this many units — the
                hook the kill-and-resume tests use.  Skipped units do
                not count against the cap.
            jobs: worker processes for unit execution.  ``1`` (the
                default) runs units sequentially in this process;
                ``>1`` fans incomplete units out longest-first over a
                :class:`~repro.perf.scheduler.ParallelUnitScheduler`.
                Because every unit seeds itself and workers checkpoint
                into the flock-protected store, both modes produce
                byte-identical artifacts.

        A ``KeyboardInterrupt`` mid-unit is absorbed the same way: the
        summary reports ``interrupted=True`` and the partially-run
        unit's artifacts are simply absent, so the next pass re-runs it
        from scratch (deterministically, to the same bytes).
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1; got {jobs}")
        obs = self._observer
        collector = (
            TelemetryCollector(self.store.spool_dir, observer=obs)
            if obs is not None
            else None
        )
        completed = self.store.completed_keys()
        outcomes: list[UnitOutcome] = []
        interrupted = False
        executed = 0
        if obs is not None:
            obs.emit(
                "campaign.start",
                campaign=self.campaign.name,
                key=self.campaign.key(),
                units=len(self.units),
                already_complete=len(completed),
                jobs=jobs,
            )
        if jobs > 1:
            return self._run_parallel(max_units, jobs, completed, collector)
        spool_dir = str(self.store.spool_dir)
        for spec in self.units:
            key = spec.key()
            if key in completed:
                outcomes.append(
                    UnitOutcome(key=key, name=spec.name, skipped=True)
                )
                if obs is not None:
                    obs.counter("campaign.units_skipped").inc()
                    obs.emit(
                        "campaign.unit",
                        campaign=self.campaign.name,
                        unit=spec.name,
                        key=key,
                        skipped=True,
                    )
                continue
            if max_units is not None and executed >= max_units:
                interrupted = True
                break
            # The sequential loop runs the *same* module-level worker
            # function as the parallel scheduler — one code path, so
            # both modes emit the identical unit event stream and write
            # identical artifacts.
            try:
                unit_summary = _execute_and_record(
                    (spec, str(self.store.root), spool_dir)
                )
            except KeyboardInterrupt:
                interrupted = True
                break
            finally:
                if collector is not None:
                    collector.poll()
            duration_s = float(unit_summary["duration_s"])
            executed += 1
            outcomes.append(
                UnitOutcome(
                    key=key,
                    name=spec.name,
                    skipped=False,
                    duration_s=duration_s,
                )
            )
            if obs is not None:
                obs.counter("campaign.units_run").inc()
                obs.histogram("campaign.unit_duration_s").observe(duration_s)
                obs.emit(
                    "campaign.unit",
                    campaign=self.campaign.name,
                    unit=spec.name,
                    key=key,
                    skipped=False,
                    duration_s=duration_s,
                    rounds=unit_summary["rounds"],
                    total_energy_j=unit_summary["total_energy_j"],
                    reached_target=unit_summary["reached_target"],
                )
        summary = CampaignRunSummary(
            outcomes=tuple(outcomes), interrupted=interrupted
        )
        if obs is not None:
            obs.emit(
                "campaign.end",
                campaign=self.campaign.name,
                executed=summary.executed,
                skipped=summary.skipped,
                interrupted=summary.interrupted,
            )
        return summary

    def _run_parallel(
        self,
        max_units: int | None,
        jobs: int,
        completed: set[str],
        collector: TelemetryCollector | None = None,
    ) -> CampaignRunSummary:
        """Fan incomplete units out over a process scheduler.

        Unit independence does the heavy lifting: each worker seeds its
        own prototype from the unit's spec and checkpoints straight into
        the shared flock-protected store, so the artifact bytes are
        identical to a sequential pass regardless of completion order.
        ``max_units`` caps *pending* units in unit order — the same
        semantics (and kill-and-resume hook) as the sequential loop.
        """
        obs = self._observer
        outcomes: list[UnitOutcome] = []
        skipped_outcomes: dict[str, UnitOutcome] = {}
        pending: list[RunSpec] = []
        for spec in self.units:
            key = spec.key()
            if key in completed:
                skipped_outcomes[key] = UnitOutcome(
                    key=key, name=spec.name, skipped=True
                )
                if obs is not None:
                    obs.counter("campaign.units_skipped").inc()
                    obs.emit(
                        "campaign.unit",
                        campaign=self.campaign.name,
                        unit=spec.name,
                        key=key,
                        skipped=True,
                    )
            else:
                pending.append(spec)
        interrupted = False
        if max_units is not None and len(pending) > max_units:
            pending = pending[:max_units]
            interrupted = True
        scheduler = ParallelUnitScheduler(jobs, observer=obs)
        spool_dir = str(self.store.spool_dir)
        payloads = [
            (spec, str(self.store.root), spool_dir) for spec in pending
        ]
        costs = [estimate_unit_cost(spec) for spec in pending]
        schedule = scheduler.run(
            payloads,
            _execute_and_record,
            costs,
            poll=collector.poll if collector is not None else None,
        )
        interrupted = interrupted or schedule.interrupted
        executed_outcomes: dict[str, UnitOutcome] = {}
        for index in schedule.completed:
            spec = pending[index]
            summary = schedule.results[index]
            duration_s = float(summary["duration_s"])
            executed_outcomes[spec.key()] = UnitOutcome(
                key=spec.key(),
                name=spec.name,
                skipped=False,
                duration_s=duration_s,
            )
            if obs is not None:
                obs.counter("campaign.units_run").inc()
                obs.histogram("campaign.unit_duration_s").observe(duration_s)
                obs.emit(
                    "campaign.unit",
                    campaign=self.campaign.name,
                    unit=spec.name,
                    key=spec.key(),
                    skipped=False,
                    duration_s=duration_s,
                    rounds=summary["rounds"],
                    total_energy_j=summary["total_energy_j"],
                    reached_target=summary["reached_target"],
                )
        # Outcomes in unit order, mirroring the sequential loop.
        for spec in self.units:
            key = spec.key()
            if key in skipped_outcomes:
                outcomes.append(skipped_outcomes[key])
            elif key in executed_outcomes:
                outcomes.append(executed_outcomes[key])
        summary = CampaignRunSummary(
            outcomes=tuple(outcomes), interrupted=interrupted
        )
        if obs is not None:
            obs.emit(
                "campaign.end",
                campaign=self.campaign.name,
                executed=summary.executed,
                skipped=summary.skipped,
                interrupted=summary.interrupted,
            )
        if schedule.failed and not schedule.interrupted:
            failures = ", ".join(
                f"{pending[i].name}: {err}"
                for i, err in sorted(schedule.failed.items())
            )
            raise ParallelUnitError(
                f"{len(schedule.failed)} campaign unit(s) failed "
                f"(completed units are checkpointed; re-run to resume): "
                f"{failures}"
            )
        return summary
