"""Campaign execution: run every unit once, checkpoint, resume.

:class:`CampaignRunner` turns a :class:`~repro.campaign.spec.CampaignSpec`
into completed artifacts.  The execution contract that makes campaigns
interruptible is *unit independence*: every unit is executed on a
freshly built :class:`~repro.hardware.prototype.HardwarePrototype`
(fresh devices, fresh clients, fresh RNG streams derived only from the
unit's own seed), so a unit's results depend on nothing but its
:class:`~repro.campaign.spec.RunSpec`.  Datasets — which are immutable —
are the only state shared across units, cached per
``(n_train, n_test, seed, noise_std)`` signature to avoid regenerating
the same synthetic MNIST for every grid cell.

Consequences:

* killing a campaign after N units and resuming it produces artifacts
  bit-identical to an uninterrupted run (the resume test in
  ``tests/campaign/`` byte-compares the histories);
* a unit's execution backend (``sequential`` / ``batched`` / ``pool``)
  is part of its spec — and hence its key — so artifacts always record
  the engine that produced them (the batched engine is numerically, not
  byte-, identical to the reference); result-neutral knobs such as
  ``telemetry`` and ``pool_workers`` are excluded from the key, so
  toggling them never invalidates finished work;
* completed units are skipped by content key, never re-trained — the
  report stage (:mod:`repro.campaign.report`) regenerates every table
  from the store alone.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from pathlib import Path

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.campaign.store import ArtifactStore, _atomic_write
from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.faults.chaos import ChaosPlan
from repro.faults.models import FaultPlan
from repro.faults.policies import ResilienceConfig
from repro.hardware.prototype import (
    HardwarePrototype,
    PrototypeConfig,
    PrototypeResult,
)
from repro.obs.observer import Observer, active_or_none
from repro.obs.sink import (
    SpoolObserver,
    TelemetryCollector,
    TelemetrySpool,
    clear_spool_context,
    read_spool_tail,
    set_spool_context,
)
from repro.perf.scheduler import (
    ParallelUnitScheduler,
    SupervisionPolicy,
    UnitFailure,
    estimate_unit_cost,
)

__all__ = [
    "CampaignRunner",
    "UnitOutcome",
    "CampaignRunSummary",
    "ParallelUnitError",
    "UnitVerificationError",
    "UnitPayload",
    "DEFAULT_SUPERVISION",
    "execute_unit",
]

# The supervision applied when ``CampaignRunner.run`` is called without
# an explicit policy: a small bounded retry budget with fast backoff.
# Pass ``supervision=None`` to restore the unsupervised fail-fast
# behaviour (failures raise instead of quarantining).
DEFAULT_SUPERVISION = SupervisionPolicy()


class ParallelUnitError(RuntimeError):
    """One or more units raised during an *unsupervised* parallel pass.

    Raised after the scheduler has drained, so every unit that finished
    cleanly is already checkpointed in the store — re-running the
    campaign resumes past them and retries only the failed units.
    Supervised passes (the default) never raise this: failed units are
    retried and, at budget exhaustion, quarantined instead.
    """


class UnitVerificationError(RuntimeError):
    """A just-recorded unit failed its verify-after-write re-hash.

    The artifact bytes on disk do not match the checksums the manifest
    recorded moments ago — a torn or corrupted write.  Raised from the
    worker so supervision charges the attempt and either retries (the
    rewrite replaces the bad bytes) or quarantines the unit.
    """


@dataclass(frozen=True)
class UnitOutcome:
    """What happened to one unit during a runner pass.

    Attributes:
        key: the unit's content key.
        name: the unit's human-readable name.
        skipped: the unit was already complete in the store (or already
            quarantined by a previous pass).
        duration_s: real (not simulated) execution time; 0 when skipped.
        quarantined: the unit exhausted its supervised retry budget;
            a terminal failure record sits under ``quarantine/<key>/``.
        attempts: attempts consumed over the unit's lifetime (failed
            attempts on record, plus the succeeding one if any).
    """

    key: str
    name: str
    skipped: bool
    duration_s: float = 0.0
    quarantined: bool = False
    attempts: int = 0


@dataclass(frozen=True)
class CampaignRunSummary:
    """Aggregate of one :meth:`CampaignRunner.run` pass.

    Attributes:
        outcomes: per-unit outcomes in execution order.
        interrupted: the pass stopped early (unit cap reached,
            ``KeyboardInterrupt``, or ``SIGTERM``); completed units are
            checkpointed and a later pass will resume after them.
    """

    outcomes: tuple[UnitOutcome, ...]
    interrupted: bool = False

    @property
    def executed(self) -> int:
        """Units actually trained this pass."""
        return sum(
            1 for o in self.outcomes if not o.skipped and not o.quarantined
        )

    @property
    def skipped(self) -> int:
        """Units skipped because their artifacts already existed."""
        return sum(1 for o in self.outcomes if o.skipped)

    @property
    def quarantined(self) -> int:
        """Units given up on after exhausting their retry budget."""
        return sum(1 for o in self.outcomes if o.quarantined)

    @property
    def degraded(self) -> bool:
        """The campaign completed but not every unit has artifacts."""
        return self.quarantined > 0


# ----------------------------------------------------------------------
# Unit execution.  Module-level (and hence picklable) so the parallel
# scheduler can ship units to worker processes; the sequential runner
# goes through the same code path, which is what makes the two modes
# byte-identical.
# ----------------------------------------------------------------------

# Per-process dataset cache.  Datasets are immutable and keyed only on
# their generation signature, so a scheduler worker regenerates each
# distinct dataset at most once no matter how many units it executes.
_WORKER_DATASETS: dict[tuple, tuple[Dataset, Dataset]] = {}


def _unit_datasets(spec: RunSpec) -> tuple[Dataset, Dataset]:
    signature = (spec.n_train, spec.n_test, spec.seed, spec.noise_std)
    if signature not in _WORKER_DATASETS:
        _WORKER_DATASETS[signature] = load_synthetic_mnist(
            n_train=spec.n_train,
            n_test=spec.n_test,
            seed=spec.seed,
            noise_std=spec.noise_std,
        )
    return _WORKER_DATASETS[signature]


def execute_unit(
    spec: RunSpec,
    datasets: tuple[Dataset, Dataset] | None = None,
    observer: Observer | None = None,
) -> PrototypeResult:
    """Execute one unit on a fresh, independently seeded testbed.

    All randomness derives from ``spec.seed`` alone, so the result is
    identical no matter which process runs the unit or in what order
    units run — the property the parallel scheduler relies on.
    """
    train, test = datasets if datasets is not None else _unit_datasets(spec)
    scale = spec.scale()
    prototype = HardwarePrototype(
        train,
        test,
        PrototypeConfig(
            n_servers=spec.n_servers,
            model=scale.model_config(),
            sgd=scale.sgd_config(),
            seed=spec.seed,
            backend=spec.backend,
            aggregation_tiers=spec.tiers,
        ),
        observer=observer,
    )
    # The spec's full FederatedConfig projection is handed to the
    # trainer, so every training knob the spec declares — including
    # dropout_probability, proximal_mu, and pool_workers, which the
    # loop arguments cannot express — is honored exactly as the
    # stored spec.json records it.
    return prototype.run(
        federated_config=spec.federated_config(),
        fault_plan=spec.fault_plan,
        resilience=spec.resilience,
    )


def _unit_spool_observer(spec: RunSpec, spool_dir: str) -> SpoolObserver:
    """Build a spooling observer for one unit's execution.

    The spool file is named by the unit's content key (unique within a
    campaign, filesystem-safe) and labelled with the unit's readable
    name; the spool *context* is set so nested worker tiers — the pool
    engine forked inside this process — stream their own telemetry into
    the same directory under the same unit label.
    """
    spool = TelemetrySpool(
        Path(spool_dir) / f"{spec.key()}.jsonl", unit=spec.name, role="unit"
    )
    set_spool_context(spool_dir, spec.name)
    return SpoolObserver(spool)


@dataclass(frozen=True)
class UnitPayload:
    """Everything a scheduler worker needs to execute one unit attempt.

    Attributes:
        spec: the unit to train.
        store_root: artifact store root (a string so the payload stays
            trivially picklable).
        spool_dir: telemetry spool directory, or ``None`` to keep unit
            telemetry in-process.
        attempt: 0-based attempt number — carried so saboteurs act
            deterministically per attempt and heartbeat files name the
            attempt they belong to.
        chaos: optional saboteur plan (testing/benchmarks only).
        heartbeat: write a ``heartbeats/<key>.json`` liveness file so
            the supervising parent can map this worker's pid back to
            the unit.
    """

    spec: RunSpec
    store_root: str
    spool_dir: str | None = None
    attempt: int = 0
    chaos: ChaosPlan | None = None
    heartbeat: bool = False


def _coerce_payload(payload) -> UnitPayload:
    """Accept the legacy ``(spec, store_root[, spool_dir])`` tuple form."""
    if isinstance(payload, UnitPayload):
        return payload
    spec, store_root, *rest = payload
    return UnitPayload(
        spec=spec,
        store_root=str(store_root),
        spool_dir=rest[0] if rest else None,
    )


def _heartbeat_path(store: ArtifactStore, key: str) -> Path:
    return store.heartbeat_dir / f"{key}.json"


def _write_heartbeat(
    store: ArtifactStore, spec: RunSpec, attempt: int, done: bool = False
) -> None:
    """Record who is executing this unit attempt.

    Heartbeats are runtime state, like spools: pid + attempt let the
    supervising scheduler attribute a dead worker to its unit and aim
    watchdog kills.  A *successful* attempt deletes its heartbeat (see
    :func:`_clear_heartbeat`) — completion is already durable in the
    manifest, and removing the file keeps a supervised store
    byte-identical to an unsupervised one.
    """
    store.heartbeat_dir.mkdir(parents=True, exist_ok=True)
    _atomic_write(
        _heartbeat_path(store, spec.key()),
        json.dumps(
            {
                "key": spec.key(),
                "unit": spec.name,
                "pid": os.getpid(),
                "attempt": int(attempt),
                "started_unix": time.time(),
                "done": bool(done),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )


def _clear_heartbeat(store: ArtifactStore, key: str) -> None:
    """Remove a unit's heartbeat after its store write became durable.

    Besides keeping the store clean, this is what exonerates a finished
    unit when the pool breaks moments later: no heartbeat, no blame —
    the supervisor's ``completed_check`` finds the manifest entry
    instead.
    """
    try:
        _heartbeat_path(store, key).unlink()
    except FileNotFoundError:
        pass


def _execute_and_record(payload) -> dict:
    """Scheduler worker: run one unit and checkpoint it into the store.

    Workers open the shared store through the repository API (the
    backend is auto-detected from the index file the parent created),
    so a campaign killed mid-parallel-run keeps every unit that
    finished — exactly the sequential crash contract.  Returns a small
    summary the parent uses for telemetry and outcome accounting.

    The payload is a :class:`UnitPayload` (or the legacy ``(spec,
    store_root[, spool_dir])`` tuple); with a spool directory and
    ``spec.telemetry`` on, the unit's observer streams every event live
    into a spool file the parent tails while the unit is still training.

    After the store write the unit's artifacts are immediately re-hashed
    against the manifest (verify-after-write): torn or corrupted bytes
    fail *this attempt* with :class:`UnitVerificationError` instead of
    surfacing hours later in a resume check or a report.
    """
    unit = _coerce_payload(payload)
    spec = unit.spec
    key = spec.key()
    store = ArtifactStore(unit.store_root)
    saboteur = (
        unit.chaos.saboteur_for(spec.name) if unit.chaos is not None else None
    )
    if unit.heartbeat:
        _write_heartbeat(store, spec, unit.attempt, done=False)
    observer: Observer | None = None
    if spec.telemetry:
        if unit.spool_dir is not None:
            observer = _unit_spool_observer(spec, unit.spool_dir)
        else:
            observer = Observer()
    started = time.perf_counter()
    try:
        if observer is not None:
            observer.emit(
                "unit.start",
                unit=spec.name,
                key=key,
                rounds_planned=spec.max_rounds,
                cost=estimate_unit_cost(spec),
                attempt=unit.attempt,
            )
        if saboteur is not None:
            saboteur.on_start(unit.attempt)
        result = execute_unit(spec, observer=observer)
        duration_s = time.perf_counter() - started
        telemetry_jsonl = None
        if observer is not None:
            observer.emit(
                "unit.end",
                unit=spec.name,
                key=key,
                rounds=int(result.rounds),
                duration_s=duration_s,
            )
            observer.emit("metrics.snapshot", **observer.snapshot())
            telemetry_jsonl = observer.events.to_jsonl()
        store.record_unit(
            spec,
            result.history,
            _result_document(spec, result),
            telemetry_jsonl=telemetry_jsonl,
        )
        if saboteur is not None:
            saboteur.corrupt_artifacts(store.unit_dir(key), unit.attempt)
        problems = store.verify_unit(key)
        if problems:
            raise UnitVerificationError(
                f"unit {spec.name} failed verify-after-write: "
                + "; ".join(problems)
            )
    except BaseException:
        if isinstance(observer, SpoolObserver):
            observer.finalize(status="error")
        raise
    finally:
        clear_spool_context()
    if unit.heartbeat:
        _clear_heartbeat(store, key)
    if isinstance(observer, SpoolObserver):
        # Sealed only after the store write: a spool without its "end"
        # record means the unit is still running (or died) — exactly
        # what the status display needs to distinguish.
        observer.finalize(duration_s=duration_s)
    return {
        "key": key,
        "name": spec.name,
        "duration_s": duration_s,
        "rounds": int(result.rounds),
        "total_energy_j": float(result.total_energy_j),
        "reached_target": bool(result.reached_target),
    }


def _result_document(spec: RunSpec, result: PrototypeResult) -> dict:
    """The ``result.json`` measurement snapshot for one completed unit."""
    return {
        "name": spec.name,
        "participants": int(result.participants),
        "epochs": int(result.epochs),
        "seed": int(spec.seed),
        "backend": spec.backend,
        "train_to_target": bool(spec.train_to_target),
        "rounds": int(result.rounds),
        "reached_target": bool(result.reached_target),
        "final_accuracy": float(result.history.final_accuracy()),
        "final_loss": float(result.history.final_loss()),
        "total_energy_j": float(result.total_energy_j),
        "energy_per_round_j": [float(e) for e in result.energy_per_round_j],
        "wasted_energy_j": float(result.wasted_energy_j),
        "degraded_rounds": int(result.degraded_rounds),
        "wall_clock_s": float(result.wall_clock_s),
        "iot_energy_j": float(result.iot_energy_j),
        "tiers": int(spec.tiers),
        "aggregation_energy_j": float(result.aggregation_energy_j),
    }


@contextmanager
def _sigterm_as_interrupt():
    """Map ``SIGTERM`` onto ``KeyboardInterrupt`` for the duration.

    Cluster schedulers preempt with SIGTERM; converting it lets a
    campaign pass take the exact same graceful-drain-and-checkpoint
    path as Ctrl-C.  Installing a handler is only legal from the main
    thread — anywhere else (e.g. a runner driven from a worker thread
    in tests) the conversion is silently skipped.
    """
    installed = False
    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _sigterm_handler)
        installed = True
    except ValueError:  # not the main thread
        pass
    try:
        yield
    finally:
        if installed:
            signal.signal(
                signal.SIGTERM,
                previous if previous is not None else signal.SIG_DFL,
            )


def _sigterm_handler(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt(f"terminated by signal {signum}")


class CampaignRunner:
    """Executes a campaign against an artifact store, resumably.

    Args:
        campaign: the grid to execute.
        store: artifact store (a path or an :class:`ArtifactStore`);
            initialised/bound to the campaign on construction.
        observer: optional campaign-level telemetry sink — receives
            ``campaign.start`` / ``campaign.unit`` / ``campaign.end``
            events and the ``campaign.units_run`` / ``campaign.units_skipped``
            counters.  Per-unit *training* telemetry is controlled by
            each unit's ``RunSpec.telemetry`` flag and lands in the
            unit's artifact directory instead.
        backend_override: run every unit on this execution backend
            regardless of what its spec says (the ``--backend`` CLI
            flag).  Applied by rewriting the *campaign* — the backend
            axis collapses onto the overridden base — and expanding the
            unit list from the rewritten campaign, so the stored
            ``campaign.json``, the unit count, and every unit's
            name/key all describe exactly what runs (a multi-backend
            axis deduplicates to one unit instead of running identical
            work under stale labels).
        fault_plan_override: inject this fault plan into every unit
            (rewrites the campaign, collapsing the fault axis, like
            ``backend_override``).
        population_dtype_override: force every unit's population-backend
            compute dtype (the ``--population-dtype`` CLI flag; rewrites
            the campaign base — there is no dtype axis to collapse).
        quorum_override: force ``min_quorum`` on every unit.  A
            labelled resilience axis is preserved — each point keeps
            its label and other policy fields and only ``min_quorum``
            is rewritten; without an axis the base spec's resilience
            config is rewritten (attaching a default one if missing).
        chaos: optional saboteur plan shipped to every unit worker —
            the process-level fault-injection hook the ``chaos_smoke``
            suite and ``bench_chaos.py`` drive.  Chaos never touches
            what a *successful* attempt computes, so artifacts stay
            byte-identical to a fault-free run.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: ArtifactStore | str,
        observer: Observer | None = None,
        backend_override: str | None = None,
        fault_plan_override: FaultPlan | None = None,
        quorum_override: int | None = None,
        chaos: ChaosPlan | None = None,
        population_dtype_override: str | None = None,
    ) -> None:
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self._observer = active_or_none(observer)
        self._chaos = chaos
        self._dataset_cache: dict[tuple, tuple[Dataset, Dataset]] = {}
        # Overrides rewrite the campaign itself, and the unit list is
        # always the rewritten campaign's own expansion — so the stored
        # spec, len(campaign), and every unit name/key agree with what
        # actually runs (and an overridden multi-point axis collapses
        # instead of running identical work under stale labels).
        self.campaign = self._overridden_campaign(
            campaign,
            backend_override,
            fault_plan_override,
            quorum_override,
            population_dtype_override,
        )
        self.units = self.campaign.expand()
        self.store.initialize(self.campaign)

    @staticmethod
    def _overridden_campaign(
        campaign: CampaignSpec,
        backend: str | None,
        fault_plan: FaultPlan | None,
        quorum: int | None,
        population_dtype: str | None = None,
    ) -> CampaignSpec:
        if (
            backend is None
            and fault_plan is None
            and quorum is None
            and population_dtype is None
        ):
            return campaign
        base_changes: dict = {}
        axis_changes: dict = {}
        if backend is not None:
            base_changes["backend"] = backend
            axis_changes["backends"] = ()
        if population_dtype is not None:
            base_changes["population_dtype"] = population_dtype
        if fault_plan is not None:
            base_changes["fault_plan"] = fault_plan
            axis_changes["faults"] = ()
        if quorum is not None:
            if campaign.resiliences:
                # Keep the labelled axis: only min_quorum is forced,
                # every other policy field (and the labels the unit
                # names embed) survives.
                axis_changes["resiliences"] = tuple(
                    replace(
                        point,
                        config=replace(
                            point.config or ResilienceConfig(),
                            min_quorum=quorum,
                        ),
                    )
                    for point in campaign.resiliences
                )
            else:
                base_changes["resilience"] = replace(
                    campaign.base.resilience or ResilienceConfig(),
                    min_quorum=quorum,
                )
        return replace(
            campaign,
            base=replace(campaign.base, **base_changes),
            **axis_changes,
        )

    # ------------------------------------------------------------------
    # Unit execution.
    # ------------------------------------------------------------------
    def _datasets(self, spec: RunSpec) -> tuple[Dataset, Dataset]:
        signature = (spec.n_train, spec.n_test, spec.seed, spec.noise_std)
        if signature not in self._dataset_cache:
            self._dataset_cache[signature] = load_synthetic_mnist(
                n_train=spec.n_train,
                n_test=spec.n_test,
                seed=spec.seed,
                noise_std=spec.noise_std,
            )
        return self._dataset_cache[signature]

    def run_unit(self, spec: RunSpec) -> PrototypeResult:
        """Execute one unit on a fresh, independently seeded testbed."""
        return execute_unit(
            spec,
            datasets=self._datasets(spec),
            observer=self._unit_observer(spec),
        )

    def _unit_observer(self, spec: RunSpec) -> Observer | None:
        self._active_unit_observer = Observer() if spec.telemetry else None
        return self._active_unit_observer

    def _drain_unit_telemetry(self) -> str | None:
        observer = getattr(self, "_active_unit_observer", None)
        if observer is None:
            return None
        self._active_unit_observer = None
        observer.emit("metrics.snapshot", **observer.snapshot())
        return observer.events.to_jsonl()

    # ------------------------------------------------------------------
    # Failure accounting.
    # ------------------------------------------------------------------
    def _record_unit_failure(
        self,
        spec: RunSpec,
        attempt: int,
        kind: str,
        error: str,
        quarantined: bool,
        traceback_text: str | None = None,
    ) -> None:
        """Persist one failed attempt and emit its telemetry.

        Writes the durable ``quarantine/<key>/attempt-N.json`` record
        (exception repr, traceback, the tail of the unit's telemetry
        spool, wall timestamps) — the trail that makes attempt counting
        survive a killed campaign — and, for a quarantined unit whose
        corrupt artifacts made it into the manifest, evicts them.
        """
        key = spec.key()
        now = time.time()
        self.store.record_failure(
            key,
            {
                "unit": spec.name,
                "kind": kind,
                "error": error,
                "traceback": traceback_text,
                "spool_tail": read_spool_tail(
                    self.store.spool_dir / f"{key}.jsonl"
                ),
                "quarantined": bool(quarantined),
                "wall_time_unix": now,
                "wall_time_iso": datetime.fromtimestamp(
                    now, tz=timezone.utc
                ).isoformat(),
            },
        )
        if quarantined and self.store.contains(key):
            # The failure was detected *after* the manifest write (a
            # corrupt artifact); evict the bad bytes from the store.
            self.store.quarantine_unit(key)
        obs = self._observer
        if obs is not None:
            category = "unit.quarantined" if quarantined else "unit.retry"
            obs.counter(category).inc()
            obs.emit(
                category,
                campaign=self.campaign.name,
                unit=spec.name,
                key=key,
                attempt=attempt,
                kind=kind,
                error=error,
            )

    # ------------------------------------------------------------------
    # The campaign loop.
    # ------------------------------------------------------------------
    def run(
        self,
        max_units: int | None = None,
        jobs: int = 1,
        supervision: SupervisionPolicy | None = DEFAULT_SUPERVISION,
        retry_quarantined: bool = False,
    ) -> CampaignRunSummary:
        """Execute every incomplete unit, checkpointing each.

        Args:
            max_units: stop (gracefully, with everything so far
                checkpointed) after training this many units — the
                hook the kill-and-resume tests use.  Skipped units do
                not count against the cap.
            jobs: worker processes for unit execution.  ``1`` (the
                default) runs units sequentially in this process;
                ``>1`` fans incomplete units out longest-first over a
                :class:`~repro.perf.scheduler.ParallelUnitScheduler`.
                Because every unit seeds itself and workers checkpoint
                through the shared store's repository API, both modes
                produce byte-identical artifacts.
            supervision: failure policy.  The default retries a failed
                unit with deterministic backoff and, once the attempt
                budget is spent, *quarantines* it (durable failure
                record, campaign completes degraded).  In parallel mode
                it additionally arms the watchdog and broken-pool
                recovery.  ``None`` restores fail-fast: the first
                failure raises (:class:`ParallelUnitError` after the
                drain, in parallel mode).
            retry_quarantined: forget existing failure trails first, so
                previously quarantined units get a fresh budget.

        A ``KeyboardInterrupt`` mid-unit is absorbed gracefully: the
        summary reports ``interrupted=True`` and the partially-run
        unit's artifacts are simply absent, so the next pass re-runs it
        from scratch (deterministically, to the same bytes).  For the
        duration of the pass ``SIGTERM`` is mapped onto the same path,
        so cluster preemption checkpoints instead of killing mid-write.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1; got {jobs}")
        with _sigterm_as_interrupt():
            return self._run(max_units, jobs, supervision, retry_quarantined)

    def _run(
        self,
        max_units: int | None,
        jobs: int,
        supervision: SupervisionPolicy | None,
        retry_quarantined: bool,
    ) -> CampaignRunSummary:
        obs = self._observer
        collector = (
            TelemetryCollector(self.store.spool_dir, observer=obs)
            if obs is not None
            else None
        )
        if retry_quarantined:
            for key in self.store.quarantined_keys():
                self.store.clear_failures(key)
        completed = self.store.completed_keys()
        quarantined_keys = (
            self.store.quarantined_keys() if supervision is not None else set()
        )
        outcomes: list[UnitOutcome] = []
        interrupted = False
        executed = 0
        if obs is not None:
            obs.emit(
                "campaign.start",
                campaign=self.campaign.name,
                key=self.campaign.key(),
                units=len(self.units),
                already_complete=len(completed),
                quarantined=len(quarantined_keys),
                jobs=jobs,
            )
        if jobs > 1:
            return self._run_parallel(
                max_units,
                jobs,
                completed,
                quarantined_keys,
                collector,
                supervision,
            )
        spool_dir = str(self.store.spool_dir)
        try:
            for spec in self.units:
                key = spec.key()
                if key in completed:
                    outcomes.append(
                        UnitOutcome(key=key, name=spec.name, skipped=True)
                    )
                    if obs is not None:
                        obs.counter("campaign.units_skipped").inc()
                        obs.emit(
                            "campaign.unit",
                            campaign=self.campaign.name,
                            unit=spec.name,
                            key=key,
                            skipped=True,
                        )
                    continue
                if key in quarantined_keys:
                    # Quarantine is durable: the unit stays out of the way
                    # until the operator grants a fresh budget.
                    outcomes.append(
                        UnitOutcome(
                            key=key,
                            name=spec.name,
                            skipped=True,
                            quarantined=True,
                            attempts=self.store.attempts_used(key),
                        )
                    )
                    if obs is not None:
                        obs.emit(
                            "campaign.unit",
                            campaign=self.campaign.name,
                            unit=spec.name,
                            key=key,
                            skipped=True,
                            quarantined=True,
                        )
                    continue
                if max_units is not None and executed >= max_units:
                    interrupted = True
                    break
                # The sequential loop runs the *same* module-level worker
                # function as the parallel scheduler — one code path, so
                # both modes emit the identical unit event stream and write
                # identical artifacts.  Attempt numbering continues from
                # the durable failure trail, so a killed-and-resumed retry
                # sequence is indistinguishable from an uninterrupted one.
                attempt = (
                    self.store.attempts_used(key) if supervision is not None else 0
                )
                unit_summary = None
                quarantined_now = False
                while True:
                    try:
                        unit_summary = _execute_and_record(
                            UnitPayload(
                                spec=spec,
                                store_root=str(self.store.root),
                                spool_dir=spool_dir,
                                attempt=attempt,
                                chaos=self._chaos,
                            )
                        )
                    except KeyboardInterrupt:
                        interrupted = True
                    except Exception as error:
                        if supervision is None:
                            if collector is not None:
                                collector.poll()
                            raise
                        attempt += 1
                        quarantined_now = attempt >= supervision.max_attempts
                        self._record_unit_failure(
                            spec,
                            attempt,
                            "error",
                            repr(error),
                            quarantined_now,
                            traceback_module.format_exc(),
                        )
                    finally:
                        if collector is not None:
                            try:
                                collector.poll()
                            except KeyboardInterrupt:
                                # The unit (if it finished) is already
                                # durably checkpointed; remember the
                                # interrupt but keep its summary.
                                interrupted = True
                    if unit_summary is not None or interrupted or quarantined_now:
                        break
                    try:
                        time.sleep(supervision.backoff_s(key, attempt))
                    except KeyboardInterrupt:
                        # Ctrl-C / SIGTERM during a backoff wait checkpoints
                        # exactly like an interrupt during the unit itself.
                        interrupted = True
                        break
                if unit_summary is not None:
                    # Bookkeeping for a completed unit runs before any
                    # interrupt is honored: the store already holds the
                    # artifact, so the summary must count it — otherwise
                    # a drain landing between checkpoint and accounting
                    # under-reports `executed` relative to the store.
                    duration_s = float(unit_summary["duration_s"])
                    executed += 1
                    outcomes.append(
                        UnitOutcome(
                            key=key,
                            name=spec.name,
                            skipped=False,
                            duration_s=duration_s,
                            attempts=attempt + 1,
                        )
                    )
                    try:
                        if obs is not None:
                            obs.counter("campaign.units_run").inc()
                            obs.histogram("campaign.unit_duration_s").observe(
                                duration_s
                            )
                            obs.emit(
                                "campaign.unit",
                                campaign=self.campaign.name,
                                unit=spec.name,
                                key=key,
                                skipped=False,
                                duration_s=duration_s,
                                rounds=unit_summary["rounds"],
                                total_energy_j=unit_summary["total_energy_j"],
                                reached_target=unit_summary["reached_target"],
                            )
                    except KeyboardInterrupt:
                        interrupted = True
                    if interrupted:
                        break
                    continue
                if interrupted:
                    break
                if quarantined_now:
                    outcomes.append(
                        UnitOutcome(
                            key=key,
                            name=spec.name,
                            skipped=False,
                            quarantined=True,
                            attempts=attempt,
                        )
                    )
                    if obs is not None:
                        obs.emit(
                            "campaign.unit",
                            campaign=self.campaign.name,
                            unit=spec.name,
                            key=key,
                            skipped=False,
                            quarantined=True,
                            attempts=attempt,
                        )
                    continue
        except KeyboardInterrupt:
            # An interrupt landing *between* units (skip bookkeeping,
            # attempts lookups, telemetry emits) checkpoints exactly
            # like one mid-unit: everything recorded so far is durable.
            interrupted = True
        summary = CampaignRunSummary(
            outcomes=tuple(outcomes), interrupted=interrupted
        )
        if obs is not None:
            obs.emit(
                "campaign.end",
                campaign=self.campaign.name,
                executed=summary.executed,
                skipped=summary.skipped,
                quarantined=summary.quarantined,
                interrupted=summary.interrupted,
            )
        return summary

    def _run_parallel(
        self,
        max_units: int | None,
        jobs: int,
        completed: set[str],
        quarantined_keys: set[str],
        collector: TelemetryCollector | None = None,
        supervision: SupervisionPolicy | None = None,
    ) -> CampaignRunSummary:
        """Fan incomplete units out over a process scheduler.

        Unit independence does the heavy lifting: each worker seeds its
        own prototype from the unit's spec and checkpoints straight
        into the shared store (each index update is atomic in either
        backend), so the artifact bytes are identical to a sequential
        pass regardless of completion order.
        ``max_units`` caps *pending* units in unit order — the same
        semantics (and kill-and-resume hook) as the sequential loop.

        With ``supervision`` the pass runs under
        :meth:`~repro.perf.scheduler.ParallelUnitScheduler.run_supervised`:
        failed attempts are retried with deterministic backoff, hung or
        overdue workers are killed by the watchdog, a broken pool is
        rebuilt with survivors resubmitted, and budget-exhausted units
        are quarantined — the pass completes degraded instead of
        raising.
        """
        obs = self._observer
        outcomes: list[UnitOutcome] = []
        skipped_outcomes: dict[str, UnitOutcome] = {}
        pending: list[RunSpec] = []
        for spec in self.units:
            key = spec.key()
            if key in completed:
                skipped_outcomes[key] = UnitOutcome(
                    key=key, name=spec.name, skipped=True
                )
                if obs is not None:
                    obs.counter("campaign.units_skipped").inc()
                    obs.emit(
                        "campaign.unit",
                        campaign=self.campaign.name,
                        unit=spec.name,
                        key=key,
                        skipped=True,
                    )
            elif key in quarantined_keys:
                skipped_outcomes[key] = UnitOutcome(
                    key=key,
                    name=spec.name,
                    skipped=True,
                    quarantined=True,
                    attempts=self.store.attempts_used(key),
                )
                if obs is not None:
                    obs.emit(
                        "campaign.unit",
                        campaign=self.campaign.name,
                        unit=spec.name,
                        key=key,
                        skipped=True,
                        quarantined=True,
                    )
            else:
                pending.append(spec)
        interrupted = False
        if max_units is not None and len(pending) > max_units:
            pending = pending[:max_units]
            interrupted = True
        scheduler = ParallelUnitScheduler(jobs, observer=obs)
        spool_dir = str(self.store.spool_dir)
        store_root = str(self.store.root)
        costs = [estimate_unit_cost(spec) for spec in pending]
        poll = collector.poll if collector is not None else None
        if supervision is not None:
            keys = [spec.key() for spec in pending]
            chaos = self._chaos

            def make_payload(index: int, attempt: int) -> UnitPayload:
                return UnitPayload(
                    spec=pending[index],
                    store_root=store_root,
                    spool_dir=spool_dir,
                    attempt=attempt,
                    chaos=chaos,
                    heartbeat=True,
                )

            def on_failure(failure: UnitFailure) -> None:
                self._record_unit_failure(
                    pending[failure.index],
                    failure.attempt,
                    failure.kind,
                    failure.error,
                    failure.quarantined,
                    failure.traceback,
                )

            def completed_check(index: int) -> bool:
                # Manifest entry alone is not proof after a pool break —
                # the artifacts must also verify, or a corrupt write
                # would be exonerated as "already complete".
                key = keys[index]
                return (
                    self.store.contains(key)
                    and self.store.verify_unit(key) == []
                )

            schedule = scheduler.run_supervised(
                [
                    UnitPayload(
                        spec=spec, store_root=store_root, spool_dir=spool_dir
                    )
                    for spec in pending
                ],
                _execute_and_record,
                supervision=supervision,
                costs=costs,
                keys=keys,
                initial_attempts=[
                    self.store.attempts_used(key) for key in keys
                ],
                make_payload=make_payload,
                on_failure=on_failure,
                completed_check=completed_check,
                heartbeat_dir=self.store.heartbeat_dir,
                spool_dir=self.store.spool_dir,
                poll=poll,
            )
        else:
            schedule = scheduler.run(
                [
                    UnitPayload(
                        spec=spec, store_root=store_root, spool_dir=spool_dir
                    )
                    for spec in pending
                ],
                _execute_and_record,
                costs,
                poll=poll,
            )
        interrupted = interrupted or schedule.interrupted
        executed_outcomes: dict[str, UnitOutcome] = {}
        for index in schedule.completed:
            spec = pending[index]
            summary = schedule.results.get(index)
            if summary is None:
                # The unit finished durably but its worker died before
                # reporting (pool break after the store write); recover
                # the numbers from the artifacts themselves.
                result_doc = self.store.unit(spec.key()).result()
                summary = {
                    "duration_s": 0.0,
                    "rounds": result_doc["rounds"],
                    "total_energy_j": result_doc["total_energy_j"],
                    "reached_target": result_doc["reached_target"],
                }
            duration_s = float(summary["duration_s"])
            executed_outcomes[spec.key()] = UnitOutcome(
                key=spec.key(),
                name=spec.name,
                skipped=False,
                duration_s=duration_s,
                attempts=schedule.attempts.get(index, 1),
            )
            if obs is not None:
                obs.counter("campaign.units_run").inc()
                obs.histogram("campaign.unit_duration_s").observe(duration_s)
                obs.emit(
                    "campaign.unit",
                    campaign=self.campaign.name,
                    unit=spec.name,
                    key=spec.key(),
                    skipped=False,
                    duration_s=duration_s,
                    rounds=summary["rounds"],
                    total_energy_j=summary["total_energy_j"],
                    reached_target=summary["reached_target"],
                )
        for index in schedule.quarantined:
            spec = pending[index]
            executed_outcomes[spec.key()] = UnitOutcome(
                key=spec.key(),
                name=spec.name,
                skipped=False,
                quarantined=True,
                attempts=schedule.attempts.get(index, 0),
            )
            if obs is not None:
                obs.emit(
                    "campaign.unit",
                    campaign=self.campaign.name,
                    unit=spec.name,
                    key=spec.key(),
                    skipped=False,
                    quarantined=True,
                    attempts=schedule.attempts.get(index, 0),
                )
        # Outcomes in unit order, mirroring the sequential loop.
        for spec in self.units:
            key = spec.key()
            if key in skipped_outcomes:
                outcomes.append(skipped_outcomes[key])
            elif key in executed_outcomes:
                outcomes.append(executed_outcomes[key])
        summary = CampaignRunSummary(
            outcomes=tuple(outcomes), interrupted=interrupted
        )
        if obs is not None:
            obs.emit(
                "campaign.end",
                campaign=self.campaign.name,
                executed=summary.executed,
                skipped=summary.skipped,
                quarantined=summary.quarantined,
                interrupted=summary.interrupted,
            )
        if (
            supervision is None
            and schedule.failed
            and not schedule.interrupted
        ):
            failures = ", ".join(
                f"{pending[i].name}: {err}"
                for i, err in sorted(schedule.failed.items())
            )
            raise ParallelUnitError(
                f"{len(schedule.failed)} campaign unit(s) failed "
                f"(completed units are checkpointed; re-run to resume): "
                f"{failures}"
            )
        return summary
