"""Live campaign status: per-unit state, round progress, and an ETA.

``repro campaign status`` must answer "how far along is this sweep and
when will it finish" *from the filesystem alone* — typically from a
different process than the one training, possibly after that process
died.  Two sources cover every unit:

* the store **manifest** — the durable record: listed units are done;
* the **telemetry spools** (:mod:`repro.obs.sink`) — the live record:
  a unit spool exists while (and after) a worker executes the unit, its
  streamed ``round.end`` events give round progress, and its terminal
  ``end`` record distinguishes a finished unit from one mid-flight.  A
  spool without an ``end`` record whose writer pid is gone means the
  worker was killed — the unit is reported ``failed`` rather than left
  ``running`` forever.

The ETA extrapolates from the same cost model the parallel scheduler
dispatches by (:func:`~repro.perf.scheduler.estimate_unit_cost`,
``rounds * K * E * n``): completed units calibrate observed throughput
(cost units per second per worker), remaining work is the cost of
pending units plus the unfinished fraction of running ones, and the
estimate divides the two, scaled by how many workers are active.  Units
that ran without telemetry still count toward the done/pending tallies;
they simply contribute no throughput observation.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.store import ArtifactStore
from repro.experiments.report import render_table
from repro.obs.sink import read_spool_records
from repro.perf.scheduler import estimate_unit_cost

__all__ = ["UnitStatus", "CampaignStatus", "CampaignStatusMonitor"]

_STATES = ("pending", "running", "retrying", "done", "failed", "quarantined")


def _pid_alive(pid: int) -> bool:
    """Liveness probe for a worker pid on this host.

    ``kill(pid, 0)`` semantics, interpreted conservatively:

    * ``ProcessLookupError`` (ESRCH) — definitively dead;
    * ``PermissionError`` / ``EPERM`` — the pid exists but belongs to
      another user (containers, setuid workers): alive;
    * any other ``OSError`` (EINVAL and friends) — the probe itself is
      meaningless, so the pid cannot be *confirmed* alive: dead.  The
      old behaviour reported every odd errno as alive, which left a
      unit stuck ``running`` forever on hosts where the probe fails.
    """
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError as error:
        return error.errno == errno.EPERM
    return True


@dataclass(frozen=True)
class UnitStatus:
    """One unit's place in the campaign right now.

    Attributes:
        key: the unit's content key.
        name: human-readable unit name.
        state: ``pending`` | ``running`` | ``retrying`` | ``done`` |
            ``failed`` | ``quarantined``.  ``retrying`` means failed
            attempts are on record but the supervised runner still has
            budget; ``quarantined`` means the budget is exhausted and
            the unit needs operator attention (``--retry-quarantined``).
        cost: scheduler cost estimate (``rounds * K * E * n``).
        rounds_planned: the unit's round budget.
        rounds_done: rounds finished so far (streamed ``round.end``
            events while running; the recorded round count once done).
        worker: pid of the executing worker, when a spool names one.
        duration_s: real execution time, when the spool recorded it.
        attempts: failed attempts on durable record for this unit.
    """

    key: str
    name: str
    state: str
    cost: float
    rounds_planned: int
    rounds_done: int = 0
    worker: int | None = None
    duration_s: float | None = None
    attempts: int = 0

    @property
    def remaining_cost(self) -> float:
        """Unfinished share of this unit's estimated cost."""
        if self.state in ("done", "failed", "quarantined"):
            return 0.0
        if self.state == "retrying":
            # A retry starts from scratch: partial rounds from the
            # failed attempt buy nothing.
            return self.cost
        if self.rounds_planned <= 0:
            return self.cost
        done_fraction = min(1.0, self.rounds_done / self.rounds_planned)
        return self.cost * (1.0 - done_fraction)


def _spool_progress(path: Path) -> dict:
    """Digest one unit spool: progress, terminal status, worker identity."""
    records, _ = read_spool_records(path)
    digest: dict = {
        "worker": None,
        "rounds_done": 0,
        "end_status": None,
        "duration_s": None,
    }
    for record in records:
        kind = record.get("kind")
        if kind == "meta":
            worker = record.get("worker")
            if isinstance(worker, int):
                digest["worker"] = worker
        elif kind == "event":
            event = record.get("event", {})
            if event.get("category") == "round.end":
                digest["rounds_done"] += 1
        elif kind == "events":
            # round.* events always flush as their own lines, but stay
            # robust to a writer that batches them anyway.
            for event in record.get("events", ()):
                if event.get("category") == "round.end":
                    digest["rounds_done"] += 1
        elif kind == "end":
            digest["end_status"] = record.get("status", "ok")
            duration = record.get("duration_s")
            if duration is not None:
                digest["duration_s"] = float(duration)
    return digest


@dataclass(frozen=True)
class CampaignStatus:
    """Snapshot of a whole campaign's execution state.

    Build with :meth:`collect`; everything else is a pure function of
    the collected unit statuses.
    """

    campaign_name: str
    units: tuple[UnitStatus, ...]

    @classmethod
    def collect(cls, store: ArtifactStore) -> "CampaignStatus":
        """Read the store and the spools into one status snapshot.

        One-shot convenience over :class:`CampaignStatusMonitor`; a
        poller (``status --follow``) should hold a monitor instead, so
        the campaign grid and finished-unit statuses are computed once
        rather than re-derived every poll.
        """
        return CampaignStatusMonitor(store).refresh()

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Unit count per state (every state present, zeros included)."""
        counts = {state: 0 for state in _STATES}
        for unit in self.units:
            counts[unit.state] += 1
        return counts

    @property
    def total_cost(self) -> float:
        return sum(unit.cost for unit in self.units)

    @property
    def remaining_cost(self) -> float:
        """Estimated cost still to run (pending + unfinished fractions)."""
        return sum(unit.remaining_cost for unit in self.units)

    @property
    def finished(self) -> bool:
        """No unit is pending, running, or awaiting a retry."""
        return all(
            unit.state in ("done", "failed", "quarantined")
            for unit in self.units
        )

    @property
    def troubled(self) -> bool:
        """Any unit failed or is quarantined (the CLI's exit signal)."""
        return any(
            unit.state in ("failed", "quarantined") for unit in self.units
        )

    def throughput(self) -> float | None:
        """Observed cost units per second per worker, or ``None``.

        Calibrated from completed units whose spools recorded a real
        duration — the same cost model the ETA spends, so model error
        cancels to first order.
        """
        cost = 0.0
        seconds = 0.0
        for unit in self.units:
            if unit.state == "done" and unit.duration_s:
                cost += unit.cost
                seconds += unit.duration_s
        if seconds <= 0:
            return None
        return cost / seconds

    def eta_s(self) -> float | None:
        """Estimated seconds until the campaign finishes, or ``None``.

        ``remaining cost / (throughput × active workers)``; undefined
        until at least one unit has completed with a recorded duration
        (no throughput observation) or when nothing remains.
        """
        remaining = self.remaining_cost
        if remaining <= 0:
            return 0.0
        rate = self.throughput()
        if rate is None or rate <= 0:
            return None
        active = sum(1 for unit in self.units if unit.state == "running")
        return remaining / (rate * max(1, active))

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render_summary(self) -> str:
        """The one-line-per-fact summary the plain status command prints."""
        counts = self.counts()
        parts = ", ".join(f"{counts[state]} {state}" for state in _STATES)
        lines = [
            f"units: {parts}",
            (
                f"estimated cost: {self.total_cost:,.0f} total, "
                f"{self.remaining_cost:,.0f} remaining "
                f"({self.remaining_cost / self.total_cost:.0%})"
                if self.total_cost > 0
                else "estimated cost: 0"
            ),
        ]
        eta = self.eta_s()
        if eta is not None and not self.finished:
            lines.append(f"ETA: {_format_duration(eta)}")
        return "\n".join(lines)

    def render(self) -> str:
        """Full status: per-unit table plus the summary and ETA."""
        rows = []
        for unit in self.units:
            progress = (
                f"{unit.rounds_done}/{unit.rounds_planned}"
                if unit.state in ("running", "done")
                else "-"
            )
            rows.append(
                [
                    unit.name,
                    unit.state,
                    progress,
                    f"{unit.cost:,.0f}",
                    unit.worker if unit.worker is not None else "-",
                    unit.attempts if unit.attempts else "-",
                ]
            )
        table = render_table(
            ["unit", "state", "rounds", "est. cost", "worker", "attempts"],
            rows,
            title=f"Campaign {self.campaign_name!r} — live status",
        )
        return f"{table}\n{self.render_summary()}"


class CampaignStatusMonitor:
    """Incremental status collection over one open store handle.

    ``status --follow`` used to rebuild everything every poll: re-read
    the campaign spec, re-expand the grid, re-estimate every unit cost,
    and re-open every completed unit's result file — linear work per
    tick that grows with campaign size even when nothing changed.  The
    monitor splits status into what cannot change and what can:

    * computed **once** at construction: the campaign spec, the
      expanded unit grid, per-unit cost estimates;
    * cached **once observed**: a unit that reached ``done`` is
      immutable (content-addressed artifacts, recorded result), so its
      status row — including the result read and the final spool
      digest — is computed on the poll that first sees it and reused
      ever after;
    * read **every poll**: the completed/quarantined key sets (one
      index scan each) and the spools of not-yet-done units.

    Per-tick work is therefore proportional to the *active* frontier
    of the campaign, not its total size.
    """

    def __init__(self, store: ArtifactStore) -> None:
        self._store = store
        self._campaign = store.campaign()
        self._grid = tuple(
            (spec, spec.key(), estimate_unit_cost(spec))
            for spec in self._campaign.expand()
        )
        self._done: dict[str, UnitStatus] = {}

    @property
    def store(self) -> ArtifactStore:
        """The repository handle this monitor polls."""
        return self._store

    @property
    def campaign_name(self) -> str:
        """Name of the campaign being watched."""
        return self._campaign.name

    def _done_status(
        self, key: str, spec, cost: float, spool_path: Path, attempts: int
    ) -> UnitStatus:
        """Build (or replay) the immutable status of a completed unit."""
        cached = self._done.get(key)
        if cached is not None:
            return cached
        rounds = spec.max_rounds
        try:
            rounds = int(
                self._store.unit(key).result().get("rounds", rounds)
            )
        except Exception:
            pass
        digest = (
            _spool_progress(spool_path)
            if spool_path.exists()
            else {"worker": None, "duration_s": None}
        )
        status = UnitStatus(
            key=key,
            name=spec.name,
            state="done",
            cost=cost,
            rounds_planned=spec.max_rounds,
            rounds_done=rounds,
            worker=digest["worker"],
            duration_s=digest["duration_s"],
            attempts=attempts,
        )
        self._done[key] = status
        return status

    def refresh(self) -> CampaignStatus:
        """Poll the store and spools; return a fresh status snapshot."""
        store = self._store
        completed = store.completed_keys()
        quarantined = store.quarantined_keys()
        spool_dir = store.spool_dir
        statuses = []
        for spec, key, cost in self._grid:
            spool_path = spool_dir / f"{key}.jsonl"
            if key in completed:
                if key in self._done:
                    statuses.append(self._done[key])
                else:
                    statuses.append(
                        self._done_status(
                            key, spec, cost, spool_path,
                            store.attempts_used(key),
                        )
                    )
                continue
            attempts = store.attempts_used(key)
            if key in quarantined:
                statuses.append(
                    UnitStatus(
                        key=key,
                        name=spec.name,
                        state="quarantined",
                        cost=cost,
                        rounds_planned=spec.max_rounds,
                        attempts=attempts,
                    )
                )
                continue
            if not spool_path.exists():
                statuses.append(
                    UnitStatus(
                        key=key,
                        name=spec.name,
                        state="retrying" if attempts > 0 else "pending",
                        cost=cost,
                        rounds_planned=spec.max_rounds,
                        attempts=attempts,
                    )
                )
                continue
            digest = _spool_progress(spool_path)
            if digest["end_status"] == "error":
                state = "failed"
            elif digest["end_status"] is not None:
                # Sealed spool but no index entry: whether the worker
                # died between finalize and the store write barely
                # matters — the unit will re-run; report the durable
                # truth.
                state = "pending"
            elif digest["worker"] is not None and not _pid_alive(
                digest["worker"]
            ):
                state = "failed"
            else:
                state = "running"
            if state in ("pending", "failed") and attempts > 0:
                # Failed attempts are on durable record and the budget
                # is not exhausted — the supervised runner will retry.
                state = "retrying"
            statuses.append(
                UnitStatus(
                    key=key,
                    name=spec.name,
                    state=state,
                    cost=cost,
                    rounds_planned=spec.max_rounds,
                    rounds_done=digest["rounds_done"],
                    worker=digest["worker"],
                    duration_s=digest["duration_s"],
                    attempts=attempts,
                )
            )
        return CampaignStatus(
            campaign_name=self._campaign.name, units=tuple(statuses)
        )


def _format_duration(seconds: float) -> str:
    """Compact human duration: ``47s``, ``3m12s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
