"""Campaign aggregation: tables and grids from stored artifacts alone.

Everything here reads the campaign store through its repository API
(:class:`~repro.campaign.repository.CampaignRepository` — any backend)
and nothing else — no trainer, no prototype, no randomness — so a
finished (or half-finished) campaign can be re-analysed arbitrarily
often without re-running a single round of training.  That is the
workflow the paper's figures imply: run the expensive ``(K, E)`` sweep
once, then slice it.

* :func:`load_rows` — flatten every completed unit into one plain-dict
  row (the measurement snapshot plus the axis coordinates).
* :meth:`CampaignReport.energy_grid` — the Fig. 5/6 object: mean energy
  per ``(K, E)`` cell, seed-averaged, ``None`` where no run reached the
  target.
* :meth:`CampaignReport.best_plan` — the empirical ``(K*, E*)`` cell,
  i.e. the paper's headline extraction (the 49.8 % saving is this cell
  compared against ``(K=1, E=1)``).
* :meth:`CampaignReport.render` — the CLI's text report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.store import ArtifactStore
from repro.experiments.report import format_percent, render_table
from repro.obs.aggregate import CampaignTelemetry

__all__ = ["CampaignReport", "campaign_telemetry", "load_rows"]


def campaign_telemetry(store: ArtifactStore) -> CampaignTelemetry:
    """Fold every completed unit's stored telemetry into one reducer.

    Units that ran without telemetry contribute nothing; the returned
    :class:`~repro.obs.aggregate.CampaignTelemetry` is empty when the
    whole campaign ran dark.  Like everything in this module it reads
    the store alone — the campaign-wide energy ledger is reproducible
    from artifacts long after the worker processes are gone.
    """
    telemetry = CampaignTelemetry(store.campaign().name)
    for artifact in store.units():
        records = artifact.telemetry_records()
        if records is not None:
            telemetry.add_unit(
                artifact.key, artifact.name, records, artifact.result()
            )
    return telemetry


def load_rows(store: ArtifactStore) -> list[dict]:
    """One plain-dict row per completed unit, in index (key) order.

    Each row is the unit's ``result.json`` measurement snapshot with
    its content ``key`` added — everything the aggregations below need,
    without parsing the (much larger) per-round histories.
    """
    rows = []
    for artifact in store.units():
        row = dict(artifact.result())
        row["key"] = artifact.key
        rows.append(row)
    return rows


@dataclass(frozen=True)
class CampaignReport:
    """Aggregated view over one campaign's completed units.

    Build with :meth:`from_store`; all methods are pure functions of
    the loaded rows.
    """

    campaign_name: str
    rows: tuple[dict, ...]
    quarantined: tuple[dict, ...] = ()

    @classmethod
    def from_store(cls, store: ArtifactStore) -> "CampaignReport":
        """Load every completed unit's measurements from ``store``.

        Quarantined units contribute no measurement rows, but the
        report names them (with attempt counts and the last recorded
        error) so a degraded campaign can't masquerade as a complete
        one.
        """
        quarantined = []
        for key in sorted(store.quarantined_keys()):
            records = store.failure_records(key)
            last = records[-1] if records else {}
            quarantined.append(
                {
                    "key": key,
                    "name": last.get("unit", key),
                    "attempts": len(records),
                    "last_kind": last.get("kind", "?"),
                    "last_error": last.get("error", "?"),
                }
            )
        return cls(
            campaign_name=store.campaign().name,
            rows=tuple(load_rows(store)),
            quarantined=tuple(quarantined),
        )

    # ------------------------------------------------------------------
    # Aggregations.
    # ------------------------------------------------------------------
    def energy_grid(self) -> dict[tuple[int, int], float | None]:
        """Seed-averaged total energy per ``(K, E)`` cell.

        A cell is ``None`` when none of its runs reached the accuracy
        target (infeasible, matching the dashes in Figs. 5-6); runs in
        fixed-budget mode (``train_to_target=False``) always count.
        """
        sums: dict[tuple[int, int], list[float]] = {}
        seen: set[tuple[int, int]] = set()
        for row in self.rows:
            cell = (int(row["participants"]), int(row["epochs"]))
            seen.add(cell)
            if row["reached_target"] or not row.get("train_to_target", True):
                sums.setdefault(cell, []).append(float(row["total_energy_j"]))
        grid: dict[tuple[int, int], float | None] = {}
        for cell in seen:
            values = sums.get(cell)
            grid[cell] = sum(values) / len(values) if values else None
        return grid

    def energy_vs_participants(
        self, epochs: int
    ) -> dict[int, float | None]:
        """Fig. 5's series: ``K -> mean energy`` at fixed ``E``."""
        return {
            k: energy
            for (k, e), energy in sorted(self.energy_grid().items())
            if e == epochs
        }

    def energy_vs_epochs(self, participants: int) -> dict[int, float | None]:
        """Fig. 6's series: ``E -> mean energy`` at fixed ``K``."""
        return {
            e: energy
            for (k, e), energy in sorted(self.energy_grid().items())
            if k == participants
        }

    def best_plan(self) -> tuple[int, int] | None:
        """The feasible ``(K, E)`` cell with the lowest mean energy."""
        feasible = {
            cell: energy
            for cell, energy in self.energy_grid().items()
            if energy is not None
        }
        if not feasible:
            return None
        return min(feasible, key=feasible.__getitem__)

    def savings_vs(self, baseline: tuple[int, int] = (1, 1)) -> float | None:
        """Energy saving of the best cell vs a baseline cell.

        The paper's headline is this number with the default baseline:
        49.8 % saved at ``(K*, E*)`` relative to ``(K=1, E=1)``.
        Returns ``None`` when either cell is missing or infeasible.
        """
        grid = self.energy_grid()
        best = self.best_plan()
        if best is None:
            return None
        base_energy = grid.get(baseline)
        if base_energy is None or base_energy <= 0:
            return None
        return 1.0 - grid[best] / base_energy

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Full text report: per-unit table, energy grid, headline."""
        unit_rows = [
            [
                row["name"],
                row["backend"],
                row["rounds"],
                f"{row['total_energy_j']:.3f}",
                f"{row['wasted_energy_j']:.3f}",
                f"{row['final_accuracy']:.3f}",
                "yes" if row["reached_target"] else "-",
                row["degraded_rounds"],
            ]
            for row in self.rows
        ]
        units_table = render_table(
            [
                "unit",
                "backend",
                "rounds",
                "energy (J)",
                "wasted (J)",
                "final acc",
                "hit target",
                "degraded",
            ],
            unit_rows,
            title=(
                f"Campaign {self.campaign_name!r} — "
                f"{len(self.rows)} completed units"
            ),
        )
        grid = self.energy_grid()
        e_values = sorted({e for _, e in grid})
        k_values = sorted({k for k, _ in grid})
        grid_rows = []
        for k in k_values:
            cells = [
                f"{grid[(k, e)]:.3f}" if grid.get((k, e)) is not None else "-"
                for e in e_values
            ]
            grid_rows.append([k, *cells])
        grid_table = render_table(
            ["K \\ E", *(f"E={e}" for e in e_values)],
            grid_rows,
            title="Mean energy (J) per (K, E) cell — Fig. 5/6 grid",
        )
        lines = [units_table, "", grid_table]
        if self.quarantined:
            quarantine_rows = [
                [
                    entry["name"],
                    entry["attempts"],
                    entry["last_kind"],
                    entry["last_error"],
                ]
                for entry in self.quarantined
            ]
            lines += [
                "",
                render_table(
                    ["unit", "attempts", "kind", "last error"],
                    quarantine_rows,
                    title=(
                        f"QUARANTINED — {len(self.quarantined)} unit(s) "
                        "excluded from every aggregate above"
                    ),
                ),
            ]
        best = self.best_plan()
        if best is not None:
            lines.append(
                f"best plan: K={best[0]}, E={best[1]} "
                f"({grid[best]:.3f} J)"
            )
            savings = self.savings_vs()
            if savings is not None:
                lines.append(
                    "saving vs (K=1, E=1) baseline (paper: 49.8%): "
                    + format_percent(savings)
                )
        return "\n".join(lines)
