"""Declarative run and campaign specifications.

The paper's headline results are *sweeps*: Fig. 5 is a grid over ``K``,
Fig. 6 a grid over ``E``, Table I a grid over ``(E, n_k)``, and the
49.8 % saving is a comparison of two cells of that space.  After PRs 1-3
describing one such cell required stitching together three disjoint
config surfaces (:class:`~repro.experiments.config.ExperimentScale`,
:class:`~repro.fl.training.FederatedConfig`,
:class:`~repro.faults.policies.ResilienceConfig`) plus CLI flags.

This module unifies them:

* :class:`RunSpec` — one frozen, validated, JSON-round-trippable
  dataclass describing a complete testbed run: dataset/testbed sizes,
  ``(K, E)``, round budget and accuracy target, execution backend,
  fault plan and resilience policy, telemetry.  It *projects onto* the
  legacy trio (:meth:`RunSpec.scale`, :meth:`RunSpec.federated_config`,
  the ``resilience`` field) so every existing layer keeps working
  unchanged underneath.
* :class:`CampaignSpec` — a named grid over the axes the evaluations
  sweep (``K``, ``E``, seeds, backends, fault plans, resilience
  policies) that expands deterministically into :class:`RunSpec` units.

Both carry content-hashed keys (:meth:`RunSpec.key`,
:meth:`CampaignSpec.key`): the SHA-256 of the canonical JSON form.  The
key is the unit's identity in the on-disk artifact store, which is what
makes interrupted campaigns resumable — a completed unit is recognised
by its key and skipped, and because every unit is executed on a fresh,
independently-seeded testbed, the skip is bit-exact.  Result-neutral
execution knobs (``telemetry``, ``pool_workers``) are excluded from the
hash: they cannot change what a run computes, so toggling them on a
finished campaign must not invalidate its completed units.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.experiments.config import ExperimentScale
from repro.faults.models import FaultPlan
from repro.faults.policies import ResilienceConfig
from repro.fl.engine import AUTO_BACKEND, BACKENDS
from repro.fl.training import FederatedConfig

__all__ = [
    "RunSpec",
    "CampaignSpec",
    "FaultAxis",
    "ResilienceAxis",
    "make_demo_campaign",
]

_RUN_SCHEMA = "repro.run-spec/1"
_CAMPAIGN_SCHEMA = "repro.campaign-spec/1"

# Execution knobs that cannot change what a run computes (telemetry only
# records, pool_workers only partitions bit-identical work) and are
# therefore excluded from content keys: toggling them on a finished
# campaign must not force a retrain of already-computed cells.
_KEY_NEUTRAL_FIELDS = ("telemetry", "pool_workers")

# Fields added after schema v1 shipped.  At their defaults they describe
# exactly what the field's absence used to describe, so they are dropped
# from the identity projection — otherwise every key minted before the
# field existed would dangle and finished campaigns would retrain from
# scratch.  Non-default values *do* change results and enter the hash.
_DEFAULTED_IDENTITY_FIELDS = (("tiers", 0), ("population_dtype", "float64"))


def _canonical_json(data: dict) -> str:
    """Canonical JSON form: sorted keys, no whitespace."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _content_key(data: dict) -> str:
    """Content hash of a spec document (16 hex chars of SHA-256)."""
    return hashlib.sha256(_canonical_json(data).encode("utf-8")).hexdigest()[
        :16
    ]


@dataclass(frozen=True)
class RunSpec:
    """One complete, self-describing testbed run.

    This is the unified public configuration surface: everything the old
    ``ExperimentScale`` + ``FederatedConfig`` + ``ResilienceConfig``
    trio expressed (plus the backend/telemetry knobs that previously
    lived on CLI flags) in a single composable, serialisable object.

    Attributes:
        name: label used in campaign manifests and reports.
        n_train / n_test: synthetic-MNIST sizes.
        n_servers: testbed size ``N``.
        participants: the paper's ``K`` (edge servers per round).
        epochs: the paper's ``E`` (local epochs per round).
        max_rounds: round budget ``T_max``.
        target_accuracy: the accuracy level accuracy-driven runs train
            to (Figs. 5-6 use 92 % at paper scale).
        train_to_target: when ``True`` the run stops at
            ``target_accuracy``; when ``False`` it executes exactly
            ``max_rounds`` rounds (fixed-budget mode, used by the
            deterministic campaign tests).
        l2: L2 strength supplying the bound's strong convexity
            (see :class:`~repro.experiments.config.ExperimentScale`).
        seed: base seed for every derived random stream.
        noise_std: synthetic-MNIST pixel-noise level.
        dropout_probability / proximal_mu / overselection: forwarded to
            :class:`~repro.fl.training.FederatedConfig`.
        backend: execution engine (``sequential`` / ``batched`` /
            ``pool`` / ``population``, or ``auto`` for data-driven
            selection; see :mod:`repro.fl.engine`).
        pool_workers: worker count for the ``pool`` backend.
        tiers: fog aggregation tiers between edge and cloud; ``0``
            keeps the paper's flat (single-hop) aggregation.  Tiered
            folds match the flat mean to ``~1e-12``, not bit-for-bit,
            so a non-zero value changes the unit's identity key.
        population_dtype: compute dtype for the ``population`` backend
            (``float64`` default; ``float32`` halves memory at a
            documented accuracy delta and changes the identity key).
        telemetry: attach an :class:`~repro.obs.Observer` to the run and
            persist its event log next to the run's artifacts.
        fault_plan: optional declarative fault plan injected into the
            run (see :class:`~repro.faults.FaultPlan`).
        resilience: optional recovery policies (see
            :class:`~repro.faults.ResilienceConfig`).
    """

    name: str = "run"
    n_train: int = 2_000
    n_test: int = 600
    n_servers: int = 20
    participants: int = 1
    epochs: int = 1
    max_rounds: int = 150
    target_accuracy: float = 0.82
    train_to_target: bool = True
    l2: float = 1e-3
    seed: int = 0
    noise_std: float = 0.25
    dropout_probability: float = 0.0
    proximal_mu: float = 0.0
    overselection: int = 0
    backend: str = "sequential"
    pool_workers: int = 2
    tiers: int = 0
    population_dtype: str = "float64"
    telemetry: bool = False
    fault_plan: FaultPlan | None = None
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.participants < 1:
            raise ValueError(
                f"participants must be >= 1; got {self.participants}"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1; got {self.epochs}")
        if self.participants + self.overselection > self.n_servers:
            raise ValueError(
                f"participants + overselection = "
                f"{self.participants + self.overselection} exceeds "
                f"n_servers = {self.n_servers}"
            )
        if self.noise_std < 0:
            raise ValueError(
                f"noise_std must be non-negative; got {self.noise_std}"
            )
        if self.backend not in BACKENDS and self.backend != AUTO_BACKEND:
            raise ValueError(
                f"backend must be one of {BACKENDS} or {AUTO_BACKEND!r}; "
                f"got {self.backend!r}"
            )
        if self.tiers < 0:
            raise ValueError(f"tiers must be >= 0; got {self.tiers}")
        # Delegate the remaining range checks to the legacy constructors
        # so RunSpec can never describe a run they would reject.
        self.scale()
        self.federated_config()

    # ------------------------------------------------------------------
    # Projections onto the legacy configuration trio.
    # ------------------------------------------------------------------
    def scale(self) -> ExperimentScale:
        """The :class:`ExperimentScale` slice of this spec."""
        return ExperimentScale(
            name=self.name,
            n_train=self.n_train,
            n_test=self.n_test,
            n_servers=self.n_servers,
            max_rounds=self.max_rounds,
            target_accuracy=self.target_accuracy,
            l2=self.l2,
            seed=self.seed,
        )

    def federated_config(self) -> FederatedConfig:
        """The :class:`FederatedConfig` slice of this spec."""
        scale = self.scale()
        return FederatedConfig(
            n_rounds=self.max_rounds,
            participants_per_round=self.participants,
            local_epochs=self.epochs,
            sgd=scale.sgd_config(),
            target_accuracy=(
                self.target_accuracy if self.train_to_target else None
            ),
            dropout_probability=self.dropout_probability,
            proximal_mu=self.proximal_mu,
            overselection=self.overselection,
            seed=self.seed,
            backend=self.backend,
            pool_workers=self.pool_workers,
            population_dtype=self.population_dtype,
        )

    @classmethod
    def from_components(
        cls,
        scale: ExperimentScale,
        federated: FederatedConfig | None = None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        **overrides,
    ) -> "RunSpec":
        """Assemble a spec from the legacy config trio.

        This is the migration path for code holding the old objects:
        the scale contributes sizes/seed/target, an optional federated
        config contributes ``(K, E)`` and the training knobs, and the
        fault/resilience objects ride along unchanged.  Keyword
        ``overrides`` win over every derived field.
        """
        fields: dict = {
            "name": scale.name,
            "n_train": scale.n_train,
            "n_test": scale.n_test,
            "n_servers": scale.n_servers,
            "max_rounds": scale.max_rounds,
            "target_accuracy": scale.target_accuracy,
            "l2": scale.l2,
            "seed": scale.seed,
            "fault_plan": fault_plan,
            "resilience": resilience,
        }
        if federated is not None:
            fields.update(
                participants=federated.participants_per_round,
                epochs=federated.local_epochs,
                max_rounds=federated.n_rounds,
                train_to_target=federated.target_accuracy is not None,
                dropout_probability=federated.dropout_probability,
                proximal_mu=federated.proximal_mu,
                overselection=federated.overselection,
                seed=federated.seed,
                backend=federated.backend,
                pool_workers=federated.pool_workers,
                population_dtype=federated.population_dtype,
            )
            if federated.target_accuracy is not None:
                fields["target_accuracy"] = federated.target_accuracy
        fields.update(overrides)
        return cls(**fields)

    # ------------------------------------------------------------------
    # Serialisation and identity.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "schema": _RUN_SCHEMA,
            "name": str(self.name),
            "n_train": int(self.n_train),
            "n_test": int(self.n_test),
            "n_servers": int(self.n_servers),
            "participants": int(self.participants),
            "epochs": int(self.epochs),
            "max_rounds": int(self.max_rounds),
            "target_accuracy": float(self.target_accuracy),
            "train_to_target": bool(self.train_to_target),
            "l2": float(self.l2),
            "seed": int(self.seed),
            "noise_std": float(self.noise_std),
            "dropout_probability": float(self.dropout_probability),
            "proximal_mu": float(self.proximal_mu),
            "overselection": int(self.overselection),
            "backend": str(self.backend),
            "pool_workers": int(self.pool_workers),
            "tiers": int(self.tiers),
            "population_dtype": str(self.population_dtype),
            "telemetry": bool(self.telemetry),
            "fault_plan": (
                None if self.fault_plan is None else self.fault_plan.to_dict()
            ),
            "resilience": (
                None if self.resilience is None else self.resilience.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(f"run spec must be a dict; got {type(data)}")
        schema = data.get("schema", _RUN_SCHEMA)
        if schema != _RUN_SCHEMA:
            raise ValueError(
                f"unexpected run-spec schema {schema!r}; "
                f"expected {_RUN_SCHEMA!r}"
            )
        try:
            return cls(
                name=str(data["name"]),
                n_train=int(data["n_train"]),
                n_test=int(data["n_test"]),
                n_servers=int(data["n_servers"]),
                participants=int(data["participants"]),
                epochs=int(data["epochs"]),
                max_rounds=int(data["max_rounds"]),
                target_accuracy=float(data["target_accuracy"]),
                train_to_target=bool(data["train_to_target"]),
                l2=float(data["l2"]),
                seed=int(data["seed"]),
                noise_std=float(data["noise_std"]),
                dropout_probability=float(data["dropout_probability"]),
                proximal_mu=float(data["proximal_mu"]),
                overselection=int(data["overselection"]),
                backend=str(data["backend"]),
                pool_workers=int(data["pool_workers"]),
                # Post-v1 fields: absent in documents written before
                # they existed, where absence means the default.
                tiers=int(data.get("tiers", 0)),
                population_dtype=str(
                    data.get("population_dtype", "float64")
                ),
                telemetry=bool(data["telemetry"]),
                fault_plan=(
                    None
                    if data["fault_plan"] is None
                    else FaultPlan.from_dict(data["fault_plan"])
                ),
                resilience=(
                    None
                    if data["resilience"] is None
                    else ResilienceConfig.from_dict(data["resilience"])
                ),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed run spec: {error}") from None

    def to_json(self, indent: int | None = None) -> str:
        """JSON form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def identity_dict(self) -> dict:
        """:meth:`to_dict` minus the result-neutral execution knobs.

        This is the projection the content hash covers: every field that
        can change what the run computes, and nothing that merely
        changes how it is executed or observed (``telemetry``,
        ``pool_workers``).  Post-v1 fields (``tiers``,
        ``population_dtype``) are dropped at their default values so
        keys minted before those fields existed keep resolving; away
        from the defaults they change results and enter the hash.
        """
        doc = self.to_dict()
        for field_name in _KEY_NEUTRAL_FIELDS:
            del doc[field_name]
        for field_name, default in _DEFAULTED_IDENTITY_FIELDS:
            if doc[field_name] == default:
                del doc[field_name]
        return doc

    def key(self) -> str:
        """Deterministic content hash identifying this unit.

        Two specs with equal field values always share a key regardless
        of construction order or process; any semantic change (a
        different seed, backend, fault plan, ...) changes it, while
        result-neutral knobs (``telemetry``, ``pool_workers``) do not —
        so enabling telemetry on a finished campaign never forces a
        retrain.  The artifact store uses the key as the unit's
        directory name and the resume logic as its completed-work
        identity.
        """
        return _content_key(self.identity_dict())


@dataclass(frozen=True)
class FaultAxis:
    """One labelled point on a campaign's fault-plan axis."""

    label: str
    plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("fault-axis label must be non-empty")

    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "label": self.label,
            "plan": None if self.plan is None else self.plan.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultAxis":
        """Rebuild an axis point from :meth:`to_dict` output."""
        try:
            plan = data["plan"]
            return cls(
                label=str(data["label"]),
                plan=None if plan is None else FaultPlan.from_dict(plan),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed fault axis: {error}") from None


@dataclass(frozen=True)
class ResilienceAxis:
    """One labelled point on a campaign's resilience axis."""

    label: str
    config: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("resilience-axis label must be non-empty")

    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "label": self.label,
            "config": (
                None if self.config is None else self.config.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceAxis":
        """Rebuild an axis point from :meth:`to_dict` output."""
        try:
            config = data["config"]
            return cls(
                label=str(data["label"]),
                config=(
                    None
                    if config is None
                    else ResilienceConfig.from_dict(config)
                ),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed resilience axis: {error}") from None


@dataclass(frozen=True)
class CampaignSpec:
    """A named grid of runs over the axes the paper's evaluations sweep.

    Every axis left empty pins that dimension to the ``base`` spec's
    value, so a ``CampaignSpec`` with all axes empty is a campaign of
    exactly one unit.  :meth:`expand` produces the units in a fixed
    deterministic order (participants, then epochs, then seeds, then
    backends, then fault plans, then resilience policies — row-major),
    which the runner, store, and reports all rely on.

    Attributes:
        name: campaign label (also the prefix of every unit name).
        base: defaults shared by every unit.
        participants: swept ``K`` values (Fig. 5's axis).
        epochs: swept ``E`` values (Fig. 6's axis).
        seeds: swept base seeds (multi-seed replication).
        backends: swept execution engines (``auto`` allowed).
        tiers: swept fog-tier counts (``0`` = flat aggregation).  Unit
            names carry a ``-T{t}`` suffix only for non-zero points, so
            campaigns that never sweep tiers keep their exact pre-tiers
            unit names.
        faults: labelled fault-plan axis (``FaultAxis`` points).
        resiliences: labelled resilience-policy axis.
    """

    name: str
    base: RunSpec = field(default_factory=RunSpec)
    participants: tuple[int, ...] = ()
    epochs: tuple[int, ...] = ()
    seeds: tuple[int, ...] = ()
    backends: tuple[str, ...] = ()
    tiers: tuple[int, ...] = ()
    faults: tuple[FaultAxis, ...] = ()
    resiliences: tuple[ResilienceAxis, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        # Normalise list inputs (e.g. straight from JSON) to tuples so
        # the spec is hashable and its canonical form is stable.
        for attr in (
            "participants",
            "epochs",
            "seeds",
            "backends",
            "tiers",
            "faults",
            "resiliences",
        ):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        for axis_name in (
            "participants",
            "epochs",
            "seeds",
            "backends",
            "tiers",
        ):
            values = getattr(self, axis_name)
            if len(values) != len(set(values)):
                raise ValueError(f"duplicate values on axis {axis_name!r}")
        for axis_name in ("faults", "resiliences"):
            labels = [point.label for point in getattr(self, axis_name)]
            if len(labels) != len(set(labels)):
                raise ValueError(f"duplicate labels on axis {axis_name!r}")
        for backend in self.backends:
            if backend not in BACKENDS and backend != AUTO_BACKEND:
                raise ValueError(
                    f"backend must be one of {BACKENDS} or "
                    f"{AUTO_BACKEND!r}; got {backend!r}"
                )
        # Fail at declaration time, not mid-campaign: every grid cell
        # must be a valid RunSpec.
        for unit in self.expand():
            unit.key()

    def axis_sizes(self) -> dict[str, int]:
        """Effective length of each axis (empty axes count 1)."""
        return {
            "participants": max(1, len(self.participants)),
            "epochs": max(1, len(self.epochs)),
            "seeds": max(1, len(self.seeds)),
            "backends": max(1, len(self.backends)),
            "tiers": max(1, len(self.tiers)),
            "faults": max(1, len(self.faults)),
            "resiliences": max(1, len(self.resiliences)),
        }

    def __len__(self) -> int:
        total = 1
        for size in self.axis_sizes().values():
            total *= size
        return total

    def expand(self) -> tuple[RunSpec, ...]:
        """The campaign's units, in deterministic row-major axis order."""
        k_axis = self.participants or (self.base.participants,)
        e_axis = self.epochs or (self.base.epochs,)
        seed_axis = self.seeds or (self.base.seed,)
        backend_axis = self.backends or (self.base.backend,)
        tier_axis = self.tiers or (self.base.tiers,)
        fault_axis = self.faults or (
            FaultAxis(label="base", plan=self.base.fault_plan),
        )
        res_axis = self.resiliences or (
            ResilienceAxis(label="base", config=self.base.resilience),
        )
        units = []
        for k, e, seed, backend, tier, fault, res in itertools.product(
            k_axis,
            e_axis,
            seed_axis,
            backend_axis,
            tier_axis,
            fault_axis,
            res_axis,
        ):
            # Flat aggregation (tier 0) keeps the historical name form
            # so pre-tiers campaign manifests stay byte-identical.
            tier_tag = f"-T{tier}" if tier else ""
            unit_name = (
                f"{self.name}/K{k}-E{e}-s{seed}-{backend}{tier_tag}"
                f"-f.{fault.label}-r.{res.label}"
            )
            units.append(
                replace(
                    self.base,
                    name=unit_name,
                    participants=k,
                    epochs=e,
                    seed=seed,
                    backend=backend,
                    tiers=tier,
                    fault_plan=fault.plan,
                    resilience=res.config,
                )
            )
        return tuple(units)

    # ------------------------------------------------------------------
    # Serialisation and identity.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "schema": _CAMPAIGN_SCHEMA,
            "name": str(self.name),
            "base": self.base.to_dict(),
            "participants": [int(k) for k in self.participants],
            "epochs": [int(e) for e in self.epochs],
            "seeds": [int(s) for s in self.seeds],
            "backends": [str(b) for b in self.backends],
            "tiers": [int(t) for t in self.tiers],
            "faults": [point.to_dict() for point in self.faults],
            "resiliences": [point.to_dict() for point in self.resiliences],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Rebuild a campaign from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise ValueError(f"campaign spec must be a dict; got {type(data)}")
        schema = data.get("schema", _CAMPAIGN_SCHEMA)
        if schema != _CAMPAIGN_SCHEMA:
            raise ValueError(
                f"unexpected campaign-spec schema {schema!r}; "
                f"expected {_CAMPAIGN_SCHEMA!r}"
            )
        try:
            return cls(
                name=str(data["name"]),
                base=RunSpec.from_dict(data["base"]),
                participants=tuple(int(k) for k in data["participants"]),
                epochs=tuple(int(e) for e in data["epochs"]),
                seeds=tuple(int(s) for s in data["seeds"]),
                backends=tuple(str(b) for b in data["backends"]),
                tiers=tuple(int(t) for t in data.get("tiers", ())),
                faults=tuple(
                    FaultAxis.from_dict(point) for point in data["faults"]
                ),
                resiliences=tuple(
                    ResilienceAxis.from_dict(point)
                    for point in data["resiliences"]
                ),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed campaign spec: {error}") from None

    def to_json(self, indent: int | None = None) -> str:
        """JSON form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the campaign spec to a JSON file."""
        Path(path).write_text(self.to_json(indent=2) + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        """Read a campaign spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def key(self) -> str:
        """Deterministic content hash identifying this campaign.

        Like :meth:`RunSpec.key`, the hash covers the identity
        projection of the base spec, so toggling a result-neutral knob
        (``telemetry``, ``pool_workers``) on a finished campaign keeps
        the store's campaign binding — and resume — intact.  The
        post-v1 ``tiers`` axis is dropped when empty for the same
        reason: an un-swept axis describes exactly what its absence
        used to.
        """
        doc = self.to_dict()
        doc["base"] = self.base.identity_dict()
        if not doc["tiers"]:
            del doc["tiers"]
        return _content_key(doc)


def make_demo_campaign(
    name: str = "demo",
    n_servers: int = 8,
    n_train: int = 800,
    n_test: int = 200,
    max_rounds: int = 5,
    participants: tuple[int, ...] = (1, 2, 4, 8),
    epochs: tuple[int, ...] = (1, 5, 20),
    seeds: tuple[int, ...] = (0,),
    backend: str = "sequential",
) -> CampaignSpec:
    """A small, fast ``(K, E)`` energy-grid campaign.

    The default grid is a reduced Fig. 5/6 reproduction: a fixed-budget
    sweep over ``K x E`` on an 8-server testbed, small enough for smoke
    tests and the ``campaign init`` CLI template while still exhibiting
    the interior-optimal shapes the paper reports at full scale.
    """
    base = RunSpec(
        name=name,
        n_train=n_train,
        n_test=n_test,
        n_servers=n_servers,
        max_rounds=max_rounds,
        target_accuracy=0.82,
        train_to_target=False,
        backend=backend,
    )
    return CampaignSpec(
        name=name,
        base=base,
        participants=participants,
        epochs=epochs,
        seeds=seeds,
    )
