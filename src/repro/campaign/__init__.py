"""Campaign orchestration: declare, execute, interrupt, resume sweeps.

The paper's evaluation *is* a campaign — a grid over ``(K, E)``, seeds,
and failure scenarios, trained to a fixed accuracy and priced in joules.
This package makes that a first-class object instead of a pile of
per-figure scripts:

* :class:`~repro.campaign.spec.RunSpec` — the unified public run
  configuration (supersedes the ``ExperimentScale`` +
  ``FederatedConfig`` + ``ResilienceConfig`` trio; those remain as thin
  projections of it).
* :class:`~repro.campaign.spec.CampaignSpec` — a named, JSON-serialisable
  grid over K/E/seed/backend/fault-plan/resilience axes that expands
  into deterministic :class:`RunSpec` units with content-hashed keys.
* :class:`~repro.campaign.runner.CampaignRunner` — executes units on
  fresh testbeds (any :mod:`repro.fl.engine` backend), checkpointing
  each into an :class:`~repro.campaign.store.ArtifactStore`; interrupted
  campaigns resume bit-identically by skipping completed keys.
* :class:`~repro.campaign.repository.CampaignRepository` /
  :func:`~repro.campaign.repository.open_store` — the storage API.
  Two index backends implement it: the JSON manifest (compatibility)
  and a WAL-mode SQLite index for large grids;
  :func:`~repro.campaign.repository.migrate_store` converts between
  them byte-identically.
* :class:`~repro.campaign.report.CampaignReport` — regenerates the
  Fig. 5/6 energy grids and the best-``(K, E)`` headline from stored
  artifacts alone, without re-running any training.

Campaign passes are *supervised* by default: failed units retry with
deterministic backoff, hung workers are reclaimed by a watchdog, broken
process pools are rebuilt, and units that exhaust their budget are
quarantined with durable failure records instead of sinking the sweep.
``repro campaign doctor`` audits (and with ``--repair`` self-heals) a
store that crashed mid-write.

CLI: ``python -m repro campaign {init,run,status,report,doctor,migrate}``.
"""

from repro.campaign.report import CampaignReport, campaign_telemetry, load_rows
from repro.campaign.repository import (
    CampaignRepository,
    MigrationResult,
    migrate_store,
    open_store,
)
from repro.campaign.runner import (
    DEFAULT_SUPERVISION,
    CampaignRunner,
    CampaignRunSummary,
    ParallelUnitError,
    UnitOutcome,
    UnitVerificationError,
)
from repro.campaign.spec import (
    CampaignSpec,
    FaultAxis,
    ResilienceAxis,
    RunSpec,
    make_demo_campaign,
)
from repro.campaign.sqlite_store import SqliteArtifactStore
from repro.campaign.status import CampaignStatus, CampaignStatusMonitor, UnitStatus
from repro.campaign.store import (
    ArtifactStore,
    DoctorReport,
    JsonArtifactStore,
    StoreError,
    StoreHealthReport,
    UnitArtifact,
    detect_backend,
)
from repro.perf.scheduler import SupervisionPolicy

__all__ = [
    "ArtifactStore",
    "CampaignReport",
    "CampaignRepository",
    "CampaignRunSummary",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "CampaignStatusMonitor",
    "DEFAULT_SUPERVISION",
    "DoctorReport",
    "FaultAxis",
    "JsonArtifactStore",
    "MigrationResult",
    "ParallelUnitError",
    "ResilienceAxis",
    "RunSpec",
    "SqliteArtifactStore",
    "StoreError",
    "StoreHealthReport",
    "SupervisionPolicy",
    "UnitArtifact",
    "UnitOutcome",
    "UnitStatus",
    "UnitVerificationError",
    "campaign_telemetry",
    "detect_backend",
    "load_rows",
    "make_demo_campaign",
    "migrate_store",
    "open_store",
]
