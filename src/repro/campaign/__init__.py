"""Campaign orchestration: declare, execute, interrupt, resume sweeps.

The paper's evaluation *is* a campaign — a grid over ``(K, E)``, seeds,
and failure scenarios, trained to a fixed accuracy and priced in joules.
This package makes that a first-class object instead of a pile of
per-figure scripts:

* :class:`~repro.campaign.spec.RunSpec` — the unified public run
  configuration (supersedes the ``ExperimentScale`` +
  ``FederatedConfig`` + ``ResilienceConfig`` trio; those remain as thin
  projections of it).
* :class:`~repro.campaign.spec.CampaignSpec` — a named, JSON-serialisable
  grid over K/E/seed/backend/fault-plan/resilience axes that expands
  into deterministic :class:`RunSpec` units with content-hashed keys.
* :class:`~repro.campaign.runner.CampaignRunner` — executes units on
  fresh testbeds (any :mod:`repro.fl.engine` backend), checkpointing
  each into an :class:`~repro.campaign.store.ArtifactStore`; interrupted
  campaigns resume bit-identically by skipping completed keys.
* :class:`~repro.campaign.report.CampaignReport` — regenerates the
  Fig. 5/6 energy grids and the best-``(K, E)`` headline from stored
  artifacts alone, without re-running any training.

Campaign passes are *supervised* by default: failed units retry with
deterministic backoff, hung workers are reclaimed by a watchdog, broken
process pools are rebuilt, and units that exhaust their budget are
quarantined with durable failure records instead of sinking the sweep.
``repro campaign doctor`` audits (and with ``--repair`` self-heals) a
store that crashed mid-write.

CLI: ``python -m repro campaign {init,run,status,report,doctor}``.
"""

from repro.campaign.report import CampaignReport, campaign_telemetry, load_rows
from repro.campaign.runner import (
    DEFAULT_SUPERVISION,
    CampaignRunner,
    CampaignRunSummary,
    ParallelUnitError,
    UnitOutcome,
    UnitVerificationError,
)
from repro.campaign.spec import (
    CampaignSpec,
    FaultAxis,
    ResilienceAxis,
    RunSpec,
    make_demo_campaign,
)
from repro.campaign.status import CampaignStatus, UnitStatus
from repro.campaign.store import (
    ArtifactStore,
    DoctorReport,
    StoreError,
    UnitArtifact,
)
from repro.perf.scheduler import SupervisionPolicy

__all__ = [
    "ArtifactStore",
    "CampaignReport",
    "CampaignRunSummary",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "DEFAULT_SUPERVISION",
    "DoctorReport",
    "FaultAxis",
    "ParallelUnitError",
    "ResilienceAxis",
    "RunSpec",
    "StoreError",
    "SupervisionPolicy",
    "UnitArtifact",
    "UnitOutcome",
    "UnitStatus",
    "UnitVerificationError",
    "campaign_telemetry",
    "load_rows",
    "make_demo_campaign",
]
