"""SQLite-indexed campaign store backend (``manifest.db``, WAL mode).

The JSON manifest backend re-parses its whole document per lookup and
serialises every writer on one advisory flock — O(n) work and a global
lock on the parallel runner's hot path.  This backend replaces the
manifest *document* with a SQLite database:

* one ``units`` row per completed unit, keyed by the unit's content
  hash, with the per-file SHA-256 checksums as columns — so
  ``contains`` is an O(log n) clustered-primary-key probe and key
  scans are index-ordered range reads, independent of how much else
  the store holds;
* WAL (write-ahead-log) journal mode, so concurrent runner processes
  commit single-row transactions without queuing on a store-wide file
  lock — readers never block writers and writers never block readers;
* ``campaign.json``, ``units/``, ``quarantine/``, ``heartbeats/`` and
  ``spools/`` exactly as the JSON backend lays them out — only the
  *index* differs, so every store invariant (kill-and-resume
  byte-identity, parallel-vs-sequential equivalence, quarantine
  semantics, doctor repair) carries over unchanged.

Connections are opened per operation and closed before returning.
That costs a few tens of microseconds per call but buys fork safety:
the process-pool runner forks workers, and a SQLite connection (with
its POSIX fcntl locks, which die with *any* fd close in the process)
must never cross a fork.  Closing the last connection also
auto-checkpoints and removes the ``-wal``/``-shm`` sidecars, so a
store at rest is ``manifest.db`` alone.

Raw database bytes are not deterministic (page layout depends on
operation order), so cross-store comparisons use the *logical* index:
:meth:`SqliteArtifactStore.manifest` renders the same canonical
document the JSON backend stores, and ``index_digest()`` hashes it.
"""

from __future__ import annotations

import json
from contextlib import closing
from pathlib import Path

try:
    import sqlite3
except ImportError:  # pragma: no cover - stdlib sqlite absent
    sqlite3 = None  # type: ignore[assignment]

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    ArtifactStore,
    StoreError,
    _INDEX_DB_FILE,
    _MANIFEST_SCHEMA,
)

__all__ = ["SqliteArtifactStore"]

#: Manifest filenames whose checksums live in dedicated columns.  Any
#: other recorded file rides in the ``extra`` JSON column, so the row
#: schema never constrains what a unit may store.
_FILE_COLUMNS = {
    "spec.json": "spec_sha256",
    "history.json": "history_sha256",
    "result.json": "result_sha256",
    "telemetry.jsonl": "telemetry_sha256",
}

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS units (
    key TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    spec_sha256 TEXT,
    history_sha256 TEXT,
    result_sha256 TEXT,
    telemetry_sha256 TEXT,
    extra TEXT NOT NULL DEFAULT '{}'
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_units_name ON units (name);
"""

_UPSERT_SQL = """
INSERT INTO units (
    key, name, spec_sha256, history_sha256, result_sha256,
    telemetry_sha256, extra
) VALUES (?, ?, ?, ?, ?, ?, ?)
ON CONFLICT (key) DO UPDATE SET
    name = excluded.name,
    spec_sha256 = excluded.spec_sha256,
    history_sha256 = excluded.history_sha256,
    result_sha256 = excluded.result_sha256,
    telemetry_sha256 = excluded.telemetry_sha256,
    extra = excluded.extra
"""

_ROW_COLUMNS = (
    "key, name, spec_sha256, history_sha256, result_sha256, "
    "telemetry_sha256, extra"
)


def _entry_to_row(key: str, entry: dict) -> tuple:
    columns = dict.fromkeys(_FILE_COLUMNS.values())
    extra = {}
    for filename, digest in entry.get("files", {}).items():
        column = _FILE_COLUMNS.get(filename)
        if column is not None:
            columns[column] = digest
        else:
            extra[filename] = digest
    return (
        key,
        entry["name"],
        columns["spec_sha256"],
        columns["history_sha256"],
        columns["result_sha256"],
        columns["telemetry_sha256"],
        json.dumps(extra, sort_keys=True),
    )


def _row_to_entry(row: tuple) -> tuple[str, dict]:
    key, name = row[0], row[1]
    files = {}
    for filename, position in zip(_FILE_COLUMNS, range(2, 6)):
        if row[position] is not None:
            files[filename] = row[position]
    files.update(json.loads(row[6]))
    # Filename order must match what record_unit writes so the
    # canonical manifest document is backend-independent byte-for-byte
    # (json.dumps(sort_keys=True) re-sorts anyway; this keeps the
    # un-sorted dict shape identical too).
    return key, {"name": name, "files": dict(sorted(files.items()))}


class SqliteArtifactStore(ArtifactStore):
    """Campaign artifact store indexed by a WAL-mode SQLite database.

    Same artifact layout and invariants as
    :class:`~repro.campaign.store.JsonArtifactStore`; only the
    completed-unit index differs (``manifest.db`` instead of
    ``manifest.json``).  Construct directly, or let
    ``ArtifactStore(root)`` auto-detect from disk, or pass
    ``backend="sqlite"`` / set ``REPRO_STORE_BACKEND=sqlite`` for new
    stores.
    """

    backend_name = "sqlite"
    index_filename = _INDEX_DB_FILE

    def __init__(self, root: str | Path, backend: str | None = None) -> None:
        if sqlite3 is None:  # pragma: no cover - stdlib sqlite absent
            raise StoreError(
                "the sqlite store backend needs the stdlib sqlite3 module, "
                "which this python build lacks; use the json backend"
            )
        super().__init__(root, backend)

    # ------------------------------------------------------------------
    # Connection plumbing.
    # ------------------------------------------------------------------
    def _db_path(self) -> Path:
        return self.root / _INDEX_DB_FILE

    def _connect(self, create: bool = False) -> "sqlite3.Connection":
        """Open a fresh connection (per-operation; see module docstring)."""
        path = self._db_path()
        if not create and not path.exists():
            raise StoreError(f"no manifest at {self.root}")
        connection = sqlite3.connect(path, timeout=30.0, isolation_level=None)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA busy_timeout=30000")
            # WAL + NORMAL is durable against process crash (the
            # paper-scale failure mode the chaos suite injects); only a
            # power loss can lose the tail of the log, and campaigns
            # re-run missing units.
            connection.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError as error:
            connection.close()
            raise StoreError(f"corrupt manifest index at {path}: {error}")
        return connection

    # ------------------------------------------------------------------
    # Index hooks.
    # ------------------------------------------------------------------
    def _index_exists(self) -> bool:
        return self._db_path().exists()

    def _index_create(self, campaign: CampaignSpec) -> None:
        with closing(self._connect(create=True)) as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.executescript(_SCHEMA_SQL)
            connection.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                [
                    ("schema", _MANIFEST_SCHEMA),
                    ("campaign_key", campaign.key()),
                    ("campaign_name", campaign.name),
                ],
            )
            connection.commit()

    def _meta(self, connection: "sqlite3.Connection") -> dict[str, str]:
        rows = connection.execute("SELECT key, value FROM meta").fetchall()
        meta = dict(rows)
        if meta.get("schema") != _MANIFEST_SCHEMA:
            raise StoreError(
                f"unexpected manifest schema {meta.get('schema')!r}"
            )
        return meta

    def _index_entries(self) -> dict[str, dict]:
        with closing(self._connect()) as connection:
            rows = connection.execute(
                f"SELECT {_ROW_COLUMNS} FROM units ORDER BY key"
            ).fetchall()
        return dict(_row_to_entry(row) for row in rows)

    def _index_get(self, key: str) -> dict | None:
        with closing(self._connect()) as connection:
            row = connection.execute(
                f"SELECT {_ROW_COLUMNS} FROM units WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        return _row_to_entry(row)[1]

    def _index_put(self, key: str, entry: dict) -> None:
        with closing(self._connect()) as connection:
            connection.execute(_UPSERT_SQL, _entry_to_row(key, entry))

    def _index_delete(self, key: str) -> None:
        with closing(self._connect()) as connection:
            connection.execute("DELETE FROM units WHERE key = ?", (key,))

    def _index_bulk_put(self, entries: dict[str, dict]) -> None:
        rows = [_entry_to_row(key, entry) for key, entry in entries.items()]
        with closing(self._connect()) as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.executemany(_UPSERT_SQL, rows)
            connection.commit()

    def _index_contains(self, key: str) -> bool:
        with closing(self._connect()) as connection:
            row = connection.execute(
                "SELECT 1 FROM units WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def _index_count(self) -> int:
        with closing(self._connect()) as connection:
            return connection.execute("SELECT COUNT(*) FROM units").fetchone()[0]

    def _index_keys(self, prefix: str | None = None) -> list[str]:
        with closing(self._connect()) as connection:
            if prefix is None:
                rows = connection.execute(
                    "SELECT key FROM units ORDER BY key"
                ).fetchall()
            else:
                # Content keys are lowercase hex, so a prefix names the
                # contiguous key range [prefix, prefix + '￿') — an
                # indexed range scan, not a table scan.
                rows = connection.execute(
                    "SELECT key FROM units WHERE key >= ? AND key < ? "
                    "ORDER BY key",
                    (prefix, prefix + "￿"),
                ).fetchall()
        return [row[0] for row in rows]

    def manifest(self) -> dict:
        """The canonical index document (same shape as ``manifest.json``)."""
        with closing(self._connect()) as connection:
            meta = self._meta(connection)
            rows = connection.execute(
                f"SELECT {_ROW_COLUMNS} FROM units ORDER BY key"
            ).fetchall()
        return {
            "schema": meta["schema"],
            "campaign_key": meta["campaign_key"],
            "campaign_name": meta["campaign_name"],
            "units": dict(_row_to_entry(row) for row in rows),
        }
