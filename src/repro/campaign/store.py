"""On-disk campaign artifact store: checkpoint, verify, resume.

Energy sweeps at paper scale take hours; a campaign must survive being
killed.  The store checkpoints every completed unit as it finishes:

.. code-block:: text

    <root>/
      campaign.json            # the CampaignSpec this store belongs to
      manifest.json            # completed units: key -> files + checksums
      units/<unit key>/
        spec.json              # the unit's RunSpec
        history.json           # repro.fl.history_io document
        result.json            # energy/rounds/accuracy measurements
        telemetry.jsonl        # optional per-unit event log

A unit is *complete* exactly when the manifest lists it — the unit files
are written first and the manifest last (atomically, via a temp file and
``os.replace``), so a crash mid-unit leaves at worst an orphaned
directory that the next run overwrites.  The manifest records a SHA-256
checksum of every artifact file, and :meth:`ArtifactStore.verify`
re-hashes them so silent corruption is detected before a resumed
campaign or a report trusts stale bytes.

The manifest is a shared read-modify-write point: two ``campaign run``
processes pointed at the same store both pass :meth:`initialize` (same
campaign key) and would otherwise interleave manifest rewrites, silently
dropping each other's completed-unit entries.  Every manifest update —
and initialisation itself — therefore happens under an advisory
``flock`` on ``<root>/.lock``, which serialises writers across processes
(and threads) on POSIX; on platforms without ``fcntl`` the store falls
back to the single-writer assumption.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.fl.history_io import history_from_json, history_to_json
from repro.fl.metrics import TrainingHistory

__all__ = ["ArtifactStore", "UnitArtifact", "StoreError", "DoctorReport"]

_MANIFEST_SCHEMA = "repro.campaign-manifest/1"
_FAILURE_SCHEMA = "repro.failure-record/1"
_CAMPAIGN_FILE = "campaign.json"
_MANIFEST_FILE = "manifest.json"
_UNITS_DIR = "units"
_SPOOLS_DIR = "spools"
_QUARANTINE_DIR = "quarantine"
_HEARTBEATS_DIR = "heartbeats"
_ARTIFACTS_SUBDIR = "artifacts"
_SPEC_FILE = "spec.json"
_HISTORY_FILE = "history.json"
_RESULT_FILE = "result.json"
_TELEMETRY_FILE = "telemetry.jsonl"
_LOCK_FILE = ".lock"
_ATTEMPT_PATTERN = re.compile(r"^attempt-(\d+)\.json$")


class StoreError(RuntimeError):
    """A campaign artifact store is missing, mismatched, or corrupt."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` so readers never observe a half-written file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


@contextmanager
def _exclusive_lock(path: Path):
    """Hold an advisory exclusive ``flock`` on ``path``.

    ``flock`` locks belong to the open file description, so every
    acquisition opens the file afresh — which serialises concurrent
    writers across processes *and* across threads within one process.
    No-op where ``fcntl`` is unavailable (single-writer assumed).
    """
    if fcntl is None:
        yield
        return
    with open(path, "a", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class UnitArtifact:
    """Lazy handle onto one completed unit's artifacts.

    Parsing a history is much more expensive than reading a manifest
    row, so reports iterate these handles and load only what they use.
    """

    def __init__(self, store: "ArtifactStore", key: str, entry: dict) -> None:
        self._store = store
        self.key = key
        self.name = entry["name"]
        self._entry = entry

    @property
    def directory(self) -> Path:
        """The unit's artifact directory."""
        return self._store.unit_dir(self.key)

    def spec(self) -> RunSpec:
        """The unit's :class:`RunSpec`."""
        return RunSpec.from_json(
            (self.directory / _SPEC_FILE).read_text(encoding="utf-8")
        )

    def history(self) -> TrainingHistory:
        """The unit's per-round training history."""
        return history_from_json(
            (self.directory / _HISTORY_FILE).read_text(encoding="utf-8")
        )

    def result(self) -> dict:
        """The unit's measurement snapshot (energy, rounds, accuracy)."""
        return json.loads(
            (self.directory / _RESULT_FILE).read_text(encoding="utf-8")
        )

    @property
    def telemetry_path(self) -> Path:
        """Where the unit's event log lives (may not exist)."""
        return self.directory / _TELEMETRY_FILE

    def has_telemetry(self) -> bool:
        """Whether the unit ran with telemetry enabled."""
        return self.telemetry_path.exists()

    def telemetry_records(self) -> list[dict] | None:
        """The unit's final metric records, or ``None`` without telemetry.

        Reads the last ``metrics.snapshot`` event out of the unit's
        ``telemetry.jsonl`` — the line the runner appends after training
        — and recovers the structured per-instrument records that
        :class:`repro.obs.aggregate.CampaignTelemetry` folds into
        campaign-wide totals.
        """
        path = self.telemetry_path
        if not path.exists():
            return None
        snapshot = None
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("category") == "metrics.snapshot":
                snapshot = data
        if snapshot is None:
            return None
        from repro.obs.aggregate import records_from_snapshot

        return records_from_snapshot(snapshot.get("fields", {}))


class ArtifactStore:
    """Checkpointed storage for one campaign's run artifacts.

    Args:
        root: store directory; created on :meth:`initialize`.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def initialize(self, campaign: CampaignSpec) -> None:
        """Bind this store to ``campaign``, creating it if needed.

        Re-initialising an existing store with the *same* campaign (by
        content key) is the resume path and is a no-op; initialising
        with a different campaign raises :class:`StoreError` instead of
        silently mixing artifacts from two grids.  The check-then-create
        runs under the store lock so two processes racing to initialise
        the same directory cannot both write the seed files.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with self._lock():
            existing = self.campaign_key()
            if existing is not None:
                if existing != campaign.key():
                    raise StoreError(
                        f"store at {self.root} belongs to campaign key "
                        f"{existing}; refusing to run campaign "
                        f"{campaign.key()} ({campaign.name!r}) into it"
                    )
                return
            (self.root / _UNITS_DIR).mkdir(exist_ok=True)
            _atomic_write(
                self.root / _CAMPAIGN_FILE,
                json.dumps(
                    {"key": campaign.key(), "spec": campaign.to_dict()},
                    indent=2,
                )
                + "\n",
            )
            _atomic_write(
                self.root / _MANIFEST_FILE,
                json.dumps(
                    self._empty_manifest(campaign), indent=2, sort_keys=True
                )
                + "\n",
            )

    def _lock(self):
        """The store-wide writer lock (see :func:`_exclusive_lock`)."""
        return _exclusive_lock(self.root / _LOCK_FILE)

    def _empty_manifest(self, campaign: CampaignSpec) -> dict:
        return {
            "schema": _MANIFEST_SCHEMA,
            "campaign_key": campaign.key(),
            "campaign_name": campaign.name,
            "units": {},
        }

    def campaign_key(self) -> str | None:
        """The bound campaign's content key (``None`` if uninitialised)."""
        path = self.root / _CAMPAIGN_FILE
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))["key"]
        except (json.JSONDecodeError, KeyError) as error:
            raise StoreError(f"corrupt campaign file {path}: {error}") from None

    def campaign(self) -> CampaignSpec:
        """The campaign this store was initialised with."""
        path = self.root / _CAMPAIGN_FILE
        if not path.exists():
            raise StoreError(f"no campaign at {self.root}")
        data = json.loads(path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(data["spec"])

    def manifest(self) -> dict:
        """The parsed manifest document."""
        path = self.root / _MANIFEST_FILE
        if not path.exists():
            raise StoreError(f"no manifest at {self.root}")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(f"corrupt manifest {path}: {error}") from None
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            raise StoreError(
                f"unexpected manifest schema {manifest.get('schema')!r}"
            )
        return manifest

    def unit_dir(self, key: str) -> Path:
        """Artifact directory of the unit with content key ``key``."""
        return self.root / _UNITS_DIR / key

    @property
    def spool_dir(self) -> Path:
        """Where live worker telemetry spools stream during execution.

        Spools are *runtime* telemetry, not artifacts: they carry wall
        times and worker pids, so they live outside ``units/`` and are
        excluded from the manifest — the artifact bytes stay a pure
        function of the campaign spec.
        """
        return self.root / _SPOOLS_DIR

    @property
    def quarantine_dir(self) -> Path:
        """Where failure records and quarantined artifacts live.

        ``quarantine/<key>/attempt-N.json`` is the failure record of the
        unit's N-th failed attempt (1-based); ``quarantine/<key>/artifacts/``
        holds artifact files evicted from ``units/`` when a recorded
        unit turned out corrupt.  Like spools, quarantine is *runtime*
        state — it carries wall times and tracebacks, lives outside the
        manifest, and never affects artifact bytes.
        """
        return self.root / _QUARANTINE_DIR

    @property
    def heartbeat_dir(self) -> Path:
        """Where workers drop per-unit heartbeat files while executing.

        ``heartbeats/<key>.json`` names the executing pid and attempt —
        the mapping the supervised scheduler uses to attribute a broken
        process pool to the unit whose worker actually died, and to aim
        watchdog kills at the right process.
        """
        return self.root / _HEARTBEATS_DIR

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def record_unit(
        self,
        spec: RunSpec,
        history: TrainingHistory,
        result: dict,
        telemetry_jsonl: str | None = None,
    ) -> str:
        """Persist one completed unit and mark it complete.

        Artifact files land first; the manifest entry (with checksums)
        is written last and atomically, so completion is all-or-nothing.
        The manifest read-modify-write runs under the store lock, so
        concurrent runner processes sharing one store never drop each
        other's completed-unit entries.  Returns the unit's content key.
        """
        key = spec.key()
        unit_dir = self.unit_dir(key)
        unit_dir.mkdir(parents=True, exist_ok=True)
        files = {
            _SPEC_FILE: spec.to_json(indent=2) + "\n",
            _HISTORY_FILE: history_to_json(history, indent=2) + "\n",
            _RESULT_FILE: json.dumps(result, indent=2, sort_keys=True) + "\n",
        }
        if telemetry_jsonl is not None:
            files[_TELEMETRY_FILE] = telemetry_jsonl
        checksums = {}
        for filename, text in files.items():
            _atomic_write(unit_dir / filename, text)
            checksums[filename] = _sha256(text.encode("utf-8"))
        with self._lock():
            manifest = self.manifest()
            manifest["units"][key] = {
                "name": spec.name,
                "files": checksums,
            }
            # sort_keys makes the manifest bytes a pure function of its
            # *contents*: a parallel run, whose units complete in
            # scheduler order, ends with a manifest byte-identical to a
            # sequential run's.
            _atomic_write(
                self.root / _MANIFEST_FILE,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            )
        return key

    # ------------------------------------------------------------------
    # Failure records and quarantine.
    # ------------------------------------------------------------------
    def record_failure(self, key: str, record: dict) -> Path:
        """Persist one failed attempt of unit ``key``; return its path.

        Attempt numbers continue from the records already on disk, so a
        campaign killed mid-retry and resumed keeps counting where it
        left off — the failure trail *is* the durable attempt counter.
        """
        directory = self.quarantine_dir / key
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock():
            attempt = self.attempts_used(key) + 1
            document = {"schema": _FAILURE_SCHEMA, "key": key, **record}
            document["attempt"] = attempt
            path = directory / f"attempt-{attempt}.json"
            _atomic_write(
                path, json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
        return path

    def failure_records(self, key: str) -> list[dict]:
        """Every failed-attempt record of ``key``, in attempt order."""
        directory = self.quarantine_dir / key
        if not directory.exists():
            return []
        numbered = []
        for path in directory.iterdir():
            match = _ATTEMPT_PATTERN.match(path.name)
            if match is None:
                continue
            try:
                numbered.append((int(match.group(1)), json.loads(path.read_text(encoding="utf-8"))))
            except json.JSONDecodeError:
                continue
        numbered.sort(key=lambda pair: pair[0])
        return [record for _, record in numbered]

    def attempts_used(self, key: str) -> int:
        """How many failed attempts of ``key`` are on record."""
        directory = self.quarantine_dir / key
        if not directory.exists():
            return 0
        return sum(
            1
            for path in directory.iterdir()
            if _ATTEMPT_PATTERN.match(path.name)
        )

    def quarantined_keys(self) -> set[str]:
        """Keys given up on: a terminal failure record, no manifest entry."""
        directory = self.quarantine_dir
        if not directory.exists():
            return set()
        completed = self.completed_keys()
        quarantined = set()
        for unit_dir in directory.iterdir():
            if not unit_dir.is_dir() or unit_dir.name in completed:
                continue
            records = self.failure_records(unit_dir.name)
            if records and any(r.get("quarantined") for r in records):
                quarantined.add(unit_dir.name)
        return quarantined

    def clear_failures(self, key: str) -> None:
        """Forget ``key``'s failure trail, granting a fresh retry budget."""
        directory = self.quarantine_dir / key
        if directory.exists():
            shutil.rmtree(directory)

    def quarantine_unit(self, key: str) -> None:
        """Evict a recorded-but-bad unit from the completed set.

        Drops the manifest entry (under the store lock) and moves the
        unit's artifact directory under ``quarantine/<key>/artifacts``
        so the bad bytes stay inspectable but can never satisfy a
        resume check or feed a report again.
        """
        with self._lock():
            manifest = self.manifest()
            if key in manifest["units"]:
                del manifest["units"][key]
                _atomic_write(
                    self.root / _MANIFEST_FILE,
                    json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                )
        unit_dir = self.unit_dir(key)
        if unit_dir.exists():
            destination = self.quarantine_dir / key / _ARTIFACTS_SUBDIR
            destination.parent.mkdir(parents=True, exist_ok=True)
            if destination.exists():
                shutil.rmtree(destination)
            shutil.move(str(unit_dir), str(destination))

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def completed_keys(self) -> set[str]:
        """Content keys of every unit the manifest marks complete."""
        return set(self.manifest()["units"])

    def units(self) -> Iterator[UnitArtifact]:
        """Handles onto every completed unit, in manifest order."""
        for key, entry in self.manifest()["units"].items():
            yield UnitArtifact(self, key, entry)

    def unit(self, key: str) -> UnitArtifact:
        """Handle onto one completed unit."""
        entry = self.manifest()["units"].get(key)
        if entry is None:
            raise StoreError(f"unit {key} is not complete in {self.root}")
        return UnitArtifact(self, key, entry)

    # ------------------------------------------------------------------
    # Integrity.
    # ------------------------------------------------------------------
    def verify_unit(self, key: str, entry: dict | None = None) -> list[str]:
        """Re-hash one recorded unit's artifacts; return its problems.

        Checks that every file the manifest entry lists exists and
        matches its recorded checksum, and that the stored spec still
        hashes to the directory key.  The runner calls this right after
        every ``record_unit`` — verify-after-write — so a torn or
        corrupted artifact write fails the *attempt* instead of
        poisoning resume checks and reports later.
        """
        if entry is None:
            entry = self.manifest()["units"].get(key)
            if entry is None:
                return [f"{key}: not in manifest"]
        problems: list[str] = []
        unit_dir = self.unit_dir(key)
        for filename, recorded in entry["files"].items():
            path = unit_dir / filename
            if not path.exists():
                problems.append(f"{key}: missing {filename}")
                continue
            actual = _sha256(path.read_bytes())
            if actual != recorded:
                problems.append(
                    f"{key}: checksum mismatch on {filename} "
                    f"(recorded {recorded[:12]}, actual {actual[:12]})"
                )
        spec_path = unit_dir / _SPEC_FILE
        if spec_path.exists():
            try:
                spec = RunSpec.from_json(spec_path.read_text(encoding="utf-8"))
            except ValueError as error:
                problems.append(f"{key}: unreadable spec ({error})")
            else:
                if spec.key() != key:
                    problems.append(
                        f"{key}: spec content hashes to {spec.key()}"
                    )
        return problems

    def orphan_unit_keys(self) -> list[str]:
        """Unit directories on disk that the manifest does not list.

        The crash window between files-first and manifest-last leaves
        exactly this shape behind.  Sorted for deterministic reporting.
        Note that a store being written *right now* has transient
        orphans (units mid-checkpoint); orphan reports are meaningful
        for stores at rest.
        """
        units_dir = self.root / _UNITS_DIR
        if not units_dir.exists():
            return []
        completed = self.completed_keys()
        return sorted(
            path.name
            for path in units_dir.iterdir()
            if path.is_dir() and path.name not in completed
        )

    def verify(self) -> list[str]:
        """Integrity-check the whole store; return the problems found.

        An empty list means the store is internally consistent: every
        manifest entry's files exist and match their recorded checksums,
        every stored spec hashes to its directory key, and no unit
        directory sits on disk unaccounted for by the manifest.
        """
        problems: list[str] = []
        manifest = self.manifest()
        for key, entry in manifest["units"].items():
            problems.extend(self.verify_unit(key, entry))
        for key in self.orphan_unit_keys():
            problems.append(
                f"{key}: orphan unit directory (on disk but not in manifest)"
            )
        return problems

    # ------------------------------------------------------------------
    # Self-healing.
    # ------------------------------------------------------------------
    def _adopt_orphan(self, key: str) -> None:
        """Promote a self-consistent orphan directory into the manifest.

        The directory must hold a parseable spec whose content key
        matches the directory name, plus parseable history and result
        documents — i.e. everything ``record_unit`` would have written
        before the crash stole the manifest update.  Checksums are
        recomputed from the bytes on disk, so the rebuilt manifest entry
        is byte-identical to the one the crash lost.
        """
        unit_dir = self.unit_dir(key)
        spec = RunSpec.from_json(
            (unit_dir / _SPEC_FILE).read_text(encoding="utf-8")
        )
        if spec.key() != key:
            raise StoreError(
                f"orphan {key}: spec content hashes to {spec.key()}"
            )
        history_from_json((unit_dir / _HISTORY_FILE).read_text(encoding="utf-8"))
        json.loads((unit_dir / _RESULT_FILE).read_text(encoding="utf-8"))
        checksums = {}
        for filename in (_SPEC_FILE, _HISTORY_FILE, _RESULT_FILE, _TELEMETRY_FILE):
            path = unit_dir / filename
            if path.exists():
                checksums[filename] = _sha256(path.read_bytes())
        with self._lock():
            manifest = self.manifest()
            manifest["units"][key] = {"name": spec.name, "files": checksums}
            _atomic_write(
                self.root / _MANIFEST_FILE,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            )

    def doctor(self, repair: bool = False) -> "DoctorReport":
        """Diagnose — and with ``repair=True``, heal — this store.

        Diagnosis covers a missing manifest, corrupt recorded units
        (checksum/key mismatches) and orphan unit directories.  Repair
        never retrains anything: it rebuilds a missing manifest from the
        campaign binding, adopts orphan directories that are fully
        self-consistent (recomputing their checksums), and quarantines
        everything else — corrupt recorded units are evicted to
        ``quarantine/<key>/artifacts`` with a non-terminal failure
        record, so a subsequent ``campaign run`` retrains exactly the
        evicted units and nothing more.

        Meaningful for stores at rest: a campaign writing concurrently
        makes units mid-checkpoint look like orphans.
        """
        report = DoctorReport(repaired=bool(repair))
        if not (self.root / _CAMPAIGN_FILE).exists():
            report.problems.append(
                f"{_CAMPAIGN_FILE} missing — store is not recoverable "
                "(the campaign binding cannot be reconstructed)"
            )
            report.healthy = False
            return report
        campaign = self.campaign()
        if not (self.root / _MANIFEST_FILE).exists():
            report.problems.append(f"{_MANIFEST_FILE} missing")
            if repair:
                with self._lock():
                    _atomic_write(
                        self.root / _MANIFEST_FILE,
                        json.dumps(
                            self._empty_manifest(campaign),
                            indent=2,
                            sort_keys=True,
                        )
                        + "\n",
                    )
                report.actions.append(
                    "rebuilt empty manifest from campaign binding"
                )
            else:
                report.healthy = False
                return report
        for key, entry in self.manifest()["units"].items():
            unit_problems = self.verify_unit(key, entry)
            if not unit_problems:
                continue
            report.problems.extend(unit_problems)
            if repair:
                self.quarantine_unit(key)
                # Not a *terminal* record: the eviction grants the unit
                # back to the next `campaign run`, which retrains it.
                self.record_failure(
                    key,
                    {
                        "unit": entry.get("name", key),
                        "kind": "corrupt-artifact",
                        "error": "; ".join(unit_problems),
                        "traceback": None,
                        "spool_tail": None,
                        "quarantined": False,
                    },
                )
                report.quarantined.append(key)
                report.actions.append(f"quarantined corrupt unit {key}")
        for key in self.orphan_unit_keys():
            report.problems.append(
                f"{key}: orphan unit directory (on disk but not in manifest)"
            )
            if not repair:
                continue
            try:
                self._adopt_orphan(key)
            except (StoreError, ValueError, OSError, json.JSONDecodeError) as error:
                self.quarantine_unit(key)
                self.record_failure(
                    key,
                    {
                        "unit": key,
                        "kind": "corrupt-artifact",
                        "error": f"unadoptable orphan: {error}",
                        "traceback": None,
                        "spool_tail": None,
                        "quarantined": False,
                    },
                )
                report.quarantined.append(key)
                report.actions.append(f"quarantined unadoptable orphan {key}")
            else:
                report.adopted.append(key)
                report.actions.append(f"adopted orphan unit {key} into manifest")
        if repair:
            report.healthy = not self.verify()
        else:
            report.healthy = not report.problems
        return report


@dataclass
class DoctorReport:
    """What ``ArtifactStore.doctor`` found and (optionally) fixed.

    Attributes:
        repaired: whether the doctor ran in ``--repair`` mode.
        problems: every integrity problem observed *before* repair.
        adopted: orphan unit keys promoted into the manifest.
        quarantined: unit keys evicted to ``quarantine/`` with failure
            records.  The records are non-terminal, so the next
            ``campaign run`` retrains exactly these units.
        actions: human-readable log of every repair action taken.
        healthy: store consistency verdict — after repair when
            ``repaired``, otherwise simply "no problems found".
    """

    repaired: bool = False
    problems: list[str] = field(default_factory=list)
    adopted: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    actions: list[str] = field(default_factory=list)
    healthy: bool = True

    def render(self) -> str:
        """Multi-line report for the ``campaign doctor`` CLI."""
        lines = []
        if not self.problems:
            lines.append("store is healthy: no problems found")
        else:
            lines.append(f"{len(self.problems)} problem(s) found:")
            lines.extend(f"  - {problem}" for problem in self.problems)
        for action in self.actions:
            lines.append(f"repair: {action}")
        if self.repaired and self.problems:
            lines.append(
                "store is healthy after repair"
                if self.healthy
                else "store still has problems after repair"
            )
        return "\n".join(lines)
