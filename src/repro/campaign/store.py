"""On-disk campaign artifact stores: checkpoint, verify, resume.

Energy sweeps at paper scale take hours; a campaign must survive being
killed.  The store checkpoints every completed unit as it finishes:

.. code-block:: text

    <root>/
      campaign.json            # the CampaignSpec this store belongs to
      manifest.json | manifest.db   # completed-unit index (backend-specific)
      units/<unit key>/
        spec.json              # the unit's RunSpec
        history.json           # repro.fl.history_io document
        result.json            # energy/rounds/accuracy measurements
        telemetry.jsonl        # optional per-unit event log

A unit is *complete* exactly when the index lists it — the unit files
are written first and the index entry last (atomically), so a crash
mid-unit leaves at worst an orphaned directory that the next run
overwrites.  The index records a SHA-256 checksum of every artifact
file, and :meth:`ArtifactStore.verify` re-hashes them so silent
corruption is detected before a resumed campaign or a report trusts
stale bytes.

Two index **backends** implement the same repository API (see
:mod:`repro.campaign.repository` for the :class:`CampaignRepository`
protocol):

* :class:`JsonArtifactStore` (``manifest.json``) — the original format:
  one JSON document holding every entry, rewritten atomically under an
  advisory ``flock`` on ``<root>/.lock``.  Simple and transparent, but
  every lookup re-parses the whole manifest and every writer serialises
  on the flock — O(n) per operation, which caps campaigns well below
  the 10^5–10^6-unit grids a campaign service must index.
* :class:`~repro.campaign.sqlite_store.SqliteArtifactStore`
  (``manifest.db``) — a SQLite database in WAL mode, one row per unit
  keyed by content hash with the checksums as columns.  ``contains``
  is an O(log n) primary-key probe, scans are index-ordered, and WAL
  lets concurrent workers commit without queuing on a store-wide file
  lock.

``ArtifactStore(root)`` is the polymorphic constructor: it detects the
backend from the index file on disk (``manifest.db`` wins over
``manifest.json``), falls back to the ``REPRO_STORE_BACKEND``
environment variable and then to JSON for brand-new stores, and
returns an instance of the matching backend class.  Both backends
share the artifact layout, the quarantine/heartbeat/spool runtime
areas, and every invariant the runner relies on — kill-and-resume
byte-identity, parallel-vs-sequential equivalence, verify-after-write
— so campaigns, reports, and the doctor are backend-agnostic.

The logical index content is canonicalised by :meth:`ArtifactStore.manifest`
(a pure function of the entries, identical across backends), and
:meth:`ArtifactStore.index_digest` hashes it — the cross-backend
equality check that migration and the parity tests assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.fl.history_io import history_from_json, history_to_json
from repro.fl.metrics import TrainingHistory

__all__ = [
    "ArtifactStore",
    "JsonArtifactStore",
    "UnitArtifact",
    "StoreError",
    "StoreHealthReport",
    "DoctorReport",
    "detect_backend",
    "STORE_BACKENDS",
]

_MANIFEST_SCHEMA = "repro.campaign-manifest/1"
_FAILURE_SCHEMA = "repro.failure-record/1"
_CAMPAIGN_FILE = "campaign.json"
_MANIFEST_FILE = "manifest.json"
_INDEX_DB_FILE = "manifest.db"
_UNITS_DIR = "units"
_SPOOLS_DIR = "spools"
_QUARANTINE_DIR = "quarantine"
_HEARTBEATS_DIR = "heartbeats"
_ARTIFACTS_SUBDIR = "artifacts"
_SPEC_FILE = "spec.json"
_HISTORY_FILE = "history.json"
_RESULT_FILE = "result.json"
_TELEMETRY_FILE = "telemetry.jsonl"
_LOCK_FILE = ".lock"
_ATTEMPT_PATTERN = re.compile(r"^attempt-(\d+)\.json$")

#: Recognised index backends, in detection-priority order.
STORE_BACKENDS = ("sqlite", "json")

#: Environment default consulted when a brand-new store is created
#: without an explicit backend choice.
_BACKEND_ENV = "REPRO_STORE_BACKEND"


class StoreError(RuntimeError):
    """A campaign artifact store is missing, mismatched, or corrupt."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` so readers never observe a half-written file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


@contextmanager
def _exclusive_lock(path: Path):
    """Hold an advisory exclusive ``flock`` on ``path``.

    ``flock`` locks belong to the open file description, so every
    acquisition opens the file afresh — which serialises concurrent
    writers across processes *and* across threads within one process.
    No-op where ``fcntl`` is unavailable (single-writer assumed).
    """
    if fcntl is None:
        yield
        return
    with open(path, "a", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def detect_backend(root: str | Path) -> str | None:
    """Which index backend the store at ``root`` uses, by inspection.

    ``"sqlite"`` when ``manifest.db`` exists, ``"json"`` when
    ``manifest.json`` does, ``None`` when neither is present (a
    brand-new directory, or a store whose index was destroyed — the
    doctor can rebuild the latter once a backend is chosen).
    """
    root = Path(root)
    if (root / _INDEX_DB_FILE).exists():
        return "sqlite"
    if (root / _MANIFEST_FILE).exists():
        return "json"
    return None


def _validated_backend(name: str, origin: str) -> str:
    if name not in STORE_BACKENDS:
        raise StoreError(
            f"unknown store backend {name!r} (from {origin}); "
            f"expected one of {', '.join(STORE_BACKENDS)}"
        )
    return name


def _resolve_backend(root: Path, backend: str | None) -> str:
    """Pick the backend class for ``ArtifactStore(root, backend)``.

    Detection wins for existing stores: asking for a backend that
    contradicts the index already on disk is an error (``migrate`` is
    the conversion path), never a silent mix of two index formats in
    one directory.  For new stores the explicit argument wins, then
    the ``REPRO_STORE_BACKEND`` environment default, then JSON — the
    compatibility default every pre-repository store used.
    """
    detected = detect_backend(root)
    if backend is not None:
        backend = _validated_backend(backend, "argument")
        if detected is not None and detected != backend:
            raise StoreError(
                f"store at {root} is {detected}-backed but backend="
                f"{backend!r} was requested; use 'campaign migrate' to "
                "convert between index formats"
            )
        return backend
    if detected is not None:
        return detected
    env = os.environ.get(_BACKEND_ENV)
    if env:
        return _validated_backend(env, f"${_BACKEND_ENV}")
    return "json"


def _backend_class(name: str) -> type["ArtifactStore"]:
    if name == "json":
        return JsonArtifactStore
    from repro.campaign.sqlite_store import SqliteArtifactStore

    return SqliteArtifactStore


@dataclass(eq=False)
class StoreHealthReport:
    """Unified result of :meth:`ArtifactStore.verify` and ``doctor``.

    One typed report replaces the ad-hoc problem lists and exit codes
    the two integrity entry points used to return, so ``campaign
    status`` and ``campaign doctor`` render health identically.

    Attributes:
        backend: index backend of the store examined.
        checked: recorded units whose artifacts were re-hashed.
        repaired: whether the examination ran in ``--repair`` mode.
        problems: every integrity problem observed *before* repair.
        adopted: orphan unit keys promoted into the index.
        quarantined: unit keys evicted to ``quarantine/`` with failure
            records.  The records are non-terminal, so the next
            ``campaign run`` retrains exactly these units.
        actions: human-readable log of every repair action taken.
        healthy: store consistency verdict — after repair when
            ``repaired``, otherwise simply "no problems found".

    For compatibility with the legacy ``verify() -> list[str]``
    contract the report behaves as a sequence of its problem strings:
    it iterates over ``problems``, compares equal to a plain list of
    them, and is *truthy exactly when problems were found*.
    """

    backend: str = ""
    checked: int = 0
    repaired: bool = False
    problems: list[str] = field(default_factory=list)
    adopted: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    actions: list[str] = field(default_factory=list)
    healthy: bool = True

    # -- legacy list-of-problems protocol -------------------------------
    def __iter__(self):
        return iter(self.problems)

    def __len__(self) -> int:
        return len(self.problems)

    def __contains__(self, item) -> bool:
        return item in self.problems

    def __bool__(self) -> bool:
        return bool(self.problems)

    def __eq__(self, other) -> bool:
        if isinstance(other, list):
            return self.problems == other
        if isinstance(other, StoreHealthReport):
            return (
                self.backend == other.backend
                and self.checked == other.checked
                and self.repaired == other.repaired
                and self.problems == other.problems
                and self.adopted == other.adopted
                and self.quarantined == other.quarantined
                and self.actions == other.actions
                and self.healthy == other.healthy
            )
        return NotImplemented

    def render(self) -> str:
        """Multi-line health report for ``campaign status`` / ``doctor``."""
        lines = []
        if not self.problems:
            lines.append(
                "store is healthy: no integrity problems found"
                + (f" ({self.checked} unit(s) checked)" if self.checked else "")
            )
        else:
            lines.append(f"{len(self.problems)} integrity problem(s) found:")
            lines.extend(f"  - {problem}" for problem in self.problems)
        for action in self.actions:
            lines.append(f"repair: {action}")
        if self.repaired and self.problems:
            lines.append(
                "store is healthy after repair"
                if self.healthy
                else "store still has problems after repair"
            )
        return "\n".join(lines)


#: Deprecated alias: ``doctor`` used to return its own ``DoctorReport``
#: type; it now shares :class:`StoreHealthReport` with ``verify``.
DoctorReport = StoreHealthReport


class UnitArtifact:
    """Lazy handle onto one completed unit's artifacts.

    Parsing a history is much more expensive than reading an index
    row, so reports iterate these handles and load only what they use.
    """

    def __init__(self, store: "ArtifactStore", key: str, entry: dict) -> None:
        self._store = store
        self.key = key
        self.name = entry["name"]
        self._entry = entry

    @property
    def directory(self) -> Path:
        """The unit's artifact directory."""
        return self._store.unit_dir(self.key)

    def spec(self) -> RunSpec:
        """The unit's :class:`RunSpec`."""
        return RunSpec.from_json(
            (self.directory / _SPEC_FILE).read_text(encoding="utf-8")
        )

    def history(self) -> TrainingHistory:
        """The unit's per-round training history."""
        return history_from_json(
            (self.directory / _HISTORY_FILE).read_text(encoding="utf-8")
        )

    def result(self) -> dict:
        """The unit's measurement snapshot (energy, rounds, accuracy)."""
        return json.loads(
            (self.directory / _RESULT_FILE).read_text(encoding="utf-8")
        )

    @property
    def telemetry_path(self) -> Path:
        """Where the unit's event log lives (may not exist)."""
        return self.directory / _TELEMETRY_FILE

    def has_telemetry(self) -> bool:
        """Whether the unit ran with telemetry enabled."""
        return self.telemetry_path.exists()

    def telemetry_records(self) -> list[dict] | None:
        """The unit's final metric records, or ``None`` without telemetry.

        Reads the last ``metrics.snapshot`` event out of the unit's
        ``telemetry.jsonl`` — the line the runner appends after training
        — and recovers the structured per-instrument records that
        :class:`repro.obs.aggregate.CampaignTelemetry` folds into
        campaign-wide totals.
        """
        path = self.telemetry_path
        if not path.exists():
            return None
        snapshot = None
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("category") == "metrics.snapshot":
                snapshot = data
        if snapshot is None:
            return None
        from repro.obs.aggregate import records_from_snapshot

        return records_from_snapshot(snapshot.get("fields", {}))


class ArtifactStore:
    """Checkpointed storage for one campaign's run artifacts.

    ``ArtifactStore(root)`` is polymorphic: it resolves the index
    backend (auto-detected from disk, else the explicit ``backend``
    argument, else ``$REPRO_STORE_BACKEND``, else JSON) and returns an
    instance of the matching subclass — :class:`JsonArtifactStore` or
    :class:`~repro.campaign.sqlite_store.SqliteArtifactStore`.  All
    artifact-layout logic (unit directories, quarantine, heartbeats,
    spools, verification, the doctor) lives here and is shared; only
    the completed-unit *index* operations are backend-specific.

    Args:
        root: store directory; created on :meth:`initialize`.
        backend: index backend for a brand-new store (``"json"`` or
            ``"sqlite"``); must match the store on disk if one exists.
    """

    #: Subclass identity; also the value of ``--store-backend`` that
    #: selects it.
    backend_name = "auto"
    #: Name of the index file under ``root`` (backend-specific).
    index_filename = ""

    def __new__(cls, root: str | Path, backend: str | None = None):
        if cls is ArtifactStore:
            cls = _backend_class(_resolve_backend(Path(root), backend))
        return object.__new__(cls)

    def __init__(self, root: str | Path, backend: str | None = None) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({str(self.root)!r})"

    # ------------------------------------------------------------------
    # Index hooks — each backend supplies these.
    # ------------------------------------------------------------------
    def _index_exists(self) -> bool:
        """Whether the index file is present on disk."""
        raise NotImplementedError

    def _index_create(self, campaign: CampaignSpec) -> None:
        """Create an empty index bound to ``campaign`` (caller locks)."""
        raise NotImplementedError

    def _index_entries(self) -> dict[str, dict]:
        """Every ``key -> entry`` mapping, sorted by key."""
        raise NotImplementedError

    def _index_get(self, key: str) -> dict | None:
        """One entry, or ``None`` when the unit is not recorded."""
        raise NotImplementedError

    def _index_put(self, key: str, entry: dict) -> None:
        """Atomically upsert one entry."""
        raise NotImplementedError

    def _index_delete(self, key: str) -> None:
        """Remove one entry (no-op when absent)."""
        raise NotImplementedError

    def _index_bulk_put(self, entries: dict[str, dict]) -> None:
        """Upsert many entries in one atomic batch (migration path)."""
        raise NotImplementedError

    def _index_contains(self, key: str) -> bool:
        """Membership probe; the hot path resumes and schedulers hit."""
        raise NotImplementedError

    def _index_count(self) -> int:
        """Number of recorded units."""
        raise NotImplementedError

    def _index_keys(self, prefix: str | None = None) -> list[str]:
        """Sorted unit keys, optionally restricted to a key prefix."""
        raise NotImplementedError

    def manifest(self) -> dict:
        """The canonical index document (schema, campaign, units).

        A pure function of the index *contents* — byte-for-byte
        identical across backends holding the same entries, which is
        what makes :meth:`index_digest` a cross-backend equality check.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any backend resources (idempotent; no-op for JSON)."""

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def initialize(self, campaign: CampaignSpec) -> None:
        """Bind this store to ``campaign``, creating it if needed.

        Re-initialising an existing store with the *same* campaign (by
        content key) is the resume path and is a no-op; initialising
        with a different campaign raises :class:`StoreError` instead of
        silently mixing artifacts from two grids.  The check-then-create
        runs under the store lock so two processes racing to initialise
        the same directory cannot both write the seed files.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with self._lock():
            existing = self.campaign_key()
            if existing is not None:
                if existing != campaign.key():
                    raise StoreError(
                        f"store at {self.root} belongs to campaign key "
                        f"{existing}; refusing to run campaign "
                        f"{campaign.key()} ({campaign.name!r}) into it"
                    )
                return
            (self.root / _UNITS_DIR).mkdir(exist_ok=True)
            _atomic_write(
                self.root / _CAMPAIGN_FILE,
                json.dumps(
                    {"key": campaign.key(), "spec": campaign.to_dict()},
                    indent=2,
                )
                + "\n",
            )
            self._index_create(campaign)

    def _lock(self):
        """The store-wide writer lock (see :func:`_exclusive_lock`)."""
        return _exclusive_lock(self.root / _LOCK_FILE)

    def campaign_key(self) -> str | None:
        """The bound campaign's content key (``None`` if uninitialised)."""
        path = self.root / _CAMPAIGN_FILE
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))["key"]
        except (json.JSONDecodeError, KeyError) as error:
            raise StoreError(f"corrupt campaign file {path}: {error}") from None

    def campaign(self) -> CampaignSpec:
        """The campaign this store was initialised with."""
        path = self.root / _CAMPAIGN_FILE
        if not path.exists():
            raise StoreError(f"no campaign at {self.root}")
        data = json.loads(path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(data["spec"])

    def unit_dir(self, key: str) -> Path:
        """Artifact directory of the unit with content key ``key``."""
        return self.root / _UNITS_DIR / key

    @property
    def spool_dir(self) -> Path:
        """Where live worker telemetry spools stream during execution.

        Spools are *runtime* telemetry, not artifacts: they carry wall
        times and worker pids, so they live outside ``units/`` and are
        excluded from the index — the artifact bytes stay a pure
        function of the campaign spec.
        """
        return self.root / _SPOOLS_DIR

    @property
    def quarantine_dir(self) -> Path:
        """Where failure records and quarantined artifacts live.

        ``quarantine/<key>/attempt-N.json`` is the failure record of the
        unit's N-th failed attempt (1-based); ``quarantine/<key>/artifacts/``
        holds artifact files evicted from ``units/`` when a recorded
        unit turned out corrupt.  Like spools, quarantine is *runtime*
        state — it carries wall times and tracebacks, lives outside the
        index, and never affects artifact bytes.
        """
        return self.root / _QUARANTINE_DIR

    @property
    def heartbeat_dir(self) -> Path:
        """Where workers drop per-unit heartbeat files while executing.

        ``heartbeats/<key>.json`` names the executing pid and attempt —
        the mapping the supervised scheduler uses to attribute a broken
        process pool to the unit whose worker actually died, and to aim
        watchdog kills at the right process.
        """
        return self.root / _HEARTBEATS_DIR

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def record_unit(
        self,
        spec: RunSpec,
        history: TrainingHistory,
        result: dict,
        telemetry_jsonl: str | None = None,
    ) -> str:
        """Persist one completed unit and mark it complete.

        Artifact files land first; the index entry (with checksums) is
        written last and atomically, so completion is all-or-nothing.
        Concurrent runner processes sharing one store never drop each
        other's completed-unit entries — the JSON backend serialises
        its read-modify-write under the store lock, the SQLite backend
        commits a single-row transaction.  Returns the unit's content
        key.
        """
        key = spec.key()
        unit_dir = self.unit_dir(key)
        unit_dir.mkdir(parents=True, exist_ok=True)
        files = {
            _SPEC_FILE: spec.to_json(indent=2) + "\n",
            _HISTORY_FILE: history_to_json(history, indent=2) + "\n",
            _RESULT_FILE: json.dumps(result, indent=2, sort_keys=True) + "\n",
        }
        if telemetry_jsonl is not None:
            files[_TELEMETRY_FILE] = telemetry_jsonl
        checksums = {}
        for filename, text in files.items():
            _atomic_write(unit_dir / filename, text)
            checksums[filename] = _sha256(text.encode("utf-8"))
        self._index_put(key, {"name": spec.name, "files": checksums})
        return key

    # The repository-protocol spelling of record_unit.
    def put(
        self,
        spec: RunSpec,
        history: TrainingHistory,
        result: dict,
        telemetry_jsonl: str | None = None,
    ) -> str:
        """Alias of :meth:`record_unit` (the repository API spelling)."""
        return self.record_unit(spec, history, result, telemetry_jsonl)

    def put_entry(self, key: str, entry: dict) -> None:
        """Upsert one *index entry* without touching artifact files.

        Low-level: the entry is trusted as-is (``{"name": ..., "files":
        {filename: sha256}}``).  Migration tooling and the store
        benchmark use this; campaign execution goes through
        :meth:`record_unit`, which writes the artifacts the entry
        vouches for.
        """
        self._index_put(key, entry)

    def bulk_put_entries(self, entries: dict[str, dict]) -> None:
        """Upsert many index entries in one atomic batch.

        The migration fast path: converting a 10^5-unit store must not
        pay one index rewrite (JSON) or one fsync (SQLite) per unit.
        """
        if entries:
            self._index_bulk_put(dict(entries))

    # ------------------------------------------------------------------
    # Failure records and quarantine.
    # ------------------------------------------------------------------
    def record_failure(self, key: str, record: dict) -> Path:
        """Persist one failed attempt of unit ``key``; return its path.

        Attempt numbers continue from the records already on disk, so a
        campaign killed mid-retry and resumed keeps counting where it
        left off — the failure trail *is* the durable attempt counter.
        """
        directory = self.quarantine_dir / key
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock():
            attempt = self.attempts_used(key) + 1
            document = {"schema": _FAILURE_SCHEMA, "key": key, **record}
            document["attempt"] = attempt
            path = directory / f"attempt-{attempt}.json"
            _atomic_write(
                path, json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
        return path

    def failure_records(self, key: str) -> list[dict]:
        """Every failed-attempt record of ``key``, in attempt order."""
        directory = self.quarantine_dir / key
        if not directory.exists():
            return []
        numbered = []
        for path in directory.iterdir():
            match = _ATTEMPT_PATTERN.match(path.name)
            if match is None:
                continue
            try:
                numbered.append((int(match.group(1)), json.loads(path.read_text(encoding="utf-8"))))
            except json.JSONDecodeError:
                continue
        numbered.sort(key=lambda pair: pair[0])
        return [record for _, record in numbered]

    def attempts_used(self, key: str) -> int:
        """How many failed attempts of ``key`` are on record."""
        directory = self.quarantine_dir / key
        if not directory.exists():
            return 0
        return sum(
            1
            for path in directory.iterdir()
            if _ATTEMPT_PATTERN.match(path.name)
        )

    def quarantined_keys(self) -> set[str]:
        """Keys given up on: a terminal failure record, no index entry."""
        directory = self.quarantine_dir
        if not directory.exists():
            return set()
        quarantined = set()
        for unit_dir in directory.iterdir():
            if not unit_dir.is_dir() or self._index_contains(unit_dir.name):
                continue
            records = self.failure_records(unit_dir.name)
            if records and any(r.get("quarantined") for r in records):
                quarantined.add(unit_dir.name)
        return quarantined

    def clear_failures(self, key: str) -> None:
        """Forget ``key``'s failure trail, granting a fresh retry budget."""
        directory = self.quarantine_dir / key
        if directory.exists():
            shutil.rmtree(directory)

    def quarantine_unit(self, key: str) -> None:
        """Evict a recorded-but-bad unit from the completed set.

        Drops the index entry and moves the unit's artifact directory
        under ``quarantine/<key>/artifacts`` so the bad bytes stay
        inspectable but can never satisfy a resume check or feed a
        report again.
        """
        self._index_delete(key)
        unit_dir = self.unit_dir(key)
        if unit_dir.exists():
            destination = self.quarantine_dir / key / _ARTIFACTS_SUBDIR
            destination.parent.mkdir(parents=True, exist_ok=True)
            if destination.exists():
                shutil.rmtree(destination)
            shutil.move(str(unit_dir), str(destination))

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Whether the unit with content key ``key`` is complete.

        The resume hot path: the SQLite backend answers with one
        indexed probe instead of re-parsing a manifest document.
        """
        return self._index_contains(key)

    def keys(self, prefix: str | None = None) -> list[str]:
        """Sorted content keys of every complete unit.

        ``prefix`` restricts to keys starting with it — an indexed
        range scan on the SQLite backend (content keys are hex, so a
        prefix names a contiguous key range).
        """
        return self._index_keys(prefix)

    def completed_keys(self) -> set[str]:
        """Content keys of every unit the index marks complete."""
        return set(self._index_keys())

    def units(self) -> Iterator[UnitArtifact]:
        """Handles onto every completed unit, in key order."""
        for key, entry in self._index_entries().items():
            yield UnitArtifact(self, key, entry)

    def iter_units(self) -> Iterator[UnitArtifact]:
        """Alias of :meth:`units` (the repository API spelling)."""
        return self.units()

    def unit(self, key: str) -> UnitArtifact:
        """Handle onto one completed unit."""
        entry = self._index_get(key)
        if entry is None:
            raise StoreError(f"unit {key} is not complete in {self.root}")
        return UnitArtifact(self, key, entry)

    def get(self, key: str) -> UnitArtifact:
        """Alias of :meth:`unit` (the repository API spelling)."""
        return self.unit(key)

    def index_digest(self) -> str:
        """SHA-256 over the canonical index content.

        Hashes the :meth:`manifest` document, which is a pure function
        of the entries — so two stores (of *either* backend) holding
        the same completed units under the same campaign produce the
        same digest.  The parity and migration tests assert exactly
        this.
        """
        return _sha256(
            json.dumps(self.manifest(), sort_keys=True).encode("utf-8")
        )

    # ------------------------------------------------------------------
    # Integrity.
    # ------------------------------------------------------------------
    def verify_unit(self, key: str, entry: dict | None = None) -> list[str]:
        """Re-hash one recorded unit's artifacts; return its problems.

        Checks that every file the index entry lists exists and
        matches its recorded checksum, and that the stored spec still
        hashes to the directory key.  The runner calls this right after
        every ``record_unit`` — verify-after-write — so a torn or
        corrupted artifact write fails the *attempt* instead of
        poisoning resume checks and reports later.
        """
        if entry is None:
            entry = self._index_get(key)
            if entry is None:
                return [f"{key}: not in manifest"]
        problems: list[str] = []
        unit_dir = self.unit_dir(key)
        for filename, recorded in entry["files"].items():
            path = unit_dir / filename
            if not path.exists():
                problems.append(f"{key}: missing {filename}")
                continue
            actual = _sha256(path.read_bytes())
            if actual != recorded:
                problems.append(
                    f"{key}: checksum mismatch on {filename} "
                    f"(recorded {recorded[:12]}, actual {actual[:12]})"
                )
        spec_path = unit_dir / _SPEC_FILE
        if spec_path.exists():
            try:
                spec = RunSpec.from_json(spec_path.read_text(encoding="utf-8"))
            except ValueError as error:
                problems.append(f"{key}: unreadable spec ({error})")
            else:
                if spec.key() != key:
                    problems.append(
                        f"{key}: spec content hashes to {spec.key()}"
                    )
        return problems

    def orphan_unit_keys(self) -> list[str]:
        """Unit directories on disk that the index does not list.

        The crash window between files-first and index-last leaves
        exactly this shape behind.  Sorted for deterministic reporting.
        Note that a store being written *right now* has transient
        orphans (units mid-checkpoint); orphan reports are meaningful
        for stores at rest.
        """
        units_dir = self.root / _UNITS_DIR
        if not units_dir.exists():
            return []
        completed = self.completed_keys()
        return sorted(
            path.name
            for path in units_dir.iterdir()
            if path.is_dir() and path.name not in completed
        )

    def verify(self) -> StoreHealthReport:
        """Integrity-check the whole store; return the health report.

        A healthy report means the store is internally consistent:
        every index entry's files exist and match their recorded
        checksums, every stored spec hashes to its directory key, and
        no unit directory sits on disk unaccounted for by the index.
        (The report compares equal to a plain list of problem strings,
        preserving the legacy ``verify() == []`` contract.)
        """
        problems: list[str] = []
        entries = self._index_entries()
        for key, entry in entries.items():
            problems.extend(self.verify_unit(key, entry))
        for key in self.orphan_unit_keys():
            problems.append(
                f"{key}: orphan unit directory (on disk but not in manifest)"
            )
        return StoreHealthReport(
            backend=self.backend_name,
            checked=len(entries),
            problems=problems,
            healthy=not problems,
        )

    # ------------------------------------------------------------------
    # Self-healing.
    # ------------------------------------------------------------------
    def _adopt_orphan(self, key: str) -> None:
        """Promote a self-consistent orphan directory into the index.

        The directory must hold a parseable spec whose content key
        matches the directory name, plus parseable history and result
        documents — i.e. everything ``record_unit`` would have written
        before the crash stole the index update.  Checksums are
        recomputed from the bytes on disk, so the rebuilt index entry
        is byte-identical to the one the crash lost.
        """
        unit_dir = self.unit_dir(key)
        spec = RunSpec.from_json(
            (unit_dir / _SPEC_FILE).read_text(encoding="utf-8")
        )
        if spec.key() != key:
            raise StoreError(
                f"orphan {key}: spec content hashes to {spec.key()}"
            )
        history_from_json((unit_dir / _HISTORY_FILE).read_text(encoding="utf-8"))
        json.loads((unit_dir / _RESULT_FILE).read_text(encoding="utf-8"))
        checksums = {}
        for filename in (_SPEC_FILE, _HISTORY_FILE, _RESULT_FILE, _TELEMETRY_FILE):
            path = unit_dir / filename
            if path.exists():
                checksums[filename] = _sha256(path.read_bytes())
        self._index_put(key, {"name": spec.name, "files": checksums})

    def doctor(self, repair: bool = False) -> StoreHealthReport:
        """Diagnose — and with ``repair=True``, heal — this store.

        Diagnosis covers a missing index, corrupt recorded units
        (checksum/key mismatches) and orphan unit directories.  Repair
        never retrains anything: it rebuilds a missing index from the
        campaign binding, adopts orphan directories that are fully
        self-consistent (recomputing their checksums), and quarantines
        everything else — corrupt recorded units are evicted to
        ``quarantine/<key>/artifacts`` with a non-terminal failure
        record, so a subsequent ``campaign run`` retrains exactly the
        evicted units and nothing more.

        Meaningful for stores at rest: a campaign writing concurrently
        makes units mid-checkpoint look like orphans.
        """
        report = StoreHealthReport(
            backend=self.backend_name, repaired=bool(repair)
        )
        if not (self.root / _CAMPAIGN_FILE).exists():
            report.problems.append(
                f"{_CAMPAIGN_FILE} missing — store is not recoverable "
                "(the campaign binding cannot be reconstructed)"
            )
            report.healthy = False
            return report
        campaign = self.campaign()
        if not self._index_exists():
            report.problems.append(f"{self.index_filename} missing")
            if repair:
                with self._lock():
                    if not self._index_exists():
                        self._index_create(campaign)
                report.actions.append(
                    "rebuilt empty manifest from campaign binding"
                )
            else:
                report.healthy = False
                return report
        entries = self._index_entries()
        report.checked = len(entries)
        for key, entry in entries.items():
            unit_problems = self.verify_unit(key, entry)
            if not unit_problems:
                continue
            report.problems.extend(unit_problems)
            if repair:
                self.quarantine_unit(key)
                # Not a *terminal* record: the eviction grants the unit
                # back to the next `campaign run`, which retrains it.
                self.record_failure(
                    key,
                    {
                        "unit": entry.get("name", key),
                        "kind": "corrupt-artifact",
                        "error": "; ".join(unit_problems),
                        "traceback": None,
                        "spool_tail": None,
                        "quarantined": False,
                    },
                )
                report.quarantined.append(key)
                report.actions.append(f"quarantined corrupt unit {key}")
        for key in self.orphan_unit_keys():
            report.problems.append(
                f"{key}: orphan unit directory (on disk but not in manifest)"
            )
            if not repair:
                continue
            try:
                self._adopt_orphan(key)
            except (StoreError, ValueError, OSError, json.JSONDecodeError) as error:
                self.quarantine_unit(key)
                self.record_failure(
                    key,
                    {
                        "unit": key,
                        "kind": "corrupt-artifact",
                        "error": f"unadoptable orphan: {error}",
                        "traceback": None,
                        "spool_tail": None,
                        "quarantined": False,
                    },
                )
                report.quarantined.append(key)
                report.actions.append(f"quarantined unadoptable orphan {key}")
            else:
                report.adopted.append(key)
                report.actions.append(f"adopted orphan unit {key} into manifest")
        if repair:
            report.healthy = self.verify().healthy
        else:
            report.healthy = not report.problems
        return report


class JsonArtifactStore(ArtifactStore):
    """The JSON-manifest index backend (compatibility format).

    One ``manifest.json`` document lists every completed unit; each
    update re-reads, modifies, and atomically rewrites it under the
    store's advisory ``flock``.  Every operation is O(n) in recorded
    units and all writers serialise on one lock, so this backend is
    right for small grids and human inspection; large campaigns should
    use (or :func:`~repro.campaign.repository.migrate_store` to) the
    SQLite backend.

    ``sort_keys`` makes the manifest bytes a pure function of its
    *contents*: a parallel run, whose units complete in scheduler
    order, ends with a manifest byte-identical to a sequential run's —
    and a store migrated away and back round-trips byte-identically.
    """

    backend_name = "json"
    index_filename = _MANIFEST_FILE

    # ------------------------------------------------------------------
    # Manifest document plumbing.
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST_FILE

    def _empty_manifest(self, campaign: CampaignSpec) -> dict:
        return {
            "schema": _MANIFEST_SCHEMA,
            "campaign_key": campaign.key(),
            "campaign_name": campaign.name,
            "units": {},
        }

    def manifest(self) -> dict:
        """The parsed manifest document."""
        path = self._manifest_path()
        if not path.exists():
            raise StoreError(f"no manifest at {self.root}")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(f"corrupt manifest {path}: {error}") from None
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            raise StoreError(
                f"unexpected manifest schema {manifest.get('schema')!r}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        _atomic_write(
            self._manifest_path(),
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    # ------------------------------------------------------------------
    # Index hooks.
    # ------------------------------------------------------------------
    def _index_exists(self) -> bool:
        return self._manifest_path().exists()

    def _index_create(self, campaign: CampaignSpec) -> None:
        self._write_manifest(self._empty_manifest(campaign))

    def _index_entries(self) -> dict[str, dict]:
        # sort_keys on write keeps the stored document key-ordered, but
        # sort defensively so hand-edited manifests stay deterministic.
        units = self.manifest()["units"]
        return {key: units[key] for key in sorted(units)}

    def _index_get(self, key: str) -> dict | None:
        return self.manifest()["units"].get(key)

    def _index_put(self, key: str, entry: dict) -> None:
        with self._lock():
            manifest = self.manifest()
            manifest["units"][key] = entry
            self._write_manifest(manifest)

    def _index_delete(self, key: str) -> None:
        with self._lock():
            manifest = self.manifest()
            if key in manifest["units"]:
                del manifest["units"][key]
                self._write_manifest(manifest)

    def _index_bulk_put(self, entries: dict[str, dict]) -> None:
        with self._lock():
            manifest = self.manifest()
            manifest["units"].update(entries)
            self._write_manifest(manifest)

    def _index_contains(self, key: str) -> bool:
        return key in self.manifest()["units"]

    def _index_count(self) -> int:
        return len(self.manifest()["units"])

    def _index_keys(self, prefix: str | None = None) -> list[str]:
        keys = sorted(self.manifest()["units"])
        if prefix is not None:
            keys = [key for key in keys if key.startswith(prefix)]
        return keys
