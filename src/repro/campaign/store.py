"""On-disk campaign artifact store: checkpoint, verify, resume.

Energy sweeps at paper scale take hours; a campaign must survive being
killed.  The store checkpoints every completed unit as it finishes:

.. code-block:: text

    <root>/
      campaign.json            # the CampaignSpec this store belongs to
      manifest.json            # completed units: key -> files + checksums
      units/<unit key>/
        spec.json              # the unit's RunSpec
        history.json           # repro.fl.history_io document
        result.json            # energy/rounds/accuracy measurements
        telemetry.jsonl        # optional per-unit event log

A unit is *complete* exactly when the manifest lists it — the unit files
are written first and the manifest last (atomically, via a temp file and
``os.replace``), so a crash mid-unit leaves at worst an orphaned
directory that the next run overwrites.  The manifest records a SHA-256
checksum of every artifact file, and :meth:`ArtifactStore.verify`
re-hashes them so silent corruption is detected before a resumed
campaign or a report trusts stale bytes.

The manifest is a shared read-modify-write point: two ``campaign run``
processes pointed at the same store both pass :meth:`initialize` (same
campaign key) and would otherwise interleave manifest rewrites, silently
dropping each other's completed-unit entries.  Every manifest update —
and initialisation itself — therefore happens under an advisory
``flock`` on ``<root>/.lock``, which serialises writers across processes
(and threads) on POSIX; on platforms without ``fcntl`` the store falls
back to the single-writer assumption.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.fl.history_io import history_from_json, history_to_json
from repro.fl.metrics import TrainingHistory

__all__ = ["ArtifactStore", "UnitArtifact", "StoreError"]

_MANIFEST_SCHEMA = "repro.campaign-manifest/1"
_CAMPAIGN_FILE = "campaign.json"
_MANIFEST_FILE = "manifest.json"
_UNITS_DIR = "units"
_SPOOLS_DIR = "spools"
_SPEC_FILE = "spec.json"
_HISTORY_FILE = "history.json"
_RESULT_FILE = "result.json"
_TELEMETRY_FILE = "telemetry.jsonl"
_LOCK_FILE = ".lock"


class StoreError(RuntimeError):
    """A campaign artifact store is missing, mismatched, or corrupt."""


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` so readers never observe a half-written file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


@contextmanager
def _exclusive_lock(path: Path):
    """Hold an advisory exclusive ``flock`` on ``path``.

    ``flock`` locks belong to the open file description, so every
    acquisition opens the file afresh — which serialises concurrent
    writers across processes *and* across threads within one process.
    No-op where ``fcntl`` is unavailable (single-writer assumed).
    """
    if fcntl is None:
        yield
        return
    with open(path, "a", encoding="utf-8") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


class UnitArtifact:
    """Lazy handle onto one completed unit's artifacts.

    Parsing a history is much more expensive than reading a manifest
    row, so reports iterate these handles and load only what they use.
    """

    def __init__(self, store: "ArtifactStore", key: str, entry: dict) -> None:
        self._store = store
        self.key = key
        self.name = entry["name"]
        self._entry = entry

    @property
    def directory(self) -> Path:
        """The unit's artifact directory."""
        return self._store.unit_dir(self.key)

    def spec(self) -> RunSpec:
        """The unit's :class:`RunSpec`."""
        return RunSpec.from_json(
            (self.directory / _SPEC_FILE).read_text(encoding="utf-8")
        )

    def history(self) -> TrainingHistory:
        """The unit's per-round training history."""
        return history_from_json(
            (self.directory / _HISTORY_FILE).read_text(encoding="utf-8")
        )

    def result(self) -> dict:
        """The unit's measurement snapshot (energy, rounds, accuracy)."""
        return json.loads(
            (self.directory / _RESULT_FILE).read_text(encoding="utf-8")
        )

    @property
    def telemetry_path(self) -> Path:
        """Where the unit's event log lives (may not exist)."""
        return self.directory / _TELEMETRY_FILE

    def has_telemetry(self) -> bool:
        """Whether the unit ran with telemetry enabled."""
        return self.telemetry_path.exists()

    def telemetry_records(self) -> list[dict] | None:
        """The unit's final metric records, or ``None`` without telemetry.

        Reads the last ``metrics.snapshot`` event out of the unit's
        ``telemetry.jsonl`` — the line the runner appends after training
        — and recovers the structured per-instrument records that
        :class:`repro.obs.aggregate.CampaignTelemetry` folds into
        campaign-wide totals.
        """
        path = self.telemetry_path
        if not path.exists():
            return None
        snapshot = None
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if data.get("category") == "metrics.snapshot":
                snapshot = data
        if snapshot is None:
            return None
        from repro.obs.aggregate import records_from_snapshot

        return records_from_snapshot(snapshot.get("fields", {}))


class ArtifactStore:
    """Checkpointed storage for one campaign's run artifacts.

    Args:
        root: store directory; created on :meth:`initialize`.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def initialize(self, campaign: CampaignSpec) -> None:
        """Bind this store to ``campaign``, creating it if needed.

        Re-initialising an existing store with the *same* campaign (by
        content key) is the resume path and is a no-op; initialising
        with a different campaign raises :class:`StoreError` instead of
        silently mixing artifacts from two grids.  The check-then-create
        runs under the store lock so two processes racing to initialise
        the same directory cannot both write the seed files.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        with self._lock():
            existing = self.campaign_key()
            if existing is not None:
                if existing != campaign.key():
                    raise StoreError(
                        f"store at {self.root} belongs to campaign key "
                        f"{existing}; refusing to run campaign "
                        f"{campaign.key()} ({campaign.name!r}) into it"
                    )
                return
            (self.root / _UNITS_DIR).mkdir(exist_ok=True)
            _atomic_write(
                self.root / _CAMPAIGN_FILE,
                json.dumps(
                    {"key": campaign.key(), "spec": campaign.to_dict()},
                    indent=2,
                )
                + "\n",
            )
            _atomic_write(
                self.root / _MANIFEST_FILE,
                json.dumps(
                    self._empty_manifest(campaign), indent=2, sort_keys=True
                )
                + "\n",
            )

    def _lock(self):
        """The store-wide writer lock (see :func:`_exclusive_lock`)."""
        return _exclusive_lock(self.root / _LOCK_FILE)

    def _empty_manifest(self, campaign: CampaignSpec) -> dict:
        return {
            "schema": _MANIFEST_SCHEMA,
            "campaign_key": campaign.key(),
            "campaign_name": campaign.name,
            "units": {},
        }

    def campaign_key(self) -> str | None:
        """The bound campaign's content key (``None`` if uninitialised)."""
        path = self.root / _CAMPAIGN_FILE
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))["key"]
        except (json.JSONDecodeError, KeyError) as error:
            raise StoreError(f"corrupt campaign file {path}: {error}") from None

    def campaign(self) -> CampaignSpec:
        """The campaign this store was initialised with."""
        path = self.root / _CAMPAIGN_FILE
        if not path.exists():
            raise StoreError(f"no campaign at {self.root}")
        data = json.loads(path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(data["spec"])

    def manifest(self) -> dict:
        """The parsed manifest document."""
        path = self.root / _MANIFEST_FILE
        if not path.exists():
            raise StoreError(f"no manifest at {self.root}")
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise StoreError(f"corrupt manifest {path}: {error}") from None
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            raise StoreError(
                f"unexpected manifest schema {manifest.get('schema')!r}"
            )
        return manifest

    def unit_dir(self, key: str) -> Path:
        """Artifact directory of the unit with content key ``key``."""
        return self.root / _UNITS_DIR / key

    @property
    def spool_dir(self) -> Path:
        """Where live worker telemetry spools stream during execution.

        Spools are *runtime* telemetry, not artifacts: they carry wall
        times and worker pids, so they live outside ``units/`` and are
        excluded from the manifest — the artifact bytes stay a pure
        function of the campaign spec.
        """
        return self.root / _SPOOLS_DIR

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def record_unit(
        self,
        spec: RunSpec,
        history: TrainingHistory,
        result: dict,
        telemetry_jsonl: str | None = None,
    ) -> str:
        """Persist one completed unit and mark it complete.

        Artifact files land first; the manifest entry (with checksums)
        is written last and atomically, so completion is all-or-nothing.
        The manifest read-modify-write runs under the store lock, so
        concurrent runner processes sharing one store never drop each
        other's completed-unit entries.  Returns the unit's content key.
        """
        key = spec.key()
        unit_dir = self.unit_dir(key)
        unit_dir.mkdir(parents=True, exist_ok=True)
        files = {
            _SPEC_FILE: spec.to_json(indent=2) + "\n",
            _HISTORY_FILE: history_to_json(history, indent=2) + "\n",
            _RESULT_FILE: json.dumps(result, indent=2, sort_keys=True) + "\n",
        }
        if telemetry_jsonl is not None:
            files[_TELEMETRY_FILE] = telemetry_jsonl
        checksums = {}
        for filename, text in files.items():
            _atomic_write(unit_dir / filename, text)
            checksums[filename] = _sha256(text.encode("utf-8"))
        with self._lock():
            manifest = self.manifest()
            manifest["units"][key] = {
                "name": spec.name,
                "files": checksums,
            }
            # sort_keys makes the manifest bytes a pure function of its
            # *contents*: a parallel run, whose units complete in
            # scheduler order, ends with a manifest byte-identical to a
            # sequential run's.
            _atomic_write(
                self.root / _MANIFEST_FILE,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            )
        return key

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def completed_keys(self) -> set[str]:
        """Content keys of every unit the manifest marks complete."""
        return set(self.manifest()["units"])

    def units(self) -> Iterator[UnitArtifact]:
        """Handles onto every completed unit, in manifest order."""
        for key, entry in self.manifest()["units"].items():
            yield UnitArtifact(self, key, entry)

    def unit(self, key: str) -> UnitArtifact:
        """Handle onto one completed unit."""
        entry = self.manifest()["units"].get(key)
        if entry is None:
            raise StoreError(f"unit {key} is not complete in {self.root}")
        return UnitArtifact(self, key, entry)

    # ------------------------------------------------------------------
    # Integrity.
    # ------------------------------------------------------------------
    def verify(self) -> list[str]:
        """Re-hash every recorded artifact; return the problems found.

        An empty list means the store is internally consistent: every
        manifest entry's files exist, match their recorded checksums,
        and every stored spec hashes to its directory key.
        """
        problems: list[str] = []
        manifest = self.manifest()
        for key, entry in manifest["units"].items():
            unit_dir = self.unit_dir(key)
            for filename, recorded in entry["files"].items():
                path = unit_dir / filename
                if not path.exists():
                    problems.append(f"{key}: missing {filename}")
                    continue
                actual = _sha256(path.read_bytes())
                if actual != recorded:
                    problems.append(
                        f"{key}: checksum mismatch on {filename} "
                        f"(recorded {recorded[:12]}, actual {actual[:12]})"
                    )
            spec_path = unit_dir / _SPEC_FILE
            if spec_path.exists():
                try:
                    spec = RunSpec.from_json(
                        spec_path.read_text(encoding="utf-8")
                    )
                except ValueError as error:
                    problems.append(f"{key}: unreadable spec ({error})")
                else:
                    if spec.key() != key:
                        problems.append(
                            f"{key}: spec content hashes to {spec.key()}"
                        )
        return problems
