"""The campaign repository API: protocol, factory, and migration.

This module is the *contract* layer of campaign storage.  Runners,
schedulers, status monitors, reports, and the CLI program against
:class:`CampaignRepository` — the structural protocol every store
backend satisfies — and open stores through :func:`open_store`, so
none of them knows (or cares) whether a store indexes its completed
units in a JSON manifest or a SQLite database.

The two shipped implementations live next door:

* :class:`~repro.campaign.store.JsonArtifactStore` — the original
  ``manifest.json`` format; O(n) lookups under an advisory flock.
* :class:`~repro.campaign.sqlite_store.SqliteArtifactStore` — a
  WAL-mode ``manifest.db`` with one indexed row per unit; O(log n)
  probes, no store-wide writer lock.

:func:`migrate_store` converts a store between backends in either
direction.  Only the index representation changes: artifact bytes are
copied verbatim and the index is rebuilt from the source's entries, so
a json → sqlite → json round trip is byte-identical (and a
sqlite → json → sqlite round trip is logical-index-identical, which
is the strongest possible claim — raw SQLite file bytes depend on
page-allocation order).
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro.campaign.spec import CampaignSpec, RunSpec
from repro.campaign.store import (
    ArtifactStore,
    StoreError,
    StoreHealthReport,
    UnitArtifact,
    detect_backend,
    _LOCK_FILE,
)
from repro.fl.metrics import TrainingHistory

__all__ = [
    "CampaignRepository",
    "MigrationResult",
    "open_store",
    "migrate_store",
]


@runtime_checkable
class CampaignRepository(Protocol):
    """What campaign storage looks like to everything above it.

    A structural protocol (``isinstance`` works, subclassing is not
    required): any object with these methods can back a campaign.  The
    semantics each implementation must honour:

    * **Completion is atomic.** A unit is either listed with all its
      artifact checksums or absent; :meth:`put` writes artifacts first
      and the index entry last.
    * **Content-addressed.** Keys are ``RunSpec.key()`` content hashes;
      the same spec always lands in the same slot, which is what makes
      kill-and-resume and parallel-vs-sequential runs converge on
      byte-identical stores.
    * **Verifiable.** :meth:`verify` re-hashes every recorded artifact
      against the index; :meth:`doctor` additionally heals (rebuilds a
      missing index, adopts self-consistent orphans, quarantines the
      rest).  Both return the same typed
      :class:`~repro.campaign.store.StoreHealthReport`.
    """

    backend_name: str

    def initialize(self, campaign: CampaignSpec) -> None:
        """Bind the store to ``campaign``; no-op on same-key resume."""
        ...

    def campaign(self) -> CampaignSpec:
        """The campaign this store was initialised with."""
        ...

    def contains(self, key: str) -> bool:
        """Whether the unit with content key ``key`` is complete."""
        ...

    def keys(self, prefix: str | None = None) -> list[str]:
        """Sorted completed-unit keys, optionally prefix-filtered."""
        ...

    def get(self, key: str) -> UnitArtifact:
        """Handle onto one completed unit (raises if incomplete)."""
        ...

    def put(
        self,
        spec: RunSpec,
        history: TrainingHistory,
        result: dict,
        telemetry_jsonl: str | None = None,
    ) -> str:
        """Persist one completed unit; return its content key."""
        ...

    def iter_units(self) -> Iterator[UnitArtifact]:
        """Handles onto every completed unit, in key order."""
        ...

    def verify(self) -> StoreHealthReport:
        """Re-hash every recorded artifact; report integrity problems."""
        ...

    def doctor(self, repair: bool = False) -> StoreHealthReport:
        """Diagnose (and with ``repair=True`` heal) the store."""
        ...

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        ...


def open_store(
    root: str | Path, backend: str | None = None
) -> ArtifactStore:
    """Open the campaign store at ``root``; the repository entry point.

    Resolution order: the backend already on disk (detected from the
    index file — asking for a different one raises
    :class:`~repro.campaign.store.StoreError`); else the explicit
    ``backend`` argument; else ``$REPRO_STORE_BACKEND``; else JSON.
    Equivalent to ``ArtifactStore(root, backend)`` — this spelling
    exists so callers can program against :class:`CampaignRepository`
    without importing a concrete class.
    """
    return ArtifactStore(root, backend)


@dataclass(frozen=True)
class MigrationResult:
    """What :func:`migrate_store` did.

    Attributes:
        source: root of the store migrated from.
        destination: root of the store created.
        source_backend: index backend of the source.
        destination_backend: index backend of the destination.
        units: completed-unit entries carried over.
        files_copied: artifact/runtime files copied verbatim.
        index_digest: logical index digest shared by both stores —
            migration fails loudly rather than return with the
            digests unequal.
    """

    source: Path
    destination: Path
    source_backend: str
    destination_backend: str
    units: int
    files_copied: int
    index_digest: str

    def render(self) -> str:
        """One-paragraph summary for the ``campaign migrate`` CLI."""
        return (
            f"migrated {self.source} ({self.source_backend}) -> "
            f"{self.destination} ({self.destination_backend}): "
            f"{self.units} unit(s), {self.files_copied} file(s) copied, "
            f"index digest {self.index_digest[:12]}"
        )


def migrate_store(
    source: str | Path, destination: str | Path, backend: str
) -> MigrationResult:
    """Convert the store at ``source`` into ``backend`` at ``destination``.

    Everything except the index is copied byte-for-byte — ``units/``,
    ``campaign.json``, and the ``quarantine/`` failure trail (attempt
    counters must survive migration or resumed campaigns would restart
    retry budgets).  Runtime droppings that only describe a *live* run
    are left behind: the ``.lock`` file, ``heartbeats/``, ``spools/``,
    and the source's own index file.  The destination index is then
    rebuilt in one batch from the source's entries and both logical
    index digests are compared — a mismatch raises
    :class:`~repro.campaign.store.StoreError` and nothing is reported
    migrated.

    ``destination`` must not already contain a store (or anything
    else); migration never merges.  The source is read-only throughout,
    so a failed or interrupted migration costs nothing but the partial
    destination directory.
    """
    source = Path(source)
    destination = Path(destination)
    source_backend = detect_backend(source)
    if source_backend is None:
        raise StoreError(f"no campaign store at {source}")
    src = ArtifactStore(source)
    if destination.resolve() == source.resolve():
        raise StoreError("migration destination must differ from the source")
    if destination.exists() and any(destination.iterdir()):
        raise StoreError(
            f"migration destination {destination} is not empty; "
            "refusing to merge into an existing directory"
        )
    campaign = src.campaign()
    entries = src._index_entries()

    skip_names = {
        _LOCK_FILE,
        src.index_filename,
        src.index_filename + "-wal",
        src.index_filename + "-shm",
        "heartbeats",
        "spools",
    }
    destination.mkdir(parents=True, exist_ok=True)
    files_copied = 0
    for item in sorted(source.iterdir()):
        if item.name in skip_names:
            continue
        target = destination / item.name
        if item.is_dir():
            shutil.copytree(item, target)
            files_copied += sum(1 for p in target.rglob("*") if p.is_file())
        else:
            shutil.copy2(item, target)
            files_copied += 1

    dst = ArtifactStore(destination, backend=backend)
    # initialize() would no-op on the already-copied campaign.json
    # without ever creating the destination index — create it directly.
    with dst._lock():
        dst._index_create(campaign)
    dst.bulk_put_entries(entries)

    source_digest = src.index_digest()
    destination_digest = dst.index_digest()
    if source_digest != destination_digest:
        raise StoreError(
            f"migration produced a different logical index "
            f"(source {source_digest[:12]}, "
            f"destination {destination_digest[:12]})"
        )
    dst.close()
    src.close()
    return MigrationResult(
        source=source,
        destination=destination,
        source_backend=source_backend,
        destination_backend=dst.backend_name,
        units=len(entries),
        files_copied=files_copied,
        index_digest=destination_digest,
    )
