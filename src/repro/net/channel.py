"""Wireless channel between edge servers and the coordinator.

The prototype connects 20 Raspberry Pis and the coordinating laptop via
a TP-Link WiFi router.  For the energy model only two quantities matter:
how long a model transfer occupies the radio (which sets the duration of
steps (2)/(4) and, with the step powers of Fig. 3, their energy), and
how much extra power the transfer draws.  The channel model therefore
exposes transfer *time* for a byte count at a configurable effective
rate, with optional per-transfer latency and retransmissions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.messages import ModelMessage

__all__ = ["ChannelConfig", "WirelessChannel", "TransferResult"]


@dataclass(frozen=True)
class ChannelConfig:
    """Effective link parameters between one device and the router.

    Attributes:
        rate_bps: effective application-layer throughput in bits/second.
            Default 20 Mbit/s, a realistic 802.11n figure for an RPi 4B
            on 2.4 GHz through one wall.
        latency_s: fixed per-transfer protocol latency (connection +
            acknowledgement), seconds.
        loss_probability: probability a transfer attempt fails entirely
            and is retried (frame-level retransmission is folded into the
            effective rate; this models application-level retries).
    """

    rate_bps: float = 20e6
    latency_s: float = 0.01
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive; got {self.rate_bps}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative; got {self.latency_s}")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1); got {self.loss_probability}"
            )


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one (possibly retried) transfer."""

    duration_s: float
    attempts: int
    payload_bytes: int


class WirelessChannel:
    """Transfer-time model with geometric retries.

    Deterministic when ``loss_probability == 0`` (the default and the
    paper's effective setting — its WiFi link is treated as reliable);
    a ``rng`` is only required otherwise.
    """

    def __init__(
        self, config: ChannelConfig, rng: np.random.Generator | None = None
    ) -> None:
        self.config = config
        if config.loss_probability > 0 and rng is None:
            raise ValueError("loss_probability > 0 requires an rng")
        self._rng = rng

    def attempt_duration(self, n_bytes: int) -> float:
        """Time for a single transfer attempt of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative; got {n_bytes}")
        return self.config.latency_s + 8.0 * n_bytes / self.config.rate_bps

    def expected_duration(self, n_bytes: int) -> float:
        """Expected total duration including retries (geometric attempts)."""
        single = self.attempt_duration(n_bytes)
        return single / (1.0 - self.config.loss_probability)

    def transfer(self, n_bytes: int) -> TransferResult:
        """Simulate one transfer, drawing retries when the link is lossy."""
        attempts = 1
        if self.config.loss_probability > 0:
            assert self._rng is not None
            while self._rng.random() < self.config.loss_probability:
                attempts += 1
        duration = attempts * self.attempt_duration(n_bytes)
        return TransferResult(
            duration_s=duration, attempts=attempts, payload_bytes=n_bytes
        )

    def transfer_message(self, message: ModelMessage) -> TransferResult:
        """Simulate the transfer of a model message."""
        return self.transfer(message.total_bytes)
