"""Wireless channel between edge servers and the coordinator.

The prototype connects 20 Raspberry Pis and the coordinating laptop via
a TP-Link WiFi router.  For the energy model only two quantities matter:
how long a model transfer occupies the radio (which sets the duration of
steps (2)/(4) and, with the step powers of Fig. 3, their energy), and
how much extra power the transfer draws.  The channel model therefore
exposes transfer *time* for a byte count at a configurable effective
rate, with optional per-transfer latency and retransmissions.

Retries are bounded: ``ChannelConfig.max_attempts`` truncates the
geometric retry loop and raises a typed :class:`TransferTimeout`, which
the resilience policies in :mod:`repro.faults.policies` consume.  An
optional *loss model* (an object with ``attempt_lost(rng) -> bool``,
e.g. :class:`repro.faults.models.GilbertElliottModel`) replaces the
default Bernoulli loss to model bursty links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.net.messages import ModelMessage

__all__ = [
    "ChannelConfig",
    "WirelessChannel",
    "TransferResult",
    "TransferTimeout",
    "LossModel",
]


class LossModel(Protocol):
    """Anything that can decide whether one transfer attempt is lost."""

    def attempt_lost(self, rng: np.random.Generator) -> bool:
        """Draw one attempt outcome, advancing any internal state."""
        ...


class TransferTimeout(RuntimeError):
    """A transfer exhausted ``max_attempts`` without succeeding.

    Attributes:
        n_bytes: payload size of the abandoned transfer.
        attempts: attempts actually transmitted (== ``max_attempts``).
        elapsed_s: radio time burned by those attempts.
    """

    def __init__(self, n_bytes: int, attempts: int, elapsed_s: float) -> None:
        super().__init__(
            f"transfer of {n_bytes} bytes abandoned after "
            f"{attempts} attempts ({elapsed_s:.3f}s)"
        )
        self.n_bytes = n_bytes
        self.attempts = attempts
        self.elapsed_s = elapsed_s


@dataclass(frozen=True)
class ChannelConfig:
    """Effective link parameters between one device and the router.

    Attributes:
        rate_bps: effective application-layer throughput in bits/second.
            Default 20 Mbit/s, a realistic 802.11n figure for an RPi 4B
            on 2.4 GHz through one wall.
        latency_s: fixed per-transfer protocol latency (connection +
            acknowledgement), seconds.
        loss_probability: probability a transfer attempt fails entirely
            and is retried (frame-level retransmission is folded into the
            effective rate; this models application-level retries).
        max_attempts: cap on transfer attempts; exceeding it raises
            :class:`TransferTimeout`.  ``None`` (the default) keeps the
            legacy unbounded geometric retry loop.
    """

    rate_bps: float = 20e6
    latency_s: float = 0.01
    loss_probability: float = 0.0
    max_attempts: int | None = None

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive; got {self.rate_bps}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative; got {self.latency_s}")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1); got {self.loss_probability}"
            )
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1 when set; got {self.max_attempts}"
            )


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one (possibly retried) transfer."""

    duration_s: float
    attempts: int
    payload_bytes: int


class WirelessChannel:
    """Transfer-time model with (bounded) geometric retries.

    Deterministic when ``loss_probability == 0`` and no loss model is
    attached (the default and the paper's effective setting — its WiFi
    link is treated as reliable); a ``rng`` is required otherwise.

    Args:
        config: link parameters.
        rng: randomness for loss draws.
        loss_model: optional stateful per-attempt loss law (e.g. a
            Gilbert–Elliott burst model) overriding the config's
            Bernoulli ``loss_probability``.
    """

    def __init__(
        self,
        config: ChannelConfig,
        rng: np.random.Generator | None = None,
        loss_model: LossModel | None = None,
    ) -> None:
        self.config = config
        if (config.loss_probability > 0 or loss_model is not None) and rng is None:
            raise ValueError("a lossy channel requires an rng")
        self._rng = rng
        self._loss_model = loss_model

    @property
    def lossy(self) -> bool:
        """Whether transfer attempts can be lost on this channel."""
        return self.config.loss_probability > 0 or self._loss_model is not None

    def attempt_duration(self, n_bytes: int) -> float:
        """Time for a single transfer attempt of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative; got {n_bytes}")
        return self.config.latency_s + 8.0 * n_bytes / self.config.rate_bps

    def expected_duration(self, n_bytes: int) -> float:
        """Expected total duration including retries.

        With unbounded retries this is the geometric mean duration
        ``single / (1 - p)``; with ``max_attempts = m`` the attempt
        count is a truncated geometric (the transfer is abandoned at
        ``m``), whose expected consumed attempts are
        ``(1 - p^m) / (1 - p)``.  A stateful ``loss_model`` has no
        closed form — the config's Bernoulli ``p`` is used as the
        approximation.
        """
        single = self.attempt_duration(n_bytes)
        p = self.config.loss_probability
        m = self.config.max_attempts
        if m is None:
            return single / (1.0 - p)
        return single * (1.0 - p**m) / (1.0 - p) if p > 0 else single

    def _attempt_lost(self) -> bool:
        assert self._rng is not None
        if self._loss_model is not None:
            return self._loss_model.attempt_lost(self._rng)
        return self._rng.random() < self.config.loss_probability

    def transfer(self, n_bytes: int) -> TransferResult:
        """Simulate one transfer, drawing retries when the link is lossy.

        Raises:
            TransferTimeout: when ``config.max_attempts`` attempts were
                transmitted and all were lost.
        """
        attempts = 1
        if self.lossy:
            single = self.attempt_duration(n_bytes)
            while self._attempt_lost():
                if (
                    self.config.max_attempts is not None
                    and attempts >= self.config.max_attempts
                ):
                    raise TransferTimeout(
                        n_bytes=n_bytes,
                        attempts=attempts,
                        elapsed_s=attempts * single,
                    )
                attempts += 1
        duration = attempts * self.attempt_duration(n_bytes)
        return TransferResult(
            duration_s=duration, attempts=attempts, payload_bytes=n_bytes
        )

    def transfer_message(self, message: ModelMessage) -> TransferResult:
        """Simulate the transfer of a model message."""
        return self.transfer(message.total_bytes)
