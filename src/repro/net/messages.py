"""Message sizes exchanged between edge servers and the coordinator.

Step (2) of each FEI round downloads the global model to every selected
edge server; step (3)/(4) uploads each locally trained model back.  Both
messages carry the flat parameter vector plus a small framing header, so
their size is determined by the model architecture (784*10 + 10 floats
for the paper's logistic regression).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fl.model import LogisticRegressionConfig

__all__ = ["ModelMessage", "model_download_message", "model_upload_message"]

# Fixed per-message framing overhead: message type, round index, client
# id, and length fields.  Small compared to the 31 kB parameter payload.
_HEADER_BYTES = 64


@dataclass(frozen=True)
class ModelMessage:
    """One model transfer between coordinator and an edge server.

    Attributes:
        direction: ``"download"`` (coordinator -> server) or ``"upload"``.
        payload_bytes: serialised parameter-vector size.
        header_bytes: framing overhead.
    """

    direction: str
    payload_bytes: int
    header_bytes: int = _HEADER_BYTES

    def __post_init__(self) -> None:
        if self.direction not in ("download", "upload"):
            raise ValueError(
                f"direction must be 'download' or 'upload'; got {self.direction!r}"
            )
        if self.payload_bytes < 0 or self.header_bytes < 0:
            raise ValueError("sizes must be non-negative")

    @property
    def total_bytes(self) -> int:
        return self.payload_bytes + self.header_bytes

    @property
    def total_bits(self) -> int:
        return 8 * self.total_bytes


def model_download_message(
    config: LogisticRegressionConfig, dtype_bytes: int = 4
) -> ModelMessage:
    """The global-model message of step (2)."""
    return ModelMessage("download", config.parameter_bytes(dtype_bytes))


def model_upload_message(
    config: LogisticRegressionConfig, dtype_bytes: int = 4
) -> ModelMessage:
    """The local-model message of step (4)."""
    return ModelMessage("upload", config.parameter_bytes(dtype_bytes))
