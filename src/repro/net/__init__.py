"""Edge-server <-> coordinator communication substrate."""

from repro.net.channel import (
    ChannelConfig,
    TransferResult,
    TransferTimeout,
    WirelessChannel,
)
from repro.net.messages import (
    ModelMessage,
    model_download_message,
    model_upload_message,
)
from repro.net.router import Router

__all__ = [
    "ChannelConfig",
    "TransferResult",
    "TransferTimeout",
    "WirelessChannel",
    "ModelMessage",
    "model_download_message",
    "model_upload_message",
    "Router",
]
