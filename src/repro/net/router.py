"""The coordination network: a router linking edge servers to the coordinator.

Models the prototype's star topology (every Pi talks to the laptop
through one WiFi router).  The router serialises nothing — WiFi is a
shared medium, but model transfers in FEI are staggered by the protocol
(downloads fan out at the start of a round, uploads trickle in as servers
finish) — so the default model gives each transfer the full link rate.
A ``shared_medium=True`` mode divides the rate by the number of
concurrent transfers for the congestion ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.channel import ChannelConfig, WirelessChannel
from repro.net.messages import ModelMessage

__all__ = ["Router"]


@dataclass(frozen=True)
class _Link:
    device_id: int
    channel: WirelessChannel


class Router:
    """Star-topology coordination network.

    Args:
        n_devices: number of edge servers attached.
        config: channel parameters shared by all links (heterogeneous
            links can be set after construction via :meth:`set_link`).
        shared_medium: when True, a transfer occurring with ``m``
            concurrent transfers takes ``m`` times as long.
        rng: randomness source for lossy links.
    """

    def __init__(
        self,
        n_devices: int,
        config: ChannelConfig | None = None,
        shared_medium: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1; got {n_devices}")
        self.n_devices = n_devices
        self.shared_medium = shared_medium
        base = config or ChannelConfig()
        self._links = [
            _Link(i, WirelessChannel(base, rng)) for i in range(n_devices)
        ]

    def set_link(self, device_id: int, channel: WirelessChannel) -> None:
        """Replace the channel of one device (heterogeneous links)."""
        self._check_device(device_id)
        self._links[device_id] = _Link(device_id, channel)

    def link(self, device_id: int) -> WirelessChannel:
        """The channel serving ``device_id``."""
        self._check_device(device_id)
        return self._links[device_id].channel

    def _check_device(self, device_id: int) -> None:
        if not 0 <= device_id < self.n_devices:
            raise ValueError(
                f"device_id must be in [0, {self.n_devices}); got {device_id}"
            )

    def transfer_duration(
        self, device_id: int, message: ModelMessage, concurrent: int = 1
    ) -> float:
        """Duration of one model transfer for ``device_id``.

        ``concurrent`` is the number of simultaneous transfers sharing the
        medium (only relevant with ``shared_medium=True``).
        """
        if concurrent < 1:
            raise ValueError(f"concurrent must be >= 1; got {concurrent}")
        duration = self.link(device_id).transfer_message(message).duration_s
        if self.shared_medium:
            duration *= concurrent
        return duration

    def broadcast_duration(
        self, device_ids: list[int], message: ModelMessage
    ) -> dict[int, float]:
        """Durations for the coordinator fanning a message to many devices."""
        concurrent = len(device_ids) if self.shared_medium else 1
        return {
            device_id: self.transfer_duration(device_id, message, concurrent)
            for device_id in device_ids
        }
