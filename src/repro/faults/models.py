"""Declarative fault models: what can go wrong, to whom, and when.

A :class:`FaultPlan` is a seeded, declarative description of every
failure a simulated deployment will experience: client crashes,
straggler slowdowns, bursty link loss (a two-state Gilbert–Elliott
channel), battery depletion, and corrupted (non-finite) uploads.  The
plan itself holds no random state — it is pure data, JSON-serialisable
so a study can be captured next to its results and replayed exactly.
The :class:`~repro.faults.injector.FaultInjector` turns a plan into
per-round decisions using independent named RNG streams derived from
the plan seed, so two runs of the same plan are bit-identical.

The paper's 20-Pi prototype treats the WiFi link as reliable and every
edge server as always-on; these models are the controlled departure
from that assumption.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "substream",
    "GilbertElliottModel",
    "CrashFault",
    "StragglerFault",
    "BurstLossFault",
    "BatteryFault",
    "CorruptionFault",
    "FaultPlan",
    "make_demo_plan",
]


def substream(seed: int, *labels: int | str) -> np.random.Generator:
    """Independent, reproducible RNG stream named by ``labels``.

    Maps string labels to stable integers (CRC-32, not Python's salted
    ``hash``) and spawns ``default_rng([seed, *label_ints])``.  Distinct
    labels give statistically independent streams, so consumers (client
    sampling, dropout, fault channels, backoff jitter) cannot perturb
    each other's draws — the RNG-coupling bug this replaces.
    """
    ints = [int(seed)]
    for label in labels:
        if isinstance(label, str):
            ints.append(zlib.crc32(label.encode("utf-8")))
        else:
            ints.append(int(label))
    return np.random.default_rng(ints)


class GilbertElliottModel:
    """Two-state Markov (Gilbert–Elliott) burst-loss channel model.

    The channel alternates between a *good* state (low loss) and a *bad*
    state (high loss); transitions are drawn per attempt, so losses
    arrive in bursts rather than independently.  Layered on
    :class:`~repro.net.channel.WirelessChannel` as its ``loss_model``:
    the channel asks :meth:`attempt_lost` once per transfer attempt.

    Args:
        p_enter_bad: per-attempt probability of a good→bad transition.
        p_exit_bad: per-attempt probability of a bad→good transition.
        loss_good: loss probability while in the good state.
        loss_bad: loss probability while in the bad state.
        start_bad: start in the bad state (default: good).
    """

    __slots__ = ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad", "bad")

    def __init__(
        self,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.9,
        start_bad: bool = False,
    ) -> None:
        for name, p in (
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {p}")
        if loss_bad >= 1.0 and p_exit_bad == 0.0:
            raise ValueError(
                "loss_bad = 1 with p_exit_bad = 0 makes the bad state "
                "absorbing and every transfer loop forever"
            )
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = start_bad

    def attempt_lost(self, rng: np.random.Generator) -> bool:
        """Draw one attempt: loss in the current state, then transition."""
        lost = rng.random() < (self.loss_bad if self.bad else self.loss_good)
        flip = self.p_exit_bad if self.bad else self.p_enter_bad
        if rng.random() < flip:
            self.bad = not self.bad
        return lost

    @property
    def stationary_loss(self) -> float:
        """Long-run loss rate under the stationary state distribution."""
        total = self.p_enter_bad + self.p_exit_bad
        if total == 0.0:
            return self.loss_bad if self.bad else self.loss_good
        pi_bad = self.p_enter_bad / total
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad


def _check_window(start_round: int, end_round: int | None) -> None:
    if start_round < 0:
        raise ValueError(f"start_round must be non-negative; got {start_round}")
    if end_round is not None and end_round <= start_round:
        raise ValueError(
            f"end_round must exceed start_round; got [{start_round}, {end_round})"
        )


def _in_window(round_index: int, start: int, end: int | None) -> bool:
    return round_index >= start and (end is None or round_index < end)


@dataclass(frozen=True)
class CrashFault:
    """Client ``client_id`` is unavailable for rounds ``[start, end)``.

    ``end_round = None`` means the crash is permanent (fail-stop).
    """

    client_id: int
    start_round: int
    end_round: int | None = None
    kind: str = field(default="crash", init=False)

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be non-negative; got {self.client_id}")
        _check_window(self.start_round, self.end_round)

    def active(self, round_index: int) -> bool:
        """Whether the client is down in ``round_index``."""
        return _in_window(round_index, self.start_round, self.end_round)


@dataclass(frozen=True)
class StragglerFault:
    """Client trains ``slowdown`` times slower during ``[start, end)``."""

    client_id: int
    start_round: int
    end_round: int | None = None
    slowdown: float = 4.0
    kind: str = field(default="straggler", init=False)

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be non-negative; got {self.client_id}")
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1; got {self.slowdown}")
        _check_window(self.start_round, self.end_round)

    def active(self, round_index: int) -> bool:
        """Whether the slowdown applies in ``round_index``."""
        return _in_window(round_index, self.start_round, self.end_round)


@dataclass(frozen=True)
class BurstLossFault:
    """Bursty upload loss on one client's link during ``[start, end)``.

    Parameterises a :class:`GilbertElliottModel` that the injector
    instantiates per client (so burst state evolves independently per
    link) and layers onto the upload path.
    """

    client_id: int
    start_round: int = 0
    end_round: int | None = None
    p_enter_bad: float = 0.1
    p_exit_bad: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.9
    kind: str = field(default="burst_loss", init=False)

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be non-negative; got {self.client_id}")
        _check_window(self.start_round, self.end_round)
        # Validate the channel parameters eagerly so a malformed plan
        # fails at construction, not mid-run.
        self.build_model()

    def active(self, round_index: int) -> bool:
        """Whether the lossy channel applies in ``round_index``."""
        return _in_window(round_index, self.start_round, self.end_round)

    def build_model(self) -> GilbertElliottModel:
        """Fresh Gilbert–Elliott state machine for this link."""
        return GilbertElliottModel(
            p_enter_bad=self.p_enter_bad,
            p_exit_bad=self.p_exit_bad,
            loss_good=self.loss_good,
            loss_bad=self.loss_bad,
        )


@dataclass(frozen=True)
class BatteryFault:
    """Client runs off a finite battery and dies when it depletes.

    Wired to :class:`repro.iot.battery.Battery`: the injector drains the
    battery by the energy the client actually spends each round (reported
    by the hardware substrate) or, when no energy model is attached, by
    the nominal ``per_round_j``.  Once depleted the client behaves like a
    permanent crash.
    """

    client_id: int
    capacity_j: float
    initial_fraction: float = 1.0
    per_round_j: float | None = None
    kind: str = field(default="battery", init=False)

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be non-negative; got {self.client_id}")
        if self.capacity_j <= 0:
            raise ValueError(f"capacity_j must be positive; got {self.capacity_j}")
        if not 0.0 < self.initial_fraction <= 1.0:
            raise ValueError(
                f"initial_fraction must be in (0, 1]; got {self.initial_fraction}"
            )
        if self.per_round_j is not None and self.per_round_j <= 0:
            raise ValueError(
                f"per_round_j must be positive when set; got {self.per_round_j}"
            )


@dataclass(frozen=True)
class CorruptionFault:
    """Client uploads a non-finite payload during ``[start, end)``.

    Each affected upload is corrupted with ``probability``; the payload
    is filled with NaN (``mode="nan"``) or ±Inf (``mode="inf"``).  The
    coordinator's validation guard must reject these instead of letting
    them poison the global average.
    """

    client_id: int
    start_round: int = 0
    end_round: int | None = None
    probability: float = 1.0
    mode: str = "nan"
    kind: str = field(default="corruption", init=False)

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ValueError(f"client_id must be non-negative; got {self.client_id}")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1]; got {self.probability}"
            )
        if self.mode not in ("nan", "inf"):
            raise ValueError(f"mode must be 'nan' or 'inf'; got {self.mode!r}")
        _check_window(self.start_round, self.end_round)

    def active(self, round_index: int) -> bool:
        """Whether uploads may be corrupted in ``round_index``."""
        return _in_window(round_index, self.start_round, self.end_round)


_FAULT_TYPES = {
    "crash": CrashFault,
    "straggler": StragglerFault,
    "burst_loss": BurstLossFault,
    "battery": BatteryFault,
    "corruption": CorruptionFault,
}

Fault = CrashFault | StragglerFault | BurstLossFault | BatteryFault | CorruptionFault


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative collection of faults — pure data, no state.

    Attributes:
        seed: root seed for every stochastic fault decision (corruption
            draws, burst-loss channel trajectories, backoff jitter); two
            runs of the same plan and seed are bit-identical.
        faults: the individual fault declarations.
    """

    seed: int = 0
    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, tuple(_FAULT_TYPES.values())):
                raise ValueError(f"unknown fault object: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def for_client(self, client_id: int) -> tuple[Fault, ...]:
        """Every declared fault targeting ``client_id``."""
        return tuple(f for f in self.faults if f.client_id == client_id)

    def of_kind(self, kind: str) -> tuple[Fault, ...]:
        """Every declared fault of one kind (``"crash"``, ...)."""
        return tuple(f for f in self.faults if f.kind == kind)

    @property
    def max_client_id(self) -> int:
        """Largest client id any fault targets (-1 for an empty plan)."""
        return max((f.client_id for f in self.faults), default=-1)

    # ------------------------------------------------------------------
    # Serialisation (the --fault-plan CLI flag reads this JSON shape).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "seed": int(self.seed),
            "faults": [asdict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        try:
            faults = []
            for entry in data.get("faults", []):
                entry = dict(entry)
                kind = entry.pop("kind")
                if kind not in _FAULT_TYPES:
                    raise ValueError(f"unknown fault kind {kind!r}")
                faults.append(_FAULT_TYPES[kind](**entry))
            return cls(seed=int(data.get("seed", 0)), faults=tuple(faults))
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed fault plan: {error}") from None

    def to_json(self) -> str:
        """JSON text form (pretty-printed, stable key order)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the plan to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan from a JSON file (the ``--fault-plan`` format)."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def make_demo_plan(
    n_clients: int,
    seed: int = 0,
    crash_fraction: float = 0.15,
    straggler_fraction: float = 0.15,
    loss_fraction: float = 0.2,
    slowdown: float = 3.0,
    loss_bad: float = 0.9,
    horizon: int = 40,
) -> FaultPlan:
    """A representative mixed plan: crashes + stragglers + burst loss.

    Used by the CLI's default degradation study, the fault-tolerance
    example, and the resilience benchmark.  Clients are assigned to
    fault classes deterministically from ``seed`` (disjoint classes, so
    a crashed client is not also the straggler — each failure mode is
    separately attributable).
    """
    if n_clients < 1:
        raise ValueError(f"n_clients must be >= 1; got {n_clients}")
    rng = substream(seed, "demo-plan")
    ids = rng.permutation(n_clients)
    n_crash = int(round(crash_fraction * n_clients))
    n_slow = int(round(straggler_fraction * n_clients))
    n_loss = int(round(loss_fraction * n_clients))
    faults: list[Fault] = []
    cursor = 0
    for client_id in ids[cursor : cursor + n_crash]:
        start = int(rng.integers(1, max(2, horizon // 2)))
        faults.append(
            CrashFault(
                client_id=int(client_id),
                start_round=start,
                end_round=start + int(rng.integers(3, max(4, horizon // 2))),
            )
        )
    cursor += n_crash
    for client_id in ids[cursor : cursor + n_slow]:
        faults.append(
            StragglerFault(
                client_id=int(client_id),
                start_round=0,
                end_round=None,
                slowdown=slowdown,
            )
        )
    cursor += n_slow
    for client_id in ids[cursor : cursor + n_loss]:
        faults.append(
            BurstLossFault(
                client_id=int(client_id),
                p_enter_bad=0.2,
                p_exit_bad=0.4,
                loss_bad=loss_bad,
            )
        )
    return FaultPlan(seed=seed, faults=tuple(faults))
